"""Instance discovery step by step, on a bookstore attribute (paper §2).

Walks the Surface component through each stage for the label ``Author``:
label-syntax analysis, extraction-query formulation, snippet retrieval and
candidate extraction, outlier removal, and PMI validation — printing the
intermediate artifacts the paper describes.

Run:  python examples/bookstore_instance_discovery.py
"""

from repro import build_domain_dataset
from repro.core.surface import (
    ExtractionQueryBuilder,
    SnippetExtractor,
    SurfaceDiscoverer,
    WebValidator,
)
from repro.deepweb.models import Attribute
from repro.text.labels import analyze_label


def main() -> None:
    dataset = build_domain_dataset("book", n_interfaces=20, seed=1)
    engine = dataset.engine
    keywords = dataset.spec.keyword_terms()
    label = "Author"

    # 1. label syntax analysis
    analysis = analyze_label(label)
    np = analysis.noun_phrases[0]
    print(f"1. Label {label!r}: form={analysis.form.value}, "
          f"noun phrase={np.text!r}, plural={np.plural!r}")

    # 2. extraction queries (patterns s1-s4, g1-g4 of Figure 4)
    builder = ExtractionQueryBuilder()
    queries = builder.build(analysis, keywords, dataset.spec.object_name)
    print("\n2. Extraction queries:")
    for query in queries:
        print(f"   {query.pattern}: {query.query}")

    # 3. pose one query, extract candidates from snippets
    extractor = SnippetExtractor()
    s1 = queries[0]
    results = engine.search(s1.query, max_results=3)
    print(f"\n3. Top snippets for {s1.query}:")
    for hit in results:
        candidates = extractor.extract(hit.snippet, s1)
        print(f"   snippet: {hit.snippet[:76]}...")
        print(f"   -> candidates: {candidates}")

    # 4-5. the full two-phase pipeline: extraction + verification
    discoverer = SurfaceDiscoverer(engine)
    result = discoverer.discover(Attribute(name="author", label=label),
                                 keywords, dataset.spec.object_name)
    print(f"\n4. Extraction produced {len(result.raw_candidates)} distinct "
          f"candidates; {len(result.outliers)} removed as outliers/wrong type")

    validator = WebValidator(engine)
    phrases = validator.validation_phrases(label)
    print(f"\n5. Validation phrases: {phrases}")
    print("   validation scores (mean PMI):")
    for value in result.instances[:5]:
        score = validator.confidence(phrases, value)
        print(f"     {value:28} {score:.5f}")
    for junk in ("free shipping", "Economy"):
        score = validator.confidence(phrases, junk)
        print(f"     {junk:28} {score:.5f}   (non-instance)")

    print(f"\nFinal top-{len(result.instances)} instances for {label!r}:")
    print("  " + ", ".join(result.instances))
    print(f"(search-engine queries consumed: {result.queries_used})")


if __name__ == "__main__":
    main()
