"""The paper's motivating scenario (Figure 1) end to end.

Two airfare interfaces ask for the same things under different labels:
``From`` / ``Departure city``, ``Airline`` / ``Carrier`` — and most fields
carry no instances. The example shows:

1. why the baseline matcher struggles (label-only similarity is ambiguous),
2. what WebIQ acquires for each attribute (from the Surface Web, by
   borrowing + Deep-Web probing, or by the validation-based classifier),
3. the clusters produced after acquisition.

Run:  python examples/airfare_matching.py
"""

from repro import WebIQConfig, WebIQMatcher, build_domain_dataset
from repro.matching.similarity import AttributeView, attribute_similarity


def show_ambiguity() -> None:
    """The paper's §1 example: labels alone cannot disambiguate."""
    b1 = AttributeView("Qb", "b1", "Departure city", ())
    a1 = AttributeView("Qa", "a1", "From city", ())
    a2 = AttributeView("Qa", "a2", "Departure date", ())
    print("Label-only similarity (no instances anywhere):")
    print(f"  Sim('Departure city', 'From city')      = "
          f"{attribute_similarity(b1, a1):.3f}   <- the true match")
    print(f"  Sim('Departure city', 'Departure date') = "
          f"{attribute_similarity(b1, a2):.3f}   <- a non-match, same score")

    with_instances = [
        AttributeView("Qb", "b1", "Departure city", ("Boston", "Chicago")),
        AttributeView("Qa", "a1", "From city", ("Boston", "Chicago")),
        AttributeView("Qa", "a2", "Departure date", ("Jan 15", "Feb 1")),
    ]
    print("\nWith instances the tie breaks:")
    print(f"  Sim('Departure city', 'From city')      = "
          f"{attribute_similarity(with_instances[0], with_instances[1]):.3f}")
    print(f"  Sim('Departure city', 'Departure date') = "
          f"{attribute_similarity(with_instances[0], with_instances[2]):.3f}")


def main() -> None:
    show_ambiguity()

    dataset = build_domain_dataset("airfare", n_interfaces=20, seed=1)
    result = WebIQMatcher(WebIQConfig()).run(dataset)

    print("\nWhat WebIQ acquired (a sample of hard attributes):")
    shown = 0
    for interface in dataset.interfaces:
        for attr in interface.attributes:
            if attr.label in ("From", "To", "Carrier") and attr.acquired:
                values = ", ".join(attr.acquired[:5])
                print(f"  {interface.interface_id} {attr.label!r:10} <- "
                      f"[{values}, ...] ({len(attr.acquired)} instances)")
                shown += 1
                if shown >= 6:
                    break
        if shown >= 6:
            break

    print("\nClusters containing city attributes:")
    for cluster in result.match_result.clusters:
        labels = sorted({m.label for m in cluster.members})
        if any("city" in l.lower() or l in ("From", "To", "Origin",
                                            "Destination") for l in labels):
            if len(cluster) > 3:
                print(f"  [{len(cluster):2d} attrs] {', '.join(labels)}")

    print(f"\nFinal accuracy: P={result.metrics.precision:.3f} "
          f"R={result.metrics.recall:.3f} F-1={result.metrics.f1:.3f}")

    # where do the remaining errors concentrate?
    from repro.analysis import analyze_errors
    report = analyze_errors(result.match_result, dataset)
    if report.missed or report.wrong:
        print("\nResidual errors by label pair:")
        for error in (report.top_missed(3) + report.top_wrong(3)):
            print(f"  {error}")


if __name__ == "__main__":
    main()
