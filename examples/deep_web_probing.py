"""Borrowing instances and validating them via the Deep Web (paper §3-§4).

The paper's example: while both "from January" and "from Chicago" occur on
the Surface Web, an airfare source answers a probe with ``from=Chicago``
with real results and a probe with ``from=January`` with an error page.
This example shows both probes, the response pages, the ≥1/3 acceptance
rule, and the validation-based classifier accepting a borrowed European
carrier for an ``Airline`` attribute.

Run:  python examples/deep_web_probing.py
"""

from repro import build_domain_dataset
from repro.core.attr_deep import AttrDeepValidator
from repro.core.attr_surface import AttrSurfaceValidator
from repro.core.surface import WebValidator
from repro.deepweb.models import AttributeKind
from repro.deepweb.response import analyze_response


def main() -> None:
    dataset = build_domain_dataset("airfare", n_interfaces=20, seed=1)

    # find an interface with a free-text origin attribute
    target = None
    for gen in dataset.generated:
        for attr in gen.interface.attributes:
            if (gen.concept_of[attr.name] == "origin_city"
                    and attr.kind is AttributeKind.TEXT):
                target = (gen.interface, attr)
                break
        if target:
            break
    interface, attr = target
    source = dataset.sources[interface.interface_id]

    print(f"Probing source {interface.interface_id!r}, attribute "
          f"{attr.label!r}:")
    for value in ("Chicago", "January"):
        page = source.submit({attr.name: value})
        verdict = analyze_response(page.text)
        first_line = page.text.splitlines()[1] if "\n" in page.text else page.text
        print(f"\n  {attr.label} = {value!r}")
        print(f"    page: {first_line[:70]}")
        print(f"    verdict: success={verdict.success} ({verdict.reason})")

    print("\nThe >=1/3 rule on a borrowed set:")
    validator = AttrDeepValidator(dataset.sources)
    borrowed = ["Boston", "Chicago", "Miami", "January", "Economy", "Honda"]
    result = validator.validate(interface.interface_id, attr.name, borrowed)
    print(f"  borrowed {borrowed}")
    print(f"  {result.successes}/{result.probes_issued} probes succeeded "
          f"-> accepted {len(result.accepted)} values")

    # Attr-Surface: borrow a European carrier into a NA airline SELECT
    print("\nValidation-based classifier (Attr-Surface):")
    for gen in dataset.generated:
        for a in gen.interface.attributes:
            if a.label == "Airline" and a.kind is AttributeKind.SELECT:
                web_validator = WebValidator(dataset.engine)
                attr_surface = AttrSurfaceValidator(web_validator)
                classifier = attr_surface.build_classifier(a, gen.interface)
                if classifier is None:
                    continue
                print(f"  attribute 'Airline' on {gen.interface.interface_id} "
                      f"with instances {a.instances[:3]}...")
                for candidate in ("Alitalia", "KLM", "Aer Lingus",
                                  "Economy", "Jan"):
                    if candidate in a.all_instances():
                        continue
                    verdict = classifier.predict(candidate)
                    posterior = classifier.posterior(candidate)
                    print(f"    is {candidate!r} an Airline instance? "
                          f"{verdict} (posterior {posterior:.2f})")
                print("    (borrowed carriers with very low Web popularity "
                      "can fall below the learned\n     thresholds — the "
                      "paper notes borrowed instances score lower than "
                      "existing ones)")
                return


if __name__ == "__main__":
    main()
