"""Span profiling: where does a WebIQ run spend its (simulated) time?

Runs the job-domain pipeline with profiling on, builds the deterministic
span profile, and walks what it says: the hottest span paths by self
time, the per-phase rollup, the hot-path work counters (tokenizer calls,
postings intersections, PMI phrase queries, similarity evaluations), and
the per-component round-trip totals. Finishes by writing the profile
JSON plus its collapsed-stack sidecar — the exact input format of
``flamegraph.pl``.

Profiling is strictly read-only: the run's every exported byte is
identical with it on or off; only the artifacts below are new.

Run:  python examples/profile_run.py
"""

import os
import tempfile

from repro import WebIQConfig, WebIQMatcher, build_domain_dataset
from repro.obs import ObsConfig, build_profile, hottest_paths, write_profile


def main() -> None:
    print("Running the job-domain pipeline with profiling on...")
    dataset = build_domain_dataset("job", n_interfaces=6, seed=1)
    result = WebIQMatcher(
        WebIQConfig(obs=ObsConfig(profile=True))).run(dataset)

    profile = build_profile(result)
    det = profile["deterministic"]
    print(f"\nProfile digest (run fingerprint): {profile['digest']}")

    print("\nHottest span paths by simulated self time:")
    for row in hottest_paths(profile, limit=5):
        print(f"  {row['path']:<28} self {row['t_self']:8.1f}s  "
              f"cum {row['t_cum']:8.1f}s  x{row['count']}")

    print("\nPer-phase rollup:")
    for name, phase in det["phases"].items():
        print(f"  {name:<14} {phase['t_cum']:8.1f}s over "
              f"{phase['count']} span(s)")

    print("\nHot-path work counters:")
    for name, count in det["counters"].items():
        print(f"  {name:<26} {count:>8}")

    print("\nRound trips by component:")
    for name, component in det["components"].items():
        print(f"  {name:<14} {component['round_trips']:>6} round trips "
              f"({component['entry_calls']} entry calls)")

    hottest = hottest_paths(profile, limit=1)[0]
    total = det["clock"]["total_seconds"]
    share = hottest["t_self"] / total if total else 0.0
    print(f"\nVerdict: {hottest['path']!r} is the hottest span — "
          f"{hottest['t_self']:.1f}s self time, {share:.0%} of the run's "
          f"{total:.1f} simulated seconds.")

    out = os.path.join(tempfile.mkdtemp(prefix="webiq-profile-"),
                       "profile.json")
    folded = write_profile(out, profile)
    print(f"\nWrote {out}")
    print(f"Wrote {folded} (feed to flamegraph.pl or speedscope)")


if __name__ == "__main__":
    main()
