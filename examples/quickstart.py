"""Quickstart: match the interfaces of one domain, with and without WebIQ.

Builds the airfare evaluation environment (20 query interfaces, a synthetic
Surface Web behind a search engine, probe-able Deep-Web sources), runs the
baseline IceQ matcher and the full WebIQ pipeline, and prints the accuracy
and overhead of both.

Run:  python examples/quickstart.py
"""

from repro import WebIQConfig, WebIQMatcher, build_domain_dataset


def main() -> None:
    print("Building the airfare dataset (interfaces + corpus + sources)...")
    dataset = build_domain_dataset("airfare", n_interfaces=20, seed=1)
    print(f"  {len(dataset.interfaces)} interfaces, "
          f"{dataset.engine.n_documents} Surface-Web pages, "
          f"{len(dataset.sources)} Deep-Web sources")

    baseline_config = WebIQConfig(
        enable_surface=False, enable_attr_deep=False, enable_attr_surface=False
    )
    print("\nMatching with IceQ alone (the baseline)...")
    baseline = WebIQMatcher(baseline_config).run(dataset)
    print(f"  precision={baseline.metrics.precision:.3f}  "
          f"recall={baseline.metrics.recall:.3f}  "
          f"F-1={baseline.metrics.f1:.3f}")

    print("\nMatching with WebIQ instance acquisition...")
    webiq = WebIQMatcher(WebIQConfig()).run(dataset)
    print(f"  precision={webiq.metrics.precision:.3f}  "
          f"recall={webiq.metrics.recall:.3f}  "
          f"F-1={webiq.metrics.f1:.3f}")

    acquisition = webiq.acquisition
    print(f"\nInstance acquisition over no-instance attributes:")
    print(f"  Surface-only success: {acquisition.surface_success_rate:.1f}%")
    print(f"  Surface+Deep success: {acquisition.final_success_rate:.1f}%")

    print("\nSimulated overhead (minutes):")
    for account in ("matching", "surface", "attr_surface", "attr_deep"):
        print(f"  {account:13} {webiq.overhead_minutes(account):5.1f}")

    gain = webiq.metrics.f1 - baseline.metrics.f1
    print(f"\nWebIQ raised F-1 by {100 * gain:.1f} points "
          f"({100 * baseline.metrics.f1:.1f} -> {100 * webiq.metrics.f1:.1f}).")


if __name__ == "__main__":
    main()
