"""From 20 heterogeneous interfaces to one uniform query interface.

The paper's motivation: "an important focus of these efforts is to build a
uniform query interface to the data sources in the domain". This example
runs the full WebIQ + IceQ pipeline on the airfare interfaces, unifies the
match clusters into one interface, and renders it as HTML.

Run:  python examples/unified_interface.py
"""

from repro import WebIQConfig, WebIQMatcher, build_domain_dataset
from repro.deepweb.html import render_interface
from repro.matching.unify import build_unified_interface


def main() -> None:
    dataset = build_domain_dataset("airfare", n_interfaces=20, seed=1)
    print(f"Matching {len(dataset.interfaces)} airfare interfaces...")
    run = WebIQMatcher(WebIQConfig()).run(dataset)
    print(f"  F-1 = {run.metrics.f1:.3f}, "
          f"{len(run.match_result.clusters)} clusters")

    interface, provenance = build_unified_interface(
        run.match_result,
        interface_id="unified-airfare",
        domain="airfare",
        object_name="flight",
        min_coverage=8,        # keep fields that most sources understand
        max_instances=8,
    )

    print(f"\nUnified interface ({len(interface.attributes)} attributes):")
    for attr, info in zip(interface.attributes, provenance):
        values = f"  e.g. {', '.join(attr.instances[:4])}" \
            if attr.instances else ""
        votes = ", ".join(
            f"{label} x{count}"
            for label, count in sorted(info.label_votes.items(),
                                       key=lambda kv: -kv[1])[:3])
        print(f"  [{info.coverage:2d}/20 sources] {attr.label:18}"
              f" (seen as: {votes}){values}")

    print("\nAs an HTML form:\n")
    print(render_interface(interface))


if __name__ == "__main__":
    main()
