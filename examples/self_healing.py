"""Self-healing supervision: kills, torn journals and poisoned units.

Crash recovery (see ``examples/crash_recovery.py``) needs someone to
notice the death and restart the run. The :class:`RunSupervisor` is that
someone: it executes the pipeline in a supervised loop, classifies every
failure, and recovers without intervention. This walkthrough throws the
full arsenal at one run:

1. a deterministic kill schedule (two preemptions at journal boundaries);
2. a journal record torn during the downtime after the second death —
   salvaged back to the longest valid prefix, the damage quarantined to
   ``journal/quarantine/`` for inspection;
3. a poisoned unit that crashes the run on every attempt — quarantined
   after ``poison_threshold`` consecutive strikes so the run completes
   gracefully, reporting the unit with its full exception chain.

The run ends byte-identical to an uninterrupted one, minus only the
quarantined unit's instances.

Run:  python examples/self_healing.py
"""

import json
import os
import tempfile

from repro import (
    RestartPolicy,
    RunSupervisor,
    SupervisorConfig,
    UnitFaultInjector,
    WebIQConfig,
    WebIQMatcher,
    build_domain_dataset,
)
from repro.checkpoint import CheckpointConfig, RunJournal
from repro.io import run_result_to_dict

DOMAIN = "book"
N_INTERFACES = 6
SEED = 3


def comparable(result):
    """The export minus the (intentionally run-local) recovery sections."""
    payload = run_result_to_dict(result)
    for key in ("checkpoint", "format", "supervisor"):
        payload.pop(key, None)
    return json.dumps(payload, sort_keys=True)


def tear_newest_record(directory):
    records = sorted(name for name in os.listdir(directory)
                     if name.startswith("record-"))
    with open(os.path.join(directory, records[-1]), "w") as handle:
        handle.write('{"torn')  # a torn write, mid-envelope
    return records[-1]


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="webiq-self-healing-")
    journal = os.path.join(workdir, "journal")

    print(f"Reference run ({DOMAIN}, {N_INTERFACES} interfaces)...")
    dataset = build_domain_dataset(DOMAIN, N_INTERFACES, SEED)
    reference = WebIQMatcher(WebIQConfig()).run(dataset)
    print(f"  F-1={reference.metrics.f1:.3f}")

    # A throwaway journaled run tells us the unit keys and boundaries.
    probe = WebIQMatcher(WebIQConfig(checkpoint=CheckpointConfig(
        directory=journal))).run(
            build_domain_dataset(DOMAIN, N_INTERFACES, SEED))
    units = [tuple(body["unit"])
             for body in RunJournal.open(journal).records]
    boundaries = probe.checkpoint.boundaries
    poisoned = units[len(units) // 2]
    print(f"\nChaos schedule against a fresh supervised run:")
    print(f"  - kills at journal boundaries {boundaries // 4} and "
          f"{boundaries // 2}")
    print(f"  - the newest journal record torn after the second death")
    print(f"  - unit {list(poisoned)} crashes on every attempt")

    def chaos(attempt_index, directory):
        if attempt_index == 1:
            torn = tear_newest_record(directory)
            print(f"    [downtime after attempt 1] tore {torn}")

    config = WebIQConfig(
        checkpoint=CheckpointConfig(directory=journal),
        supervisor=SupervisorConfig(
            restart=RestartPolicy(max_restarts=8, poison_threshold=2),
            unit_faults=UnitFaultInjector({poisoned: -1}),
        ),
    )
    supervised_dataset = build_domain_dataset(DOMAIN, N_INTERFACES, SEED)
    result = RunSupervisor(
        config,
        kill_schedule=(boundaries // 4, boundaries // 2),
        chaos=chaos,
    ).run(supervised_dataset)

    report = result.supervisor
    print(f"\n{report.summary()}")
    for attempt in report.attempts:
        line = f"  attempt {attempt.index}: {attempt.outcome}"
        if attempt.error:
            line += f" ({attempt.error.split(':')[0]})"
        if attempt.salvage is not None:
            line += f" -> {attempt.salvage.summary()}"
        print(line)
    for q in report.quarantined_units:
        print(f"  quarantined {list(q.unit)} after {q.crashes} crashes "
              f"at attempts {list(q.restart_indices)}:")
        for entry in q.error_chain:
            print(f"    {entry}")

    # The oracle: a plain run told to skip the poisoned unit up front.
    oracle_config = WebIQConfig(
        checkpoint=CheckpointConfig(
            directory=os.path.join(workdir, "oracle")),
        supervisor=SupervisorConfig(quarantine=(poisoned,)),
    )
    oracle_dataset = build_domain_dataset(DOMAIN, N_INTERFACES, SEED)
    oracle = WebIQMatcher(oracle_config).run(oracle_dataset)

    print(f"\nSupervised export == clean run minus the quarantined unit: "
          f"{comparable(result) == comparable(oracle)}")
    print(f"F-1 with the poisoned unit quarantined: "
          f"{result.metrics.f1:.3f} (reference {reference.metrics.f1:.3f})")
    print(f"Damaged records preserved for inspection in "
          f"{os.path.join(journal, 'quarantine')}")


if __name__ == "__main__":
    main()
