"""Run report & decision provenance: why did the matcher do that?

Runs the full WebIQ pipeline on the bookstore domain with provenance
recording on, prints the run report (accuracy, per-phase acquisition
yield, the hardest decisions — the ones that landed closest to the
clustering threshold), and then walks one match decision end to end:
where the two attributes' instances came from, what got pruned on the
way, how the 0.6/0.4 LabelSim/DomSim blend came out against τ, and which
cluster-merge step committed the match.

Run:  python examples/run_report.py
"""

from repro import WebIQConfig, WebIQMatcher, build_domain_dataset
from repro.obs import ObsConfig, build_run_report


def main() -> None:
    print("Building the book dataset and running the pipeline "
          "(provenance on)...")
    dataset = build_domain_dataset("book", n_interfaces=8, seed=1)
    result = WebIQMatcher(WebIQConfig(obs=ObsConfig())).run(dataset)

    report = build_run_report([result])
    print("\n" + report.render())

    provenance = result.obs.provenance

    # Pick the decision the matcher found hardest: the positive match
    # whose blended similarity landed closest above the threshold.
    accepted = [e for e in provenance.explanations if e.exceeds_threshold]
    hardest = min(accepted, key=lambda e: (e.margin, e.a, e.b))
    a, b = hardest.a, hardest.b

    print(f"\nWalking one decision: {a} vs {b}")
    for key in (a, b):
        lineage = provenance.lineage_for(*key)
        prunes = provenance.prunes_for(*key)
        print(f"\n  {key[0]}/{key[1]}: {len(lineage)} instances acquired, "
              f"{len(prunes)} candidates pruned")
        for record in lineage[:3]:
            origin = record.phase
            if record.donor is not None:
                origin += f", borrowed from {record.donor[0]}/{record.donor[1]}"
            elif record.extraction_query:
                origin += f", extracted by {record.extraction_query!r}"
            print(f"    kept   {record.value!r} ({origin})")
        for event in prunes[:3]:
            detail = event.stage
            if event.deviation_sigmas is not None:
                detail += (f", {event.statistic} off by "
                           f"{event.deviation_sigmas:.1f} sigma")
            print(f"    pruned {event.value!r} ({detail})")

    print(f"\n  Sim = {hardest.alpha}*LabelSim({hardest.label_sim:.4f}) "
          f"+ {hardest.beta}*DomSim({hardest.dom_sim:.4f}) "
          f"= {hardest.sim:.4f} vs tau={hardest.threshold}")
    print(f"  margin above threshold: {hardest.margin:.4f} "
          f"(the run's closest call among accepted pairs)")

    merge = provenance.committing_merge(a, b)
    if merge is not None:
        print(f"  committed by merge step {merge.step} at linkage "
              f"{merge.linkage_value:.4f} > tau={merge.threshold}")

    print(f"\nFinal clusters: {len(result.match_result.clusters)}  "
          f"F-1: {result.metrics.f1:.3f}")


if __name__ == "__main__":
    main()
