"""Build a *custom* domain end to end and run WebIQ on it.

The five ICQ domains ship with the library, but every piece is pluggable.
This example defines a small "restaurant" domain from scratch — concepts,
label variants, value vocabulary — then generates interfaces, a synthetic
Surface Web and Deep-Web sources for it, and runs the full pipeline.

This is the template for applying the system to a new schema-matching
problem (the paper's §8 transfer direction).

Run:  python examples/custom_domain.py
"""

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets.concepts import Concept, DomainSpec, LabelVariant
from repro.datasets.corpus import CorpusConfig, build_corpus
from repro.datasets.dataset import DomainDataset
from repro.datasets.interfaces import generate_interfaces
from repro.datasets.sources import build_sources
from repro.surfaceweb.engine import SearchEngine

CUISINES = (
    "Italian", "Mexican", "Chinese", "Japanese", "Thai", "Indian",
    "French", "Greek", "Korean", "Vietnamese", "Spanish", "Lebanese",
    "Turkish", "Ethiopian", "Peruvian",
)
NEIGHBORHOODS = (
    "Downtown", "Midtown", "Old Town", "Riverside", "Uptown", "Chinatown",
    "Little Italy", "Harbor District", "University District", "West End",
    "East Side", "South Bay",
)
PRICE_LEVELS = ("$", "$$", "$$$", "$$$$")

RESTAURANT = DomainSpec(
    name="restaurant",
    object_name="restaurant",
    display_name="restaurant",
    concepts=(
        Concept(
            "cuisine", CUISINES,
            (LabelVariant("Cuisine", 0.5),
             LabelVariant("Cuisine type", 0.3),
             LabelVariant("Kitchen", 0.2, 0.0)),   # always text: an island
            presence=1.0, select_prob=0.5, select_count=(5, 9),
            web_richness=8, proximity_docs=8,
        ),
        Concept(
            "neighborhood", NEIGHBORHOODS,
            (LabelVariant("Neighborhood", 0.6),
             LabelVariant("Area", 0.4)),
            presence=0.9, select_prob=0.3, select_count=(4, 8),
            web_richness=8, proximity_docs=8,
        ),
        Concept(
            "price_level", PRICE_LEVELS,
            (LabelVariant("Price level", 1.0),),
            presence=0.7, select_prob=0.9, select_count=(2, 4),
            web_richness=2, proximity_docs=3,
        ),
        Concept(
            "party_size", tuple(str(n) for n in range(1, 13)),
            (LabelVariant("Party size", 0.6),
             LabelVariant("Guests", 0.4)),
            numeric=True, presence=0.6, select_prob=0.9, select_count=(6, 10),
            web_richness=3, proximity_docs=3,
        ),
    ),
)


def build_restaurant_dataset(n_interfaces: int = 12, seed: int = 5):
    """Assemble a DomainDataset by hand from the custom spec.

    ``build_domain_dataset`` only knows the five built-in domains; for a
    custom one we run the same four generators ourselves. The generators
    look specs up by name, so we register the spec first.
    """
    from repro.datasets import concepts as concepts_module

    concepts_module._SPECS[RESTAURANT.name] = RESTAURANT  # register

    generated, truth = generate_interfaces("restaurant", n_interfaces, seed)
    engine = SearchEngine(build_corpus("restaurant", seed, CorpusConfig()))
    sources = build_sources(generated, "restaurant", seed)
    return DomainDataset(
        domain="restaurant", spec=RESTAURANT, generated=generated,
        ground_truth=truth, engine=engine, sources=sources, seed=seed,
    )


def main() -> None:
    dataset = build_restaurant_dataset()
    print(f"Custom domain 'restaurant': {len(dataset.interfaces)} interfaces, "
          f"{dataset.engine.n_documents} Surface-Web pages")

    print("\nSample interface:")
    sample = dataset.interfaces[0]
    for attr in sample.attributes:
        values = f" {list(attr.instances[:3])}" if attr.instances else ""
        print(f"  {attr.label:15} ({attr.kind.value}){values}")

    baseline = WebIQMatcher(WebIQConfig(
        enable_surface=False, enable_attr_deep=False,
        enable_attr_surface=False)).run(dataset)
    webiq = WebIQMatcher(WebIQConfig()).run(dataset)

    print(f"\nBaseline F-1: {baseline.metrics.f1:.3f}")
    print(f"WebIQ    F-1: {webiq.metrics.f1:.3f}")
    print(f"Acquisition success (no-instance attrs): "
          f"{webiq.acquisition.final_success_rate:.1f}%")

    print("\nAcquired cuisine instances for 'Kitchen' attributes:")
    for gen in dataset.generated:
        for attr in gen.interface.attributes:
            if attr.label == "Kitchen" and attr.acquired:
                print(f"  {gen.interface.interface_id}: "
                      f"{', '.join(attr.acquired[:6])}")


if __name__ == "__main__":
    main()
