"""The matching service with two tenants: quotas, deadlines, warm epochs.

A single long-lived :class:`~repro.service.MatchingService` serves every
tenant from shared warm state — each completed run publishes its query
cache as a new epoch, so the *first* run pays the full Web-access bill
and everyone after starts warm. Admission control keeps tenants honest:

1. ``acme`` runs cold, then warm — watch the simulated-seconds collapse;
2. ``freeloader`` burns through its wall-clock quota and gets a typed
   ``AdmissionRejected`` at the door, spending nothing;
3. ``acme`` asks for an impossible deadline and degrades gracefully —
   the expired run's journaled spend is still charged, but warm state is
   exactly what it was (the epoch chain never sees the failure).

Run:  python examples/multi_tenant_service.py
"""

import tempfile

from repro.service import (
    MatchRequest,
    MatchingService,
    ServiceConfig,
    TenantQuota,
    check_service,
)
from repro.util.errors import AdmissionRejected


def run_one(service: MatchingService, request: MatchRequest):
    service.submit(request)
    return service.run_pending()[0]


def main() -> None:
    with tempfile.TemporaryDirectory() as spool:
        service = MatchingService(ServiceConfig(
            spool_dir=spool,
            # freeloader may spend at most 10 simulated seconds — even
            # one warm run (~11.5 s) exhausts it
            quotas={"freeloader": TenantQuota(max_wall_seconds=10.0)},
        ))

        print("== 1. cold run, then warm runs off the published epoch ==")
        for tenant in ("acme", "freeloader", "acme"):
            response = run_one(service, MatchRequest(
                tenant=tenant, domain="book"))
            print(f"  {response.request_id} {tenant:11} "
                  f"warm={str(response.warm):5} "
                  f"queries={response.queries:3d} "
                  f"sim-seconds={response.seconds:7.2f}")

        print("\n== 2. the over-quota tenant is rejected at the door ==")
        try:
            service.submit(MatchRequest(tenant="freeloader", domain="book"))
        except AdmissionRejected as rejected:
            print(f"  AdmissionRejected (reason={rejected.reason}):")
            print(f"    {rejected}")
        ledger = service.stats.ledger_for("freeloader")
        print(f"  freeloader ledger: {ledger.seconds:.2f} sim-seconds "
              f"spent, rejections={ledger.rejected}")

        print("\n== 3. an infeasible deadline degrades gracefully ==")
        chain_before = list(service.warm.chain)
        # a warm run needs ~11.5 simulated seconds; 5 cannot finish
        response = run_one(service, MatchRequest(
            tenant="acme", domain="book", deadline_seconds=5.0))
        print(f"  {response.request_id} outcome={response.outcome}")
        print(f"    {response.error}")
        print(f"    salvaged spend charged to acme: "
              f"{response.queries} queries, {response.probes} probes, "
              f"{response.seconds:.2f} sim-seconds")
        print(f"    epoch chain before={chain_before} "
              f"after={service.warm.chain}  (failure published nothing)")

        print("\n== 4. the service ledger and its conservation laws ==")
        stats = service.stats
        print(f"  submitted={stats.submitted} admitted={stats.admitted} "
              f"completed={stats.completed} "
              f"expired={stats.deadline_expired} "
              f"rejected={sum(stats.rejected.values())}")
        print(f"  cold runs: {stats.cold_runs} "
              f"(mean {stats.cold_mean_seconds:.2f} sim-sec)  "
              f"warm runs: {stats.warm_runs} "
              f"(mean {stats.warm_mean_seconds:.2f} sim-sec)")
        print(f"  {check_service(service).summary()}")


if __name__ == "__main__":
    main()
