"""Crash recovery: kill a run mid-acquisition, resume it, lose nothing.

A WebIQ run spends most of its (simulated) time on search-engine queries
and Deep-Web probes. With a checkpoint directory attached, every
completed unit of work is journaled durably — so when the process dies,
the paid-for work survives. This walkthrough:

1. runs the pipeline uninterrupted (the reference);
2. runs it again with a deterministic kill switch armed halfway through
   acquisition (a stand-in for a real crash or preemption);
3. resumes from the journal and shows the resumed run is byte-identical
   to the uninterrupted one while re-spending zero round trips on the
   journaled prefix.

Run:  python examples/crash_recovery.py
"""

import json
import os
import tempfile

from repro import WebIQConfig, WebIQMatcher, build_domain_dataset
from repro.checkpoint import CheckpointConfig
from repro.io import run_result_to_dict
from repro.util.errors import PreemptionError

DOMAIN = "book"
N_INTERFACES = 6
SEED = 3


def run(checkpoint=None):
    dataset = build_domain_dataset(DOMAIN, N_INTERFACES, SEED)
    result = WebIQMatcher(WebIQConfig(checkpoint=checkpoint)).run(dataset)
    round_trips = dataset.engine.query_count + sum(
        source.probe_count for source in dataset.sources.values())
    return result, round_trips


def comparable(result):
    """The export minus the (intentionally run-local) checkpoint section."""
    payload = run_result_to_dict(result)
    payload.pop("checkpoint", None)
    payload.pop("format", None)
    return json.dumps(payload, sort_keys=True)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="webiq-crash-recovery-")
    journal = os.path.join(workdir, "journal")

    print(f"Reference run ({DOMAIN}, {N_INTERFACES} interfaces)...")
    reference, reference_trips = run()
    print(f"  {reference_trips} engine queries + source probes, "
          f"F-1={reference.metrics.f1:.3f}")

    print("\nSame run, journaled, with a kill switch armed halfway...")
    probe, _ = run(CheckpointConfig(directory=journal))
    boundaries = probe.checkpoint.boundaries
    kill_at = boundaries // 2
    dataset = build_domain_dataset(DOMAIN, N_INTERFACES, SEED)
    try:
        WebIQMatcher(WebIQConfig(checkpoint=CheckpointConfig(
            directory=journal, kill_at=kill_at))).run(dataset)
    except PreemptionError as exc:
        print(f"  process died: {exc}")
    killed_trips = dataset.engine.query_count + sum(
        source.probe_count for source in dataset.sources.values())
    print(f"  {killed_trips} round trips were already paid for and "
          f"journaled in {journal}")

    print("\nResuming from the journal...")
    resumed, resumed_trips = run(
        CheckpointConfig(directory=journal, resume=True))
    print(f"  {resumed.checkpoint.summary()}")
    print(f"  fresh round trips this process: {resumed_trips}")

    identical = comparable(resumed) == comparable(reference)
    print(f"\nResumed export byte-identical to the uninterrupted run: "
          f"{identical}")
    print(f"Round trips: killed run {killed_trips} + resumed "
          f"{resumed_trips} = {killed_trips + resumed_trips} "
          f"(uninterrupted run: {reference_trips})")
    print(f"A cold restart would have re-spent all "
          f"{killed_trips} journaled round trips; resume re-spent 0.")


if __name__ == "__main__":
    main()
