"""Programmatic experiment runner: regenerate the paper's tables anywhere.

The pytest benchmarks under ``benchmarks/`` assert the paper's shapes; this
module exposes the same regeneration logic as a plain library API (and via
``python -m repro figure ...``), so the tables can be produced from
notebooks, scripts, or CI without pytest.

Example::

    from repro.experiments import ExperimentSuite

    suite = ExperimentSuite(seed=1, n_interfaces=20)
    for row in suite.figure6():
        print(row)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import WebIQConfig, WebIQMatcher, WebIQRunResult
from repro.datasets import (
    DOMAINS,
    DomainDataset,
    build_domain_dataset,
    dataset_statistics,
)

__all__ = ["ExperimentSuite", "render_rows"]

#: the named configurations shared by figures 6 and 7
_CONFIGS: Dict[str, WebIQConfig] = {
    "baseline": WebIQConfig(enable_surface=False, enable_attr_deep=False,
                            enable_attr_surface=False),
    "surface": WebIQConfig(enable_surface=True, enable_attr_deep=False,
                           enable_attr_surface=False),
    "surface+deep": WebIQConfig(enable_surface=True, enable_attr_deep=True,
                                enable_attr_surface=False),
    "webiq": WebIQConfig(),
    "webiq+threshold": WebIQConfig(threshold=0.1),
}


class ExperimentSuite:
    """Memoised pipeline runs over the five domains, one seed."""

    def __init__(
        self,
        seed: int = 1,
        n_interfaces: int = 20,
        domains: Sequence[str] = DOMAINS,
    ) -> None:
        self.seed = seed
        self.n_interfaces = n_interfaces
        self.domains = tuple(domains)
        self._datasets: Dict[str, DomainDataset] = {}
        self._runs: Dict[Tuple[str, str], WebIQRunResult] = {}

    # ------------------------------------------------------------- plumbing
    def dataset(self, domain: str) -> DomainDataset:
        if domain not in self._datasets:
            self._datasets[domain] = build_domain_dataset(
                domain, self.n_interfaces, self.seed)
        return self._datasets[domain]

    def run(self, domain: str, config_name: str) -> WebIQRunResult:
        key = (domain, config_name)
        if key not in self._runs:
            matcher = WebIQMatcher(_CONFIGS[config_name])
            self._runs[key] = matcher.run(self.dataset(domain))
        return self._runs[key]

    # ----------------------------------------------------------- the tables
    def table1_characteristics(self) -> List[Tuple]:
        """Table 1 cols 2-5: (domain, #attr, int_no_inst%, attr_no_inst%,
        findable%)."""
        rows = []
        for domain in self.domains:
            s = dataset_statistics(self.dataset(domain))
            rows.append((domain, round(s.avg_attributes, 1),
                         round(s.pct_interfaces_no_inst, 1),
                         round(s.pct_attrs_no_inst, 1),
                         round(s.pct_expected_findable, 1)))
        return rows

    def table1_acquisition(self) -> List[Tuple]:
        """Table 1 cols 6-7: (domain, surface%, surface+deep%)."""
        rows = []
        for domain in self.domains:
            report = self.run(domain, "webiq").acquisition
            rows.append((domain, round(report.surface_success_rate, 1),
                         round(report.final_success_rate, 1)))
        return rows

    def figure6(self) -> List[Tuple]:
        """(domain, baseline F1%, webiq F1%, webiq+threshold F1%)."""
        rows = []
        for domain in self.domains:
            rows.append((domain,) + tuple(
                round(100 * self.run(domain, name).metrics.f1, 1)
                for name in ("baseline", "webiq", "webiq+threshold")))
        return rows

    def figure7(self) -> List[Tuple]:
        """(domain, baseline, +Surface, +Attr-Deep, +Attr-Surface) F1%."""
        rows = []
        for domain in self.domains:
            rows.append((domain,) + tuple(
                round(100 * self.run(domain, name).metrics.f1, 1)
                for name in ("baseline", "surface", "surface+deep", "webiq")))
        return rows

    def figure8(self) -> List[Tuple]:
        """(domain, matching, surface, attr_surface, attr_deep) minutes."""
        rows = []
        for domain in self.domains:
            stopwatch = self.run(domain, "webiq").stopwatch
            rows.append((domain,) + tuple(
                round(stopwatch.minutes(account), 1)
                for account in ("matching", "surface", "attr_surface",
                                "attr_deep")))
        return rows

    def all_tables(self) -> Dict[str, List[Tuple]]:
        return {
            "table1_characteristics": self.table1_characteristics(),
            "table1_acquisition": self.table1_acquisition(),
            "figure6": self.figure6(),
            "figure7": self.figure7(),
            "figure8": self.figure8(),
        }


def render_rows(header: Sequence[str], rows: Sequence[Tuple]) -> str:
    """Render rows as an aligned text table (one string, no trailing \\n)."""
    table = [tuple(str(c) for c in header)]
    table += [tuple(str(c) for c in row) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
             for row in table]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)
