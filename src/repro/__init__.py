"""WebIQ reproduction: learning from the Web to match Deep-Web interfaces.

A full offline reproduction of *WebIQ: Learning from the Web to Match
Deep-Web Query Interfaces* (Wu, Doan, Yu — ICDE 2006), including every
substrate the paper depends on: a simulated Surface Web with a search
engine, probe-able Deep-Web sources, a Brill-style POS tagger, the IceQ
interface matcher, and ICQ-style evaluation datasets for five domains.

Quickstart::

    from repro import build_domain_dataset, WebIQConfig, WebIQMatcher

    dataset = build_domain_dataset("airfare", seed=1)
    result = WebIQMatcher(WebIQConfig(threshold=0.1)).run(dataset)
    print(result.metrics.f1)
"""

from repro.core.pipeline import WebIQConfig, WebIQMatcher, WebIQRunResult
from repro.core.acquisition import AcquisitionConfig, InstanceAcquirer
from repro.core.surface import SurfaceConfig, SurfaceDiscoverer
from repro.datasets import (
    DOMAINS,
    DomainDataset,
    build_domain_dataset,
    dataset_statistics,
)
from repro.matching import IceQMatcher, evaluate_matches
from repro.obs import (
    InvariantChecker,
    InvariantReport,
    Observability,
    ObsConfig,
    check_run,
)
from repro.perf import CacheConfig, CacheStats
from repro.resilience import (
    DegradationReport,
    FaultProfile,
    ResilienceConfig,
)
from repro.supervisor import (
    QuarantinedUnit,
    RestartPolicy,
    RunSupervisor,
    SupervisorConfig,
    SupervisorReport,
    UnitFaultInjector,
)

__version__ = "1.0.0"

__all__ = [
    "WebIQConfig",
    "WebIQMatcher",
    "WebIQRunResult",
    "AcquisitionConfig",
    "InstanceAcquirer",
    "SurfaceConfig",
    "SurfaceDiscoverer",
    "DOMAINS",
    "DomainDataset",
    "build_domain_dataset",
    "dataset_statistics",
    "IceQMatcher",
    "evaluate_matches",
    "FaultProfile",
    "ResilienceConfig",
    "DegradationReport",
    "CacheConfig",
    "CacheStats",
    "ObsConfig",
    "Observability",
    "InvariantChecker",
    "InvariantReport",
    "check_run",
    "QuarantinedUnit",
    "RestartPolicy",
    "RunSupervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "UnitFaultInjector",
    "__version__",
]
