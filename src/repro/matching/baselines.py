"""Simpler matching baselines for context (extensions, not in the paper).

The paper's baseline is the full IceQ (labels + instances). Related work it
discusses includes purely label-driven matchers (He & Chang's statistical
model "exploits only the statistics on the labels"). These two reference
points let users quantify what instances buy at each level:

- :class:`ExactLabelMatcher` — attributes match iff their normalised labels
  are identical (the naivest plausible system);
- :func:`label_only_matcher` — IceQ with β = 0: cosine label similarity
  plus clustering, but no instance evidence at all.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.deepweb.models import QueryInterface
from repro.matching.clustering import (
    Cluster,
    IceQMatcher,
    MatchResult,
    views_from_interfaces,
)
from repro.matching.similarity import AttributeView, SimilarityConfig

__all__ = ["ExactLabelMatcher", "label_only_matcher"]


class ExactLabelMatcher:
    """Attributes match iff their labels are equal after normalisation.

    Normalisation is lower-casing and whitespace collapsing — deliberately
    not the full word-vector treatment, because this baseline models a
    system with no linguistic machinery at all.
    """

    def match(self, interfaces: Sequence[QueryInterface]) -> MatchResult:
        views = views_from_interfaces(interfaces)
        return self.match_views(views)

    def match_views(self, views: Sequence[AttributeView]) -> MatchResult:
        groups: Dict[str, List[AttributeView]] = {}
        for view in views:
            key = " ".join(view.label.lower().split())
            groups.setdefault(key, []).append(view)
        clusters = [
            Cluster(sorted(members, key=lambda v: v.key))
            for _, members in sorted(groups.items())
        ]
        # Exact grouping needs no pairwise similarity evaluations at all.
        return MatchResult(clusters, threshold=0.0, similarity_evaluations=0)


def label_only_matcher(linkage: str = "average") -> IceQMatcher:
    """An IceQ variant that ignores instances entirely (α=1, β=0)."""
    return IceQMatcher(SimilarityConfig(alpha=1.0, beta=0.0), linkage=linkage)
