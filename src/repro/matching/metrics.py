"""Matching accuracy metrics: precision, recall, F-1 (paper §6).

"Precision P is the percentage of correct matches over all matches
identified by the system, while recall R is the percentage of correct
matches identified by the system over all matches given by domain experts.
F-1 ... is computed as 2PR/(R+P)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

__all__ = ["MatchMetrics", "evaluate_matches"]

Pair = FrozenSet[Tuple[str, str]]


@dataclass(frozen=True)
class MatchMetrics:
    """Precision / recall / F-1 of a predicted match-pair set."""

    precision: float
    recall: float
    f1: float
    n_predicted: int
    n_truth: int
    n_correct: int


def evaluate_matches(predicted: Set[Pair], truth: Set[Pair]) -> MatchMetrics:
    """Pairwise P/R/F-1 of ``predicted`` against expert ``truth``.

    Conventions for empty sets: with no true matches, recall is 1 (nothing
    was missed); with no predictions, precision is 1 (nothing was wrong).

    >>> t = {frozenset([("i1","a"),("i2","a")])}
    >>> evaluate_matches(t, t).f1
    1.0
    """
    correct = len(predicted & truth)
    precision = correct / len(predicted) if predicted else 1.0
    recall = correct / len(truth) if truth else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return MatchMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        n_predicted=len(predicted),
        n_truth=len(truth),
        n_correct=correct,
    )
