"""Automatic clustering-threshold search (extension).

The full IceQ learns its threshold interactively from user feedback; the
paper's experiments instead set τ manually (0, then 0.1). As a non-paper
extension we provide a simple automatic search: evaluate a grid of
thresholds against a labelled subset and return the F-1 maximiser — useful
when a few expert matches are available but a human is not in the loop.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Set, Tuple

from repro.matching.clustering import IceQMatcher
from repro.matching.metrics import evaluate_matches
from repro.matching.similarity import AttributeView

__all__ = ["search_threshold"]

Pair = FrozenSet[Tuple[str, str]]


def search_threshold(
    matcher: IceQMatcher,
    views: Sequence[AttributeView],
    truth: Set[Pair],
    grid: Sequence[float] = tuple(i / 20 for i in range(11)),
) -> Tuple[float, float]:
    """Return ``(best_threshold, best_f1)`` over ``grid``.

    Ties break toward the smallest threshold, mirroring the paper's
    observation that small thresholds already capture most of the precision
    gain.
    """
    if not grid:
        raise ValueError("threshold grid must be non-empty")
    best_tau = grid[0]
    best_f1 = -1.0
    for tau in grid:
        result = matcher.match_views(views, threshold=tau)
        metrics = evaluate_matches(result.match_pairs(), truth)
        if metrics.f1 > best_f1:
            best_f1 = metrics.f1
            best_tau = tau
    return best_tau, best_f1
