"""Automatic clustering-threshold search (extension).

The full IceQ learns its threshold interactively from user feedback; the
paper's experiments instead set τ manually (0, then 0.1). As a non-paper
extension we provide a simple automatic search: evaluate a grid of
thresholds against a labelled subset and return the F-1 maximiser — useful
when a few expert matches are available but a human is not in the loop.

When the matcher carries a provenance recorder, the grid's exploratory
matching runs are recorded *suspended* — they are not decisions of any
final run, and flooding the explanation buffer would break the invariant
law tying explanations to the final match's similarity evaluations. The
search instead leaves one compact
:class:`~repro.obs.provenance.ThresholdSearchRecord` (grid, per-τ F-1,
winner) so a report can still explain why a threshold was chosen.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import FrozenSet, Sequence, Set, Tuple

from repro.matching.clustering import IceQMatcher
from repro.matching.metrics import evaluate_matches
from repro.matching.similarity import AttributeView
from repro.obs.provenance import ThresholdSearchRecord

__all__ = ["search_threshold"]

Pair = FrozenSet[Tuple[str, str]]


def search_threshold(
    matcher: IceQMatcher,
    views: Sequence[AttributeView],
    truth: Set[Pair],
    grid: Sequence[float] = tuple(i / 20 for i in range(11)),
) -> Tuple[float, float]:
    """Return ``(best_threshold, best_f1)`` over ``grid``.

    Ties break toward the smallest threshold, mirroring the paper's
    observation that small thresholds already capture most of the precision
    gain.
    """
    if not grid:
        raise ValueError("threshold grid must be non-empty")
    best_tau = grid[0]
    best_f1 = -1.0
    f1_by_threshold = []
    with ExitStack() as stack:
        if matcher.provenance is not None:
            stack.enter_context(matcher.provenance.suspended())
        for tau in grid:
            result = matcher.match_views(views, threshold=tau)
            metrics = evaluate_matches(result.match_pairs(), truth)
            f1_by_threshold.append(metrics.f1)
            # True min-τ F-1 maximiser: a strictly better F-1 always wins,
            # and an equal F-1 wins only with a smaller τ — the contract
            # must hold for unsorted grids too, where "first encountered"
            # is not "smallest".
            if metrics.f1 > best_f1 or (metrics.f1 == best_f1
                                        and tau < best_tau):
                best_f1 = metrics.f1
                best_tau = tau
    if matcher.provenance is not None:
        matcher.provenance.record_threshold_search(ThresholdSearchRecord(
            grid=tuple(grid),
            f1_by_threshold=tuple(f1_by_threshold),
            chosen=best_tau,
            best_f1=best_f1,
        ))
    return best_tau, best_f1
