"""The IceQ interface-matching substrate (paper §5, citing Wu et al. 2004).

IceQ clusters attributes across a domain's query interfaces; each final
cluster contains the attributes that match. The similarity of attributes
``A`` and ``B`` is::

    Sim(A, B) = alpha * LabelSim(A, B) + beta * DomSim(A, B)

with ``alpha = 0.6`` and ``beta = 0.4`` (the paper's constants). ``LabelSim``
is the cosine of the labels' word vectors; ``DomSim`` compares the inferred
types (integer, real, monetary, date, string) and the instance values — and
is zero when either attribute has no instances, which is precisely why
WebIQ's acquired instances raise accuracy.

The paper runs the *automatic* version of IceQ with a manually set
clustering threshold (0, then 0.1); this package implements that version:
average-linkage agglomerative clustering under the cannot-link constraint
that two attributes of the same interface never co-cluster.
"""

from repro.matching.types import DomainType, infer_type
from repro.matching.similarity import (
    AttributeView,
    SimilarityConfig,
    attribute_similarity,
    domain_similarity,
    label_similarity,
    value_similarity,
)
from repro.matching.baselines import ExactLabelMatcher, label_only_matcher
from repro.matching.clustering import (
    Cluster,
    IceQMatcher,
    MatchResult,
    agglomerate,
)
from repro.matching.unify import (
    UnifiedAttribute,
    build_unified_interface,
    unify_cluster,
)
from repro.matching.interactive import (
    InteractiveThresholdLearner,
    truth_oracle,
)
from repro.matching.metrics import MatchMetrics, evaluate_matches
from repro.matching.threshold import search_threshold

__all__ = [
    "DomainType",
    "infer_type",
    "AttributeView",
    "SimilarityConfig",
    "attribute_similarity",
    "domain_similarity",
    "label_similarity",
    "value_similarity",
    "Cluster",
    "IceQMatcher",
    "MatchResult",
    "agglomerate",
    "UnifiedAttribute",
    "build_unified_interface",
    "unify_cluster",
    "MatchMetrics",
    "evaluate_matches",
    "search_threshold",
    "ExactLabelMatcher",
    "label_only_matcher",
    "InteractiveThresholdLearner",
    "truth_oracle",
]
