"""Interactive threshold learning — the full IceQ's user-in-the-loop mode.

The paper runs "only the automatic version of IceQ" with a manually set
threshold, noting that "during the clustering process IceQ can also
interact with the user to automatically learn a thresholding value". This
module implements that interactive mode against a pluggable oracle:

1. run the agglomerative clustering once, recording the similarity of every
   merge it performs;
2. select the most *informative* merges — those whose similarities bracket
   the current threshold estimate (binary search over the sorted merge
   similarities);
3. ask the oracle whether each selected merge was correct (a user would
   eyeball the two attribute groups; tests use the ground truth);
4. place τ between the lowest similarity of an approved merge and the
   highest similarity of a rejected one.

The question budget is logarithmic in the number of merges, mirroring the
paper's claim that a little interaction suffices to set τ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.matching.clustering import Cluster, IceQMatcher, MatchResult
from repro.matching.similarity import AttributeView

__all__ = ["MergeQuestion", "InteractiveThresholdLearner", "truth_oracle"]

AttrKey = Tuple[str, str]
Pair = FrozenSet[AttrKey]

#: An oracle answers: "do these two attribute groups describe the same
#: thing?" — True for a correct merge.
Oracle = Callable[[Cluster, Cluster], bool]


@dataclass(frozen=True)
class MergeQuestion:
    """One question asked during learning, for audit/inspection."""

    similarity: float
    left_labels: Tuple[str, ...]
    right_labels: Tuple[str, ...]
    answer: bool


def truth_oracle(truth_pairs: Set[Pair]) -> Oracle:
    """A simulated user answering from expert ground truth.

    A merge is "correct" when the majority of the cross pairs it creates
    are true matches — the judgement a user makes when shown two groups.
    """

    def oracle(left: Cluster, right: Cluster) -> bool:
        total = correct = 0
        for a in left.members:
            for b in right.members:
                total += 1
                if frozenset((a.key, b.key)) in truth_pairs:
                    correct += 1
        return total > 0 and correct / total >= 0.5

    return oracle


class InteractiveThresholdLearner:
    """Learn the clustering threshold from a handful of oracle questions."""

    def __init__(
        self,
        matcher: Optional[IceQMatcher] = None,
        max_questions: int = 10,
    ) -> None:
        if max_questions < 1:
            raise ValueError("need at least one question")
        self.matcher = matcher or IceQMatcher()
        self.max_questions = max_questions
        self.questions: List[MergeQuestion] = []

    def learn(self, views: Sequence[AttributeView], oracle: Oracle) -> float:
        """Return a learned τ; records its questions in :attr:`questions`."""
        merges = self._record_merges(views)
        if not merges:
            return 0.0
        # Merges sorted by ascending similarity: correct merges concentrate
        # at high similarity, wrong ones at low. Binary-search the boundary.
        merges.sort(key=lambda m: m[0])
        self.questions = []
        lo, hi = 0, len(merges) - 1
        lowest_good: Optional[float] = None
        highest_bad: Optional[float] = None
        asked = 0
        while lo <= hi and asked < self.max_questions:
            mid = (lo + hi) // 2
            similarity, left, right = merges[mid]
            answer = oracle(left, right)
            asked += 1
            self.questions.append(MergeQuestion(
                similarity=similarity,
                left_labels=tuple(m.label for m in left.members),
                right_labels=tuple(m.label for m in right.members),
                answer=answer,
            ))
            if answer:
                lowest_good = similarity
                hi = mid - 1
            else:
                highest_bad = similarity
                lo = mid + 1
        return self._place_threshold(lowest_good, highest_bad)

    # ------------------------------------------------------------ internals
    def _record_merges(
        self, views: Sequence[AttributeView]
    ) -> List[Tuple[float, Cluster, Cluster]]:
        """Replay the clustering at τ=0, capturing each merge's operands."""
        recorder = _MergeRecorder(self.matcher)
        return recorder.run(views)

    @staticmethod
    def _place_threshold(lowest_good: Optional[float],
                         highest_bad: Optional[float]) -> float:
        if lowest_good is None and highest_bad is None:
            return 0.0
        if lowest_good is None:
            # every inspected merge was wrong: cut above the worst
            return highest_bad  # type: ignore[return-value]
        if highest_bad is None:
            # every inspected merge was right: keep everything
            return 0.0
        return (lowest_good + highest_bad) / 2.0


class _MergeRecorder:
    """Re-runs the agglomerative loop, emitting each merge's operands.

    This mirrors :meth:`IceQMatcher.match_views` step for step (same
    linkage updates, same cannot-link constraint, same tie-breaking) — the
    one difference is that each merge's (similarity, clusters) triple is
    recorded before the merge happens.
    """

    def __init__(self, matcher: IceQMatcher) -> None:
        self.matcher = matcher

    def run(self, views: Sequence[AttributeView]):
        from repro.matching.similarity import attribute_similarity

        n = len(views)
        if n == 0:
            return []
        sim = [[0.0] * n for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                value = attribute_similarity(views[i], views[j],
                                             self.matcher.config)
                sim[i][j] = sim[j][i] = value

        members = {i: [i] for i in range(n)}
        ifaces = {i: {views[i].interface_id} for i in range(n)}
        avg = {i: {j: sim[i][j] for j in range(n) if j != i} for i in range(n)}
        active = set(range(n))
        merges = []

        while len(active) > 1:
            best_pair = None
            best_value = 0.0
            for i in active:
                for j, value in avg[i].items():
                    if j <= i or j not in active:
                        continue
                    if value > best_value and not (ifaces[i] & ifaces[j]):
                        best_value = value
                        best_pair = (i, j)
            if best_pair is None:
                break
            i, j = best_pair
            merges.append((
                best_value,
                Cluster([views[x] for x in sorted(members[i])]),
                Cluster([views[x] for x in sorted(members[j])]),
            ))
            size_i, size_j = len(members[i]), len(members[j])
            for k in active:
                if k in (i, j):
                    continue
                sim_ik = avg[i].get(k, 0.0)
                sim_jk = avg[j].get(k, 0.0)
                if self.matcher.linkage == "single":
                    merged = max(sim_ik, sim_jk)
                elif self.matcher.linkage == "complete":
                    merged = min(sim_ik, sim_jk)
                else:
                    merged = (size_i * sim_ik + size_j * sim_jk) / (
                        size_i + size_j)
                avg[i][k] = merged
                avg[k][i] = merged
                avg[k].pop(j, None)
            members[i].extend(members[j])
            ifaces[i] |= ifaces[j]
            del members[j], ifaces[j], avg[j]
            avg[i].pop(j, None)
            active.discard(j)
        return merges
