"""Constrained average-linkage clustering — the automatic IceQ matcher.

Attributes start as singleton clusters; the pair of clusters with the
highest average pairwise similarity merges, repeatedly, while that average
exceeds the clustering threshold τ. Two clusters may never merge if doing so
would put two attributes of the *same interface* together (an interface
never asks for the same thing twice — the standard cannot-link constraint
for interface matching, and the force that stops merging when τ = 0).

The paper runs the automatic IceQ with τ = 0 ("as long as two attributes
have a positive similarity, they may potentially be matched") and then with
τ = 0.1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.deepweb.models import QueryInterface
from repro.matching.similarity import (
    AttributeView,
    SimilarityConfig,
    similarity_components,
)
from repro.obs.provenance import (
    MatchExplanation,
    MergeStep,
    ProvenanceRecorder,
)

__all__ = [
    "Cluster",
    "MatchResult",
    "IceQMatcher",
    "agglomerate",
    "views_from_interfaces",
]

AttrKey = Tuple[str, str]

LINKAGES = ("single", "average", "complete")


@dataclass
class Cluster:
    """A group of matching attributes."""

    members: List[AttributeView]

    @property
    def keys(self) -> List[AttrKey]:
        return [m.key for m in self.members]

    @property
    def interfaces(self) -> Set[str]:
        return {m.interface_id for m in self.members}

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class MatchResult:
    """Outcome of one matching run."""

    clusters: List[Cluster]
    threshold: float
    #: number of pairwise similarity evaluations performed (the dominant
    #: compute cost; the pipeline charges simulated 2006-hardware time per
    #: evaluation for the Figure 8 overhead account)
    similarity_evaluations: int

    def match_pairs(self) -> Set[FrozenSet[AttrKey]]:
        """All unordered attribute pairs placed in the same cluster."""
        pairs: Set[FrozenSet[AttrKey]] = set()
        for cluster in self.clusters:
            for a, b in itertools.combinations(sorted(cluster.keys), 2):
                pairs.add(frozenset((a, b)))
        return pairs


def agglomerate(
    views: Sequence[AttributeView],
    sim_of: Callable[[int, int], float],
    threshold: float,
    linkage: str = "average",
    provenance: Optional[ProvenanceRecorder] = None,
) -> Tuple[List[List[int]], List[MergeStep]]:
    """The one agglomerative merge loop — batch IceQ and the incremental
    registry assimilator (:mod:`repro.registry`) both call exactly this
    function, so the tie-break order ("highest linkage value wins, equal
    values break toward the lowest ``(i, j)``") cannot drift between the
    two code paths.

    ``sim_of(i, j)`` (called with ``i < j``) supplies the singleton
    similarity for a view pair; the caller decides whether that is a dense
    precomputed matrix (batch) or a sparse cache that returns 0.0 for pairs
    a blocking stage never evaluated (incremental). Returns the final
    clusters as sorted member-index lists (ordered by smallest member
    index) plus the committed :class:`~repro.obs.provenance.MergeStep`
    sequence. When ``provenance`` is given, each step is also recorded.
    """
    if linkage not in LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}")
    n = len(views)

    # Active clusters: id -> (member indices, interface-id set).
    members: Dict[int, List[int]] = {i: [i] for i in range(n)}
    ifaces: Dict[int, Set[str]] = {i: {views[i].interface_id} for i in range(n)}
    # avg[i][j]: average linkage between active clusters (dict of dicts).
    avg: Dict[int, Dict[int, float]] = {
        i: {j: (sim_of(i, j) if i < j else sim_of(j, i)) for j in range(n) if j != i}
        for i in range(n)
    }
    active: Set[int] = set(range(n))
    merge_step = 0
    steps: List[MergeStep] = []

    while len(active) > 1:
        # Tie-breaking is explicit: highest linkage value wins, and
        # equal values break toward the lowest (i, j). The scan must
        # not depend on set/dict iteration order — CPython happens to
        # iterate small-int sets ascending, which masked ties until a
        # schedule (or another interpreter) ordered them differently.
        best_pair: Optional[Tuple[int, int]] = None
        best_value = threshold
        for i in sorted(active):
            for j in sorted(avg[i]):
                if j <= i or j not in active:
                    continue
                value = avg[i][j]
                better = value > best_value or (
                    value == best_value
                    and best_pair is not None
                    and (i, j) < best_pair
                )
                if better and not (ifaces[i] & ifaces[j]):
                    best_value = value
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        step = MergeStep(
            step=merge_step,
            linkage_value=best_value,
            threshold=threshold,
            cluster_a=tuple(views[idx].key for idx in members[i]),
            cluster_b=tuple(views[idx].key for idx in members[j]),
        )
        if provenance is not None:
            provenance.record_merge(step)
        steps.append(step)
        merge_step += 1
        size_i, size_j = len(members[i]), len(members[j])
        # Lance-Williams updates: the merged cluster's similarity to k.
        for k in active:
            if k in (i, j):
                continue
            sim_ik = avg[i].get(k, 0.0)
            sim_jk = avg[j].get(k, 0.0)
            if linkage == "single":
                merged = max(sim_ik, sim_jk)
            elif linkage == "complete":
                merged = min(sim_ik, sim_jk)
            else:
                merged = (size_i * sim_ik + size_j * sim_jk) / (
                    size_i + size_j
                )
            avg[i][k] = merged
            avg[k][i] = merged
            avg[k].pop(j, None)
        members[i].extend(members[j])
        ifaces[i] |= ifaces[j]
        del members[j], ifaces[j], avg[j]
        avg[i].pop(j, None)
        active.discard(j)

    return [sorted(members[i]) for i in sorted(active)], steps


def views_from_interfaces(interfaces: Sequence[QueryInterface]) -> List[AttributeView]:
    """Build matcher inputs from interfaces (pre-defined + acquired values)."""
    views = []
    for interface in interfaces:
        for attribute in interface.attributes:
            views.append(
                AttributeView(
                    interface_id=interface.interface_id,
                    name=attribute.name,
                    label=attribute.label,
                    instances=tuple(attribute.all_instances()),
                )
            )
    return views


class IceQMatcher:
    """Agglomerative matcher with cannot-link constraints.

    ``linkage`` selects how inter-cluster similarity is computed:

    - ``"average"`` (default): the size-weighted mean over member pairs
      (Lance-Williams update). Wrong cross-concept links get diluted by the
      many zero-similarity member pairs around them, so raising τ from 0 to
      0.1 prunes mostly-wrong merges — the paper's precision mechanism.
    - ``"single"``: the maximum pairwise similarity; permissive, chains
      aggressively (provided as an ablation).
    - ``"complete"``: the minimum over member pairs, most conservative.

    A :class:`~repro.obs.provenance.ProvenanceRecorder` passed as
    ``provenance`` receives one :class:`~repro.obs.provenance.MatchExplanation`
    per pairwise similarity evaluation (LabelSim/DomSim components, the
    α/β blend, the threshold it was compared against) and one
    :class:`~repro.obs.provenance.MergeStep` per committed merge. The
    recorded ``sim`` is the very float the matcher clusters on, so
    explanations recompute exactly; recording changes no decision.
    """

    def __init__(
        self,
        config: SimilarityConfig = SimilarityConfig(),
        linkage: str = "average",
        provenance: Optional[ProvenanceRecorder] = None,
    ) -> None:
        if linkage not in LINKAGES:
            raise ValueError(f"unknown linkage {linkage!r}")
        self.config = config
        self.linkage = linkage
        self.provenance = provenance

    def match(
        self,
        interfaces: Sequence[QueryInterface],
        threshold: float = 0.0,
    ) -> MatchResult:
        """Cluster all attributes of ``interfaces`` at threshold ``τ``.

        Merging continues while the best constraint-respecting pair of
        clusters has average similarity strictly greater than ``threshold``.
        """
        views = views_from_interfaces(interfaces)
        return self.match_views(views, threshold)

    def match_views(
        self,
        views: Sequence[AttributeView],
        threshold: float = 0.0,
    ) -> MatchResult:
        n = len(views)
        evaluations = 0
        provenance = self.provenance

        # Pairwise similarity matrix over singletons.
        sim: List[List[float]] = [[0.0] * n for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                label_sim, dom_sim, value = similarity_components(
                    views[i], views[j], self.config
                )
                evaluations += 1
                sim[i][j] = sim[j][i] = value
                if provenance is not None:
                    provenance.record_explanation(MatchExplanation(
                        a=views[i].key,
                        b=views[j].key,
                        label_sim=label_sim,
                        dom_sim=dom_sim,
                        alpha=self.config.alpha,
                        beta=self.config.beta,
                        sim=value,
                        threshold=threshold,
                    ))

        member_lists, _ = agglomerate(
            views,
            lambda i, j: sim[i][j],
            threshold,
            linkage=self.linkage,
            provenance=provenance,
        )
        clusters = [
            Cluster([views[idx] for idx in indices]) for indices in member_lists
        ]
        return MatchResult(clusters, threshold, evaluations)
