"""Domain-type inference for attribute instance sets.

IceQ evaluates domain similarity "based on the (inferred) types of the
domains (such as integer, real, monetary values and date) and the values in
the domains". This module infers one of those types from an instance set by
majority vote over per-value type recognition.
"""

from __future__ import annotations

import enum
import re
from typing import Iterable, Sequence

__all__ = ["DomainType", "infer_type", "value_type"]


class DomainType(enum.Enum):
    INTEGER = "integer"
    REAL = "real"
    MONETARY = "monetary"
    DATE = "date"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        return self in (DomainType.INTEGER, DomainType.REAL, DomainType.MONETARY)


_MONETARY_RE = re.compile(r"^\$\s*\d[\d,]*(?:\.\d+)?$")
_INTEGER_RE = re.compile(r"^\d[\d,]*$")
_REAL_RE = re.compile(r"^\d[\d,]*\.\d+$")

_MONTHS = {
    "january", "february", "march", "april", "may", "june", "july",
    "august", "september", "october", "november", "december",
    "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept",
    "oct", "nov", "dec",
}
_DATE_RE = re.compile(r"^\d{1,2}[/-]\d{1,2}(?:[/-]\d{2,4})?$")


def value_type(value: str) -> DomainType:
    """Type of a single value string.

    >>> value_type("$15,200")
    <DomainType.MONETARY: 'monetary'>
    >>> value_type("Jan 15")
    <DomainType.DATE: 'date'>
    """
    text = value.strip()
    if _MONETARY_RE.match(text):
        return DomainType.MONETARY
    if _INTEGER_RE.match(text):
        return DomainType.INTEGER
    if _REAL_RE.match(text):
        return DomainType.REAL
    if _DATE_RE.match(text):
        return DomainType.DATE
    words = text.lower().split()
    if words and words[0] in _MONTHS and len(words) <= 2:
        if len(words) == 1 or words[1].isdigit():
            return DomainType.DATE
    return DomainType.STRING


def infer_type(values: Sequence[str], majority: float = 0.6) -> DomainType:
    """Infer the type of an instance set by majority vote.

    A non-string type must account for at least ``majority`` of the values,
    otherwise the set is STRING (heterogeneous sets degrade to strings, as
    they would for a parser of real form data).
    """
    values = [v for v in values if v and v.strip()]
    if not values:
        return DomainType.STRING
    counts: dict = {}
    for value in values:
        t = value_type(value)
        counts[t] = counts.get(t, 0) + 1
    best = max(counts, key=lambda t: counts[t])
    if best is DomainType.STRING:
        return DomainType.STRING
    # Integers and reals mix freely (mileage lists, acreage lists).
    numeric = counts.get(DomainType.INTEGER, 0) + counts.get(DomainType.REAL, 0)
    if best in (DomainType.INTEGER, DomainType.REAL):
        if numeric / len(values) >= majority:
            return (
                DomainType.REAL
                if counts.get(DomainType.REAL, 0) > counts.get(DomainType.INTEGER, 0)
                else DomainType.INTEGER
            )
        return DomainType.STRING
    if counts[best] / len(values) >= majority:
        return best
    return DomainType.STRING
