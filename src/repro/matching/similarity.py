"""Attribute similarity: ``Sim = alpha·LabelSim + beta·DomSim`` (paper §5).

``LabelSim(A, B) = Cos(vec(A), vec(B))`` over word vectors of the labels,
after light normalisation (lower-casing, de-pluralisation, dropping pure
function words — but *not* prepositions like "from"/"to", which carry the
entire meaning of airfare labels).

``DomSim`` multiplies a type-compatibility factor by a value-overlap factor:
numeric domains compare by range overlap, string/date domains by containment
of normalised values. Attributes without instances have ``DomSim = 0`` —
the root cause of the matching failures WebIQ exists to fix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.matching.types import DomainType, infer_type
from repro.stats.outliers import parse_numeric
from repro.text.morphology import singularize
from repro.text.tokenizer import words as word_tokens
from repro.util import counters as work

__all__ = [
    "AttributeView",
    "SimilarityConfig",
    "label_similarity",
    "value_similarity",
    "domain_similarity",
    "attribute_similarity",
    "similarity_components",
    "normalize_label_words",
    "values_similar",
]

#: Function words dropped from label vectors. Deliberately tiny: "from" and
#: "to" carry the whole meaning of airfare labels and are kept; "on"/"at"
#: are grammatical filler ("Depart on", "Return on") whose overlap would
#: link attributes of *different* date concepts.
_LABEL_STOPWORDS = frozenset({"the", "a", "an", "please", "your", "enter",
                              "select", "choose", "on", "at"})


@dataclass(frozen=True)
class SimilarityConfig:
    """Weights and knobs of the combined similarity (paper: α=.6, β=.4)."""

    alpha: float = 0.6
    beta: float = 0.4
    #: type factor for numeric-family mismatches (integer vs monetary, ...)
    numeric_family_factor: float = 0.6


@dataclass(frozen=True)
class AttributeView:
    """What the matcher sees of an attribute: identity, label, instances."""

    interface_id: str
    name: str
    label: str
    instances: Tuple[str, ...]

    @property
    def key(self) -> Tuple[str, str]:
        return (self.interface_id, self.name)


def normalize_label_words(label: str) -> List[str]:
    """Lower-cased, de-pluralised, stopword-filtered words of a label.

    >>> normalize_label_words("Departure Cities")
    ['departure', 'city']
    """
    out = []
    for word in word_tokens(label):
        low = singularize(word.lower())
        if low not in _LABEL_STOPWORDS:
            out.append(low)
    return out


def label_similarity(label_a: str, label_b: str) -> float:
    """Cosine similarity of two labels' word vectors.

    >>> round(label_similarity("From city", "Departure city"), 3)
    0.5
    >>> label_similarity("Airline", "Carrier")
    0.0
    """
    words_a = normalize_label_words(label_a)
    words_b = normalize_label_words(label_b)
    if not words_a or not words_b:
        return 0.0
    vec_a: Dict[str, int] = {}
    vec_b: Dict[str, int] = {}
    for w in words_a:
        vec_a[w] = vec_a.get(w, 0) + 1
    for w in words_b:
        vec_b[w] = vec_b.get(w, 0) + 1
    dot = sum(vec_a[w] * vec_b.get(w, 0) for w in vec_a)
    norm = math.sqrt(sum(v * v for v in vec_a.values())) * math.sqrt(
        sum(v * v for v in vec_b.values())
    )
    return dot / norm if norm else 0.0


def values_similar(value_a: str, value_b: str) -> bool:
    """Are two instance values "very similar" (paper §5, case 2)?

    Case-insensitive equality, or a word-level Jaccard of at least 0.5
    ("Delta Air Lines" ~ "Delta Airlines" fails, but "United Airlines" ~
    "United" passes via the 0.5 overlap rule).
    """
    a = value_a.strip().lower()
    b = value_b.strip().lower()
    if a == b:
        return True
    set_a = set(a.split())
    set_b = set(b.split())
    if not set_a or not set_b:
        return False
    union = set_a | set_b
    return len(set_a & set_b) / len(union) >= 0.5


def value_similarity(values_a: Sequence[str], values_b: Sequence[str]) -> float:
    """Containment overlap of two string-domain instance sets in [0, 1].

    ``|A ∩ B| / min(|A|, |B|)`` with case-insensitive matching; containment
    (rather than Jaccard) because interfaces expose different-sized samples
    of the same underlying domain.
    """
    if not values_a or not values_b:
        return 0.0
    set_a = {v.strip().lower() for v in values_a}
    set_b = {v.strip().lower() for v in values_b}
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def _numeric_range(values: Sequence[str]) -> Optional[Tuple[float, float]]:
    numbers = []
    for value in values:
        try:
            numbers.append(parse_numeric(value))
        except ValueError:
            continue
    if not numbers:
        return None
    return (min(numbers), max(numbers))


def _range_overlap(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    if hi < lo:
        return 0.0
    span = max(a[1], b[1]) - min(a[0], b[0])
    if span == 0:
        return 1.0  # both ranges are the same single point
    return (hi - lo) / span


def domain_similarity(
    values_a: Sequence[str],
    values_b: Sequence[str],
    config: SimilarityConfig = SimilarityConfig(),
) -> float:
    """DomSim: type compatibility times value overlap; 0 without instances."""
    if not values_a or not values_b:
        return 0.0
    type_a = infer_type(values_a)
    type_b = infer_type(values_b)
    if type_a is type_b:
        type_factor = 1.0
    elif type_a.is_numeric and type_b.is_numeric:
        type_factor = config.numeric_family_factor
    else:
        return 0.0
    if type_a.is_numeric and type_b.is_numeric:
        range_a = _numeric_range(values_a)
        range_b = _numeric_range(values_b)
        if range_a is None or range_b is None:
            return 0.0
        return type_factor * _range_overlap(range_a, range_b)
    return type_factor * value_similarity(values_a, values_b)


def similarity_components(
    a: AttributeView,
    b: AttributeView,
    config: SimilarityConfig = SimilarityConfig(),
) -> Tuple[float, float, float]:
    """``(LabelSim, DomSim, Sim)`` with the blend computed exactly as
    :func:`attribute_similarity` computes it — provenance records built
    from these components recompute to the matcher's ``Sim`` bit for bit.
    """
    if work.ACTIVE is not None:
        work.ACTIVE.bump("similarity.evaluations")
    label_sim = label_similarity(a.label, b.label)
    dom_sim = domain_similarity(a.instances, b.instances, config)
    return label_sim, dom_sim, config.alpha * label_sim + config.beta * dom_sim


def attribute_similarity(
    a: AttributeView,
    b: AttributeView,
    config: SimilarityConfig = SimilarityConfig(),
) -> float:
    """``Sim(A,B) = α·LabelSim + β·DomSim`` (paper's α=.6, β=.4 defaults)."""
    return similarity_components(a, b, config)[2]
