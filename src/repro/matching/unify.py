"""Build a unified query interface from match clusters.

The paper's §1: "Once the interfaces have been matched, approaches such as
[27] can be employed to construct a uniform query interface and to
facilitate querying the data sources." This module provides that last step
in a simple, deterministic form:

- each cluster that spans enough interfaces becomes one unified attribute;
- its label is the cluster's most frequent label (ties break to the
  shortest, then lexicographic — users prefer terse canonical names);
- its instances are the union of the members' values (pre-defined first),
  capped and ordered by how many members carry each value (consensus
  values first);
- attributes are ordered by cluster coverage, so the unified form leads
  with the fields every source understands.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.deepweb.models import Attribute, AttributeKind, QueryInterface
from repro.matching.clustering import Cluster, MatchResult

__all__ = ["UnifiedAttribute", "build_unified_interface", "unify_cluster"]


@dataclass(frozen=True)
class UnifiedAttribute:
    """One attribute of the unified interface, with its provenance."""

    label: str
    instances: Tuple[str, ...]
    #: interfaces contributing to this attribute
    coverage: int
    #: every (interface_id, attribute_name) merged into this attribute
    members: Tuple[Tuple[str, str], ...]
    #: member label -> count, for inspection
    label_votes: Dict[str, int]


def build_unified_interface(
    match_result: MatchResult,
    interface_id: str = "unified",
    domain: str = "unified",
    object_name: str = "object",
    min_coverage: int = 2,
    max_instances: int = 25,
) -> Tuple[QueryInterface, List[UnifiedAttribute]]:
    """Construct the uniform interface from a matching result.

    Clusters covering fewer than ``min_coverage`` interfaces are dropped
    (site-specific oddities do not belong on a uniform front end). Returns
    the interface plus per-attribute provenance.
    """
    if min_coverage < 1:
        raise ValueError("min_coverage must be at least 1")

    unified: List[UnifiedAttribute] = []
    for cluster in match_result.clusters:
        coverage = len(cluster.interfaces)
        if coverage < min_coverage:
            continue
        unified.append(unify_cluster(cluster, coverage, max_instances))

    # Highest-coverage attributes first; deterministic tie-breaks.
    unified.sort(key=lambda u: (-u.coverage, u.label.lower()))

    attributes = []
    used: Dict[str, int] = {}
    for u in unified:
        name = "_".join(u.label.lower().split()) or "field"
        if name in used:
            used[name] += 1
            name = f"{name}_{used[name]}"
        else:
            used[name] = 0
        if u.instances:
            attributes.append(Attribute(
                name=name, label=u.label, kind=AttributeKind.SELECT,
                instances=u.instances[:max_instances],
            ))
        else:
            attributes.append(Attribute(name=name, label=u.label))

    interface = QueryInterface(
        interface_id=interface_id,
        domain=domain,
        object_name=object_name,
        attributes=attributes,
    )
    return interface, unified


def unify_cluster(cluster: Cluster, coverage: int,
                  max_instances: int = 25) -> UnifiedAttribute:
    """Collapse one cluster into its canonical label and value domain.

    Shared by the unified-interface builder above and the attribute
    registry (:mod:`repro.registry`), whose entries carry exactly this
    unified form.
    """
    label_votes = Counter(m.label for m in cluster.members)
    # most frequent; ties -> shortest label -> lexicographic
    label = min(
        label_votes,
        key=lambda l: (-label_votes[l], len(l), l.lower()),
    )
    value_votes: Counter = Counter()
    spelling: Dict[str, str] = {}
    for member in cluster.members:
        for value in member.instances:
            low = value.lower()
            value_votes[low] += 1
            spelling.setdefault(low, value)
    ranked = sorted(
        value_votes,
        key=lambda v: (-value_votes[v], v),
    )[:max_instances]
    return UnifiedAttribute(
        label=label,
        instances=tuple(spelling[v] for v in ranked),
        coverage=coverage,
        members=tuple(sorted(m.key for m in cluster.members)),
        label_votes=dict(label_votes),
    )
