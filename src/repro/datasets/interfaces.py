"""Interface-set generation with ground truth.

Generates the ICQ-style evaluation set: ``n`` query interfaces per domain
(20 in the paper), each instantiating a subset of the domain's concepts with
a sampled label variant and widget. The ground truth is by construction:
two attributes match iff they instantiate the same concept — the machine
analogue of the paper's "matches given by domain experts".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.datasets.concepts import Concept, DomainSpec, domain_spec
from repro.deepweb.models import Attribute, AttributeKind, QueryInterface
from repro.util.rng import derive_rng

__all__ = ["GeneratedInterface", "GroundTruth", "generate_interfaces"]

#: Minimum attributes per interface; real interfaces always have a few.
_MIN_ATTRIBUTES = 3


@dataclass(frozen=True)
class GeneratedInterface:
    """A generated interface plus its generation metadata."""

    interface: QueryInterface
    #: attribute name -> concept name (attribute names equal concept names,
    #: but consumers must treat this mapping as the ground truth, not names)
    concept_of: Dict[str, str]
    #: attribute name -> index of the value pool its SELECT values came from
    pool_of: Dict[str, int]


@dataclass
class GroundTruth:
    """Expert matches: the partition of all attributes into concept clusters."""

    #: concept name -> set of (interface_id, attribute_name)
    clusters: Dict[str, Set[Tuple[str, str]]] = field(default_factory=dict)

    def add(self, concept: str, interface_id: str, attribute: str) -> None:
        self.clusters.setdefault(concept, set()).add((interface_id, attribute))

    def concept_of(self, interface_id: str, attribute: str) -> str:
        for concept, members in self.clusters.items():
            if (interface_id, attribute) in members:
                return concept
        raise KeyError((interface_id, attribute))

    def match_pairs(self) -> Set[FrozenSet[Tuple[str, str]]]:
        """All unordered matching attribute pairs (the evaluation target)."""
        pairs: Set[FrozenSet[Tuple[str, str]]] = set()
        for members in self.clusters.values():
            for a, b in itertools.combinations(sorted(members), 2):
                pairs.add(frozenset((a, b)))
        return pairs

    @property
    def n_attributes(self) -> int:
        return sum(len(m) for m in self.clusters.values())


def generate_interfaces(
    domain: str,
    n_interfaces: int = 20,
    seed: int = 0,
) -> Tuple[List[GeneratedInterface], GroundTruth]:
    """Generate ``n_interfaces`` interfaces for ``domain`` plus ground truth.

    Generation is deterministic in ``(domain, n_interfaces, seed)``. Every
    concept with ``presence == 1.0`` appears on every interface; others
    appear with their presence probability, re-drawn until the interface has
    at least :data:`_MIN_ATTRIBUTES` attributes.
    """
    spec = domain_spec(domain)
    truth = GroundTruth()
    generated: List[GeneratedInterface] = []

    for i in range(n_interfaces):
        rng = derive_rng(seed, "interface", domain, i)
        chosen = _choose_concepts(spec, rng)
        attributes: List[Attribute] = []
        concept_of: Dict[str, str] = {}
        pool_of: Dict[str, int] = {}
        interface_id = f"{domain}-{i:02d}"

        for concept in chosen:
            variant = _sample_variant(concept, rng)
            label = variant.label
            select_prob = (
                concept.select_prob
                if variant.select_prob is None
                else variant.select_prob
            )
            n_pools = len(concept.value_pools) if concept.value_pools else 1
            pool_index = (
                variant.pool % n_pools
                if variant.pool is not None
                else rng.randrange(n_pools)
            )
            if rng.random() < select_prob:
                lo, hi = concept.select_count
                pool = list(concept.pool_values(pool_index))
                count = min(rng.randint(lo, hi), len(pool))
                values = tuple(rng.sample(pool, count))
                attribute = Attribute(
                    name=concept.name, label=label,
                    kind=AttributeKind.SELECT, instances=values,
                )
            else:
                attribute = Attribute(
                    name=concept.name, label=label, kind=AttributeKind.TEXT,
                )
            attributes.append(attribute)
            concept_of[concept.name] = concept.name
            pool_of[concept.name] = pool_index
            truth.add(concept.name, interface_id, concept.name)

        interface = QueryInterface(
            interface_id=interface_id,
            domain=domain,
            object_name=spec.object_name,
            attributes=attributes,
        )
        generated.append(GeneratedInterface(interface, concept_of, pool_of))

    return generated, truth


def _choose_concepts(spec: DomainSpec, rng) -> List[Concept]:
    """Sample the concept subset for one interface (≥ _MIN_ATTRIBUTES)."""
    while True:
        chosen = [c for c in spec.concepts if rng.random() < c.presence]
        if len(chosen) >= _MIN_ATTRIBUTES:
            return chosen


def _sample_variant(concept: Concept, rng) -> "LabelVariant":
    total = sum(v.weight for v in concept.label_variants)
    pick = rng.random() * total
    acc = 0.0
    for variant in concept.label_variants:
        acc += variant.weight
        if pick <= acc:
            return variant
    return concept.label_variants[-1]
