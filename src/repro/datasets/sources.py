"""Deep-Web source construction for generated interfaces.

Each generated interface gets a :class:`~repro.deepweb.source.DeepWebSource`
whose value recognizers come from the concept definitions (a source in the
airfare domain recognises any known city as a departure city, any known date
as a travel date) and whose hidden records are sampled from the interface's
value pools (a source whose airline SELECT lists North-American carriers
also *stores* mostly North-American carriers).

Two realism knobs shape Attr-Deep's behaviour:

- ``required_source_rate`` — fraction of sources that demand one of their
  free-text attributes be filled; probing any *other* attribute of such a
  source fails, which is one of the paper's reasons Deep-Web validation is
  not universally successful;
- failure style alternates between "no results" pages and explicit
  validation-error pages, exercising both branches of the response
  heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.datasets.concepts import Concept, DomainSpec, domain_spec
from repro.datasets.interfaces import GeneratedInterface
from repro.deepweb.models import AttributeKind
from repro.deepweb.source import DeepWebSource
from repro.util.rng import derive_rng

__all__ = ["SourceConfig", "build_source", "build_sources"]


@dataclass(frozen=True)
class SourceConfig:
    """Knobs of source construction."""

    n_records: Tuple[int, int] = (40, 80)
    #: probability a record has a value for a given attribute
    record_fill_rate: float = 0.9
    #: fraction of sources requiring their first free-text attribute
    required_source_rate: float = 0.1


def _membership_recognizer(values: Tuple[str, ...]) -> Callable[[str], bool]:
    lowered = {v.lower() for v in values}

    def recognize(value: str) -> bool:
        return value.lower() in lowered

    return recognize


def _accept_all(_value: str) -> bool:
    return True


def build_source(
    gen: GeneratedInterface,
    spec: DomainSpec,
    seed: int = 0,
    config: SourceConfig = SourceConfig(),
) -> DeepWebSource:
    """Build the Deep-Web source behind one generated interface."""
    interface = gen.interface
    rng = derive_rng(seed, "source", interface.interface_id)

    recognizers: Dict[str, Callable[[str], bool]] = {}
    for attribute in interface.attributes:
        concept = spec.concept(gen.concept_of[attribute.name])
        if not concept.findable and concept.select_prob == 0.0:
            # Generic free-text fields (keywords, description) accept anything.
            recognizers[attribute.name] = _accept_all
        else:
            recognizers[attribute.name] = _membership_recognizer(concept.values)

    records: List[Dict[str, str]] = []
    lo, hi = config.n_records
    for _ in range(rng.randint(lo, hi)):
        record: Dict[str, str] = {}
        for attribute in interface.attributes:
            if rng.random() >= config.record_fill_rate:
                continue
            concept = spec.concept(gen.concept_of[attribute.name])
            pool = concept.pool_values(gen.pool_of[attribute.name])
            record[attribute.name] = rng.choice(list(pool))
        records.append(record)

    required: Set[str] = set()
    if rng.random() < config.required_source_rate:
        text_attrs = [
            a.name for a in interface.attributes
            if a.kind is AttributeKind.TEXT
        ]
        if text_attrs:
            required.add(text_attrs[0])

    failure_style = "validation_error" if rng.random() < 0.4 else "no_results"
    return DeepWebSource(
        interface=interface,
        recognizers=recognizers,
        records=records,
        required_attributes=required,
        failure_style=failure_style,
    )


def build_sources(
    generated: List[GeneratedInterface],
    domain: str,
    seed: int = 0,
    config: SourceConfig = SourceConfig(),
) -> Dict[str, DeepWebSource]:
    """Sources for all generated interfaces, keyed by interface id."""
    spec = domain_spec(domain)
    return {
        gen.interface.interface_id: build_source(gen, spec, seed, config)
        for gen in generated
    }
