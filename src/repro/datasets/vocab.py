"""Value vocabularies for the five ICQ domains.

These lists play the role of the real world: interface SELECT widgets sample
their pre-defined values from them, Deep-Web sources recognise them, backing
records are drawn from them, and the synthetic Surface-Web corpus embeds
them in pattern sentences. Names are real-world values (cities, airlines,
car makes, ...) so the type-specific outlier statistics (capitalisation,
word counts, lengths) behave as they would on real data.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [name for name in dir() if name.isupper()]  # populated below

US_CITIES: Tuple[str, ...] = (
    "Boston", "Chicago", "New York", "Los Angeles", "San Francisco",
    "Seattle", "Denver", "Miami", "Atlanta", "Dallas", "Houston",
    "Phoenix", "Philadelphia", "Detroit", "Minneapolis", "St. Louis",
    "Baltimore", "Charlotte", "Portland", "Las Vegas", "San Diego",
    "Orlando", "Tampa", "Austin", "Nashville", "Memphis", "Cleveland",
    "Pittsburgh", "Cincinnati", "Kansas City", "Sacramento", "Columbus",
    "Indianapolis", "Milwaukee", "Albuquerque", "Tucson", "Omaha",
    "Oakland", "Raleigh", "Honolulu", "Anchorage", "Salt Lake City",
    "Buffalo", "Hartford", "Providence", "Richmond", "Louisville",
    "Oklahoma City", "Jacksonville", "San Antonio", "El Paso", "Fresno",
    "Tulsa", "Wichita", "Spokane", "Boise", "Des Moines", "Madison",
    "Savannah", "Charleston",
)

WORLD_CITIES: Tuple[str, ...] = (
    "London", "Paris", "Rome", "Madrid", "Berlin", "Amsterdam", "Dublin",
    "Vienna", "Zurich", "Brussels", "Lisbon", "Prague", "Athens",
    "Stockholm", "Copenhagen", "Oslo", "Helsinki", "Toronto", "Vancouver",
    "Montreal", "Tokyo", "Osaka", "Seoul", "Beijing", "Shanghai",
    "Hong Kong", "Singapore", "Sydney", "Melbourne", "Auckland",
    "Mexico City", "Sao Paulo", "Buenos Aires", "Cancun", "Frankfurt",
    "Munich", "Milan", "Barcelona", "Geneva", "Istanbul",
)

AIRPORT_CODES: Tuple[str, ...] = (
    "LAX", "ORD", "JFK", "BOS", "SFO", "SEA", "DEN", "MIA", "ATL", "DFW",
    "IAH", "PHX", "PHL", "DTW", "MSP", "STL", "BWI", "CLT", "PDX", "LAS",
    "SAN", "MCO", "TPA", "AUS", "BNA", "LGA", "EWR", "IAD", "DCA", "SLC",
)

NORTH_AMERICAN_AIRLINES: Tuple[str, ...] = (
    "Air Canada", "American Airlines", "United Airlines", "Delta Air Lines",
    "Continental Airlines", "Northwest Airlines", "US Airways",
    "Southwest Airlines", "Alaska Airlines", "America West",
    "JetBlue Airways", "AirTran Airways", "Frontier Airlines",
    "Spirit Airlines", "Hawaiian Airlines", "Midwest Airlines",
    "ATA Airlines", "WestJet",
)

EUROPEAN_AIRLINES: Tuple[str, ...] = (
    "Aer Lingus", "British Airways", "Lufthansa", "Air France", "KLM",
    "Alitalia", "Iberia", "Swiss International", "Austrian Airlines",
    "SAS Scandinavian", "Finnair", "Virgin Atlantic", "TAP Portugal",
    "Olympic Airlines", "LOT Polish Airlines", "Czech Airlines",
)

MONTHS: Tuple[str, ...] = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)

MONTH_ABBREVS: Tuple[str, ...] = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct",
    "Nov", "Dec",
)

CABIN_CLASSES: Tuple[str, ...] = (
    "Economy", "Premium Economy", "Business", "First Class", "Coach",
)

TRIP_TYPES: Tuple[str, ...] = ("Round trip", "One way", "Multi-city")

TIMES_OF_DAY: Tuple[str, ...] = (
    "Morning", "Afternoon", "Evening", "Night", "Anytime", "Early morning",
)

CAR_MAKES: Tuple[str, ...] = (
    "Honda", "Toyota", "Ford", "Chevrolet", "Nissan", "BMW", "Mercedes-Benz",
    "Volkswagen", "Audi", "Mazda", "Subaru", "Hyundai", "Kia", "Volvo",
    "Jeep", "Dodge", "Chrysler", "Pontiac", "Buick", "Cadillac", "Lexus",
    "Acura", "Infiniti", "Mitsubishi", "Saturn", "Lincoln", "Mercury",
    "Porsche", "Jaguar", "Saab",
)

CAR_MODELS: Tuple[str, ...] = (
    "Accord", "Civic", "Camry", "Corolla", "Mustang", "Explorer", "Focus",
    "Taurus", "Malibu", "Impala", "Altima", "Maxima", "Sentra", "Passat",
    "Jetta", "Golf", "Outback", "Forester", "Elantra", "Sonata", "Odyssey",
    "Pilot", "Highlander", "Sienna", "Tahoe", "Silverado", "Ranger",
    "Wrangler", "Grand Cherokee", "Durango",
)

CAR_COLORS: Tuple[str, ...] = (
    "Black", "White", "Silver", "Red", "Blue", "Green", "Gray", "Gold",
    "Beige", "Brown", "Maroon", "Yellow", "Orange", "Burgundy", "Champagne",
)

BODY_STYLES: Tuple[str, ...] = (
    "Sedan", "Coupe", "Convertible", "Hatchback", "Wagon", "SUV",
    "Pickup truck", "Minivan", "Van", "Crossover",
)

TRANSMISSIONS: Tuple[str, ...] = ("Automatic", "Manual", "Semi-automatic")

US_STATES: Tuple[str, ...] = (
    "Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
    "Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
    "Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
    "Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
    "Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
    "New Hampshire", "New Jersey", "New Mexico", "New York",
    "North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
    "Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
    "Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
    "West Virginia", "Wisconsin", "Wyoming",
)

AUTHORS: Tuple[str, ...] = (
    "Mark Twain", "Jane Austen", "Charles Dickens", "Ernest Hemingway",
    "William Faulkner", "John Steinbeck", "Toni Morrison", "Stephen King",
    "Agatha Christie", "J.K. Rowling", "George Orwell", "Harper Lee",
    "F. Scott Fitzgerald", "Virginia Woolf", "James Joyce", "Leo Tolstoy",
    "Fyodor Dostoevsky", "Gabriel Garcia Marquez", "Isabel Allende",
    "Kurt Vonnegut", "Ray Bradbury", "Isaac Asimov", "Arthur Clarke",
    "Philip Roth", "John Updike", "Saul Bellow", "Joyce Carol Oates",
    "Margaret Atwood", "Salman Rushdie", "Umberto Eco", "Don DeLillo",
    "Thomas Pynchon", "Cormac McCarthy", "Annie Proulx", "Michael Crichton",
    "Tom Clancy", "John Grisham", "Danielle Steel", "Nora Roberts",
    "Dan Brown", "Anne Rice", "Dean Koontz",
)

BOOK_TITLES: Tuple[str, ...] = (
    "Pride and Prejudice", "Great Expectations", "Moby Dick",
    "War and Peace", "Crime and Punishment", "The Great Gatsby",
    "To Kill a Mockingbird", "The Grapes of Wrath", "Brave New World",
    "The Catcher in the Rye", "Lord of the Flies", "Animal Farm",
    "Jane Eyre", "Wuthering Heights", "The Odyssey", "Don Quixote",
    "The Sun Also Rises", "A Farewell to Arms", "East of Eden",
    "The Sound and the Fury", "Invisible Man", "Beloved", "The Stranger",
    "One Hundred Years of Solitude", "Fahrenheit 451", "Slaughterhouse-Five",
    "Catch-22", "The Old Man and the Sea", "Of Mice and Men",
    "A Tale of Two Cities",
)

PUBLISHERS: Tuple[str, ...] = (
    "Random House", "Penguin Books", "HarperCollins", "Simon Schuster",
    "Macmillan", "Houghton Mifflin", "Scholastic", "Oxford University Press",
    "Cambridge University Press", "McGraw-Hill", "Wiley", "Pearson",
    "Addison-Wesley", "O'Reilly Media", "Prentice Hall", "Vintage Books",
    "Bantam Books", "Doubleday", "Knopf", "Norton", "Little Brown",
    "Farrar Straus Giroux",
)

BOOK_SUBJECTS: Tuple[str, ...] = (
    "Fiction", "Mystery", "Science Fiction", "Fantasy", "Romance",
    "Biography", "History", "Science", "Travel", "Cooking", "Poetry",
    "Drama", "Philosophy", "Religion", "Self-help", "Business",
    "Computers", "Art", "Music", "Sports", "Health", "Children",
    "Reference", "Thriller", "Horror", "Western",
)

BOOK_FORMATS: Tuple[str, ...] = (
    "Hardcover", "Paperback", "Audiobook", "Mass market paperback",
    "Large print", "Library binding",
)

BOOK_CONDITIONS: Tuple[str, ...] = ("New", "Used", "Like new", "Collectible")

JOB_CATEGORIES: Tuple[str, ...] = (
    "Accounting", "Administrative", "Advertising", "Banking",
    "Construction", "Consulting", "Customer Service", "Education",
    "Engineering", "Finance", "Government", "Healthcare",
    "Human Resources", "Information Technology", "Insurance", "Legal",
    "Manufacturing", "Marketing", "Nursing", "Pharmaceutical",
    "Real Estate", "Retail", "Sales", "Telecommunications",
    "Transportation", "Hospitality", "Journalism", "Biotechnology",
)

JOB_TITLES: Tuple[str, ...] = (
    "Software Engineer", "Project Manager", "Sales Representative",
    "Account Manager", "Registered Nurse", "Financial Analyst",
    "Administrative Assistant", "Marketing Manager", "Graphic Designer",
    "Database Administrator", "Systems Analyst", "Web Developer",
    "Customer Service Representative", "Business Analyst",
    "Human Resources Manager", "Operations Manager", "Staff Accountant",
    "Executive Assistant", "Network Engineer", "Product Manager",
    "Technical Writer", "Quality Assurance Engineer", "Office Manager",
    "Mechanical Engineer", "Electrical Engineer",
)

COMPANIES: Tuple[str, ...] = (
    "IBM", "Microsoft", "General Electric", "Intel", "Motorola",
    "Boeing", "Lockheed Martin", "Oracle", "Cisco Systems", "Dell",
    "Hewlett-Packard", "Accenture", "Deloitte", "Pfizer", "Merck",
    "Johnson Johnson", "Procter Gamble", "Citigroup", "JPMorgan Chase",
    "Bank of America", "Wells Fargo", "Verizon", "Sprint", "FedEx",
    "United Parcel Service", "Target", "Walgreens", "Kaiser Permanente",
)

INDUSTRIES: Tuple[str, ...] = (
    "Aerospace", "Agriculture", "Automotive", "Chemicals", "Defense",
    "Electronics", "Energy", "Entertainment", "Food and Beverage",
    "Media", "Mining", "Publishing", "Software", "Textiles", "Utilities",
    "Pharmaceuticals", "Semiconductors", "Logistics",
)

DEGREES: Tuple[str, ...] = (
    "High school diploma", "Associate degree", "Bachelor's degree",
    "Master's degree", "Doctorate", "MBA", "Professional certification",
    "Vocational training", "Juris Doctor", "Medical degree",
    "Engineering degree", "Nursing degree", "Teaching credential",
)

EXPERIENCE_LEVELS: Tuple[str, ...] = (
    "Entry level", "Mid level", "Senior level", "Executive", "Internship",
    "1-2 years", "3-5 years", "5-10 years", "10+ years", "No experience",
    "Student", "Manager level", "Director level",
)

JOB_TYPES: Tuple[str, ...] = (
    "Full-time", "Part-time", "Contract", "Temporary", "Internship",
    "Freelance",
)

PROPERTY_TYPES: Tuple[str, ...] = (
    "Single family home", "Condominium", "Townhouse", "Duplex",
    "Apartment", "Mobile home", "Ranch", "Colonial", "Victorian",
    "Bungalow", "Loft", "Farm", "Land",
)

NEIGHBORHOOD_FEATURES: Tuple[str, ...] = (
    "Garage", "Pool", "Fireplace", "Basement", "Garden", "Waterfront",
    "Central air", "Hardwood floors", "Deck", "Fenced yard",
)

ZIP_CODES: Tuple[str, ...] = (
    "90210", "60601", "10001", "02108", "94102", "98101", "80202",
    "33101", "30301", "75201", "77002", "85001", "19102", "48201",
    "55401", "63101", "21201", "28202", "97201", "89101", "92101",
    "32801", "33602", "78701", "37201", "44101", "15201", "45201",
    "64101", "95814",
)

#: General-English vocabulary for noise pages and sentence filler.
NOISE_VOCAB: Tuple[str, ...] = (
    "information", "service", "online", "website", "page", "home",
    "contact", "about", "free", "best", "top", "guide", "help",
    "support", "news", "review", "reviews", "compare", "deal", "deals",
    "offer", "offers", "special", "today", "find", "search", "browse",
    "welcome", "popular", "quality", "customer", "account", "member",
    "sign", "link", "links", "site", "world", "people", "time", "year",
    "day", "week", "report", "article", "story", "photo", "video",
    "music", "game", "weather", "sports", "market", "money", "shop",
    "shopping", "store", "order", "shipping", "delivery", "policy",
    "privacy", "terms", "copyright", "community", "forum", "blog",
    "question", "answer", "learn", "read", "click", "view", "visit",
    "join", "start", "save", "easy", "fast", "simple", "secure",
    "trusted", "official", "local", "national", "international",
    "directory", "resource", "resources", "tool", "tools", "tips",
    "advice", "history", "culture", "education", "research", "study",
    "school", "college", "university", "government", "public", "private",
)

#: Frequent distractor strings: junk that pollution sentences insert after
#: cue phrases. They also occur in many noise pages, so their hit-count
#: marginals are large and their PMI with any attribute label is small —
#: which is exactly how Web validation is meant to reject them.
DISTRACTORS: Tuple[str, ...] = (
    "free shipping", "best deals", "great prices", "top rated",
    "new arrivals", "customer reviews", "special offers", "gift ideas",
    "low prices", "fast delivery", "easy returns", "daily specials",
    "hot items", "popular brands", "online coupons", "holiday sales",
)


def year_values(start: int = 1994, end: int = 2006) -> List[str]:
    """Model-year style values, newest first."""
    return [str(y) for y in range(end, start - 1, -1)]


def price_values(low: int, high: int, step: int, monetary: bool = True) -> List[str]:
    """Evenly spaced price points, optionally with a dollar sign.

    >>> price_values(5000, 20000, 5000)
    ['$5,000', '$10,000', '$15,000', '$20,000']
    """
    values = []
    for amount in range(low, high + 1, step):
        text = f"{amount:,}"
        values.append(f"${text}" if monetary else text)
    return values


def date_values() -> List[str]:
    """Travel-date style values mixing months and month-day strings."""
    values = list(MONTHS)
    for month in MONTH_ABBREVS:
        for day in (1, 15):
            values.append(f"{month} {day}")
    return values


def sqft_values() -> List[str]:
    return [f"{n:,}" for n in range(800, 5001, 400)]


def acreage_values() -> List[str]:
    return ["0.25", "0.5", "0.75", "1", "1.5", "2", "3", "5", "10", "20",
            "40", "80"]


def count_values(low: int, high: int) -> List[str]:
    return [str(n) for n in range(low, high + 1)]


__all__ = [name for name in dir() if name.isupper() or name.endswith("_values")]
