"""Per-domain concept definitions: the semantic classes attributes belong to.

A *concept* is one semantic attribute class of a domain — "origin city",
"airline", "car make". Every generated interface attribute instantiates a
concept by sampling one of its label variants and (with the concept's
``select_prob``) a SELECT widget carrying pre-defined values. Two attributes
match in the ground truth iff they share a concept.

The concept parameters are the levers that reproduce the paper's per-domain
difficulty profile (Table 1 and §6):

- ``label_variants`` control *label syntax*: a weight-0.3 variant ``From``
  yields a bare preposition that defeats extraction-query formulation, which
  is why the airfare domain's Surface success rate is lowest;
- ``select_prob`` controls how often attributes come with pre-defined
  instances (Table 1 columns 3-4);
- ``findable`` marks attributes whose instances one cannot expect on the Web
  (generic fields like ``keywords``; Table 1 column 5);
- ``web_richness``/``pollution`` control how many Hearst-pattern sentences
  the synthetic corpus carries for the concept and how noisy they are
  (ambiguous labels like ``zip`` get poor, polluted coverage);
- ``value_pools`` split a concept's value domain across interfaces (the
  paper's North-American vs European airline example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets import vocab
from repro.util.errors import UnknownDomainError

__all__ = ["LabelVariant", "Concept", "DomainSpec", "domain_concepts", "DOMAINS",
           "domain_spec"]

#: The five ICQ domains, in the paper's order.
DOMAINS: Tuple[str, ...] = ("airfare", "auto", "book", "job", "realestate")


@dataclass(frozen=True)
class LabelVariant:
    """One way interfaces spell a concept's label, with a sampling weight.

    ``select_prob``, when set, overrides the concept-level SELECT probability
    for attributes carrying this label. Variants with ``select_prob = 0.0``
    are always free-text: they model the paper's hard cases — labels like
    ``Carrier`` or ``Brand`` that share no word with their concept-mates and
    come with no instances, so only acquired instances can link them.
    """

    label: str
    weight: float = 1.0
    select_prob: Optional[float] = None
    #: pin this variant's SELECT values to one value pool (the paper's
    #: "Carrier lists mostly European airliners" bias); None = random pool
    pool: Optional[int] = None


@dataclass(frozen=True)
class Concept:
    """One semantic attribute class of a domain (see module docstring)."""

    name: str
    values: Tuple[str, ...]
    label_variants: Tuple[LabelVariant, ...]
    numeric: bool = False
    #: probability the concept appears on a generated interface
    presence: float = 1.0
    #: probability an occurrence is a SELECT widget with pre-defined values
    select_prob: float = 0.0
    #: (min, max) number of pre-defined values a SELECT occurrence shows
    select_count: Tuple[int, int] = (5, 9)
    #: optional per-interface value pools (e.g. NA vs EU airlines); when set,
    #: each SELECT occurrence samples from one pool, while the recognised
    #: domain stays the union
    value_pools: Optional[Tuple[Tuple[str, ...], ...]] = None
    #: can instances reasonably be found on the (real) Web? (Table 1 col. 5)
    findable: bool = True
    #: pattern documents generated per extraction phrase (0 = none)
    web_richness: int = 8
    #: fraction of pattern sentences whose completions are distractor junk
    pollution: float = 0.0
    #: "Label: value" listing documents generated for the concept
    proximity_docs: int = 6
    #: singular extraction phrases with no Hearst-pattern coverage on the
    #: synthetic Web (e.g. "employer": people rarely write "employers such
    #: as IBM"); extraction queries for them come back empty, so attributes
    #: with only these phrases must be rescued by borrowing
    poor_phrases: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"concept {self.name} has no values")
        if not self.label_variants:
            raise ValueError(f"concept {self.name} has no label variants")
        if not 0.0 <= self.presence <= 1.0:
            raise ValueError(f"presence out of range for {self.name}")
        if not 0.0 <= self.select_prob <= 1.0:
            raise ValueError(f"select_prob out of range for {self.name}")
        if not 0.0 <= self.pollution <= 1.0:
            raise ValueError(f"pollution out of range for {self.name}")

    def pool_values(self, pool_index: int) -> Tuple[str, ...]:
        """Values of one pool (or the whole domain when pools are unused)."""
        if self.value_pools is None:
            return self.values
        return self.value_pools[pool_index % len(self.value_pools)]


@dataclass(frozen=True)
class DomainSpec:
    """A domain: its name, queried object, and concept inventory.

    ``display_name`` is the human phrase used in corpus text and as the
    domain keyword of extraction queries ("real estate" for the
    ``realestate`` domain).
    """

    name: str
    object_name: str
    concepts: Tuple[Concept, ...]
    display_name: str = ""

    def __post_init__(self) -> None:
        if not self.display_name:
            object.__setattr__(self, "display_name", self.name)

    def keyword_terms(self) -> Tuple[str, ...]:
        """Domain-information keywords for extraction queries (paper §2.1)."""
        terms = []
        for word in (self.display_name + " " + self.object_name).split():
            low = word.lower()
            if low not in terms:
                terms.append(low)
        return tuple(terms)

    def concept(self, name: str) -> Concept:
        for concept in self.concepts:
            if concept.name == name:
                return concept
        raise KeyError(f"no concept {name!r} in domain {self.name}")


def _lv(*pairs) -> Tuple[LabelVariant, ...]:
    """Build label variants from (label, weight[, select_prob]) tuples."""
    return tuple(LabelVariant(*pair) for pair in pairs)


# ---------------------------------------------------------------------------
# Airfare: many attributes are free-text with prepositional / verbal labels
# ("From", "Depart from"), which defeats Surface extraction (19% success in
# the paper) but is rescued by Deep-Web validation (81.1%).
# ---------------------------------------------------------------------------

# Origins and destinations draw on overlapping but differently-ranked city
# vocabularies: the Web talks about departure cities in home-city terms
# (Boston, Chicago, ...) and about destinations in vacation terms (London,
# Cancun, ...). The rank order drives the Zipf popularity of corpus
# sampling, so the *acquired* top-k instance sets of the two concepts end
# up distinct — matching reality, and keeping the concepts separable.
_ORIGIN_CITIES = vocab.US_CITIES + vocab.WORLD_CITIES[:10]
_DESTINATION_CITIES = vocab.WORLD_CITIES + vocab.US_CITIES[:20]

# Departure dates skew to month names, return dates to month-day strings —
# the same rank-order trick keeps the two date concepts separable once
# instances are acquired.
_DEPARTURE_DATES = tuple(vocab.date_values())
_RETURN_DATES = tuple(reversed(vocab.date_values()))

# Shared airlines appear in both pools so that step 2's "at least two very
# similar values" borrowing condition can fire (paper §5, case 2).
_SHARED_AIRLINES = (
    "United Airlines", "Lufthansa", "British Airways", "Air France",
    "American Airlines", "Virgin Atlantic",
)
_NA_POOL = tuple(
    dict.fromkeys(vocab.NORTH_AMERICAN_AIRLINES + _SHARED_AIRLINES)
)
_EU_POOL = tuple(
    dict.fromkeys(vocab.EUROPEAN_AIRLINES + _SHARED_AIRLINES)
)
def _interleave(*pools):
    """Merge pools alternating ranks: Web popularity is not continent-sorted,
    so the corpus popularity order mixes NA and EU carriers."""
    out = []
    for rank in range(max(len(p) for p in pools)):
        for pool in pools:
            if rank < len(pool) and pool[rank] not in out:
                out.append(pool[rank])
    return tuple(out)


_ALL_AIRLINES = _interleave(_NA_POOL, _EU_POOL)

_AIRFARE = DomainSpec(
    name="airfare",
    object_name="flight",
    concepts=(
        Concept(
            "origin_city", _ORIGIN_CITIES,
            _lv(("From", 0.38), ("Leaving from", 0.17), ("Depart from", 0.13),
                ("Origin", 0.10), ("Departure city", 0.08), ("From city", 0.14)),
            presence=1.0, select_prob=0.0, web_richness=10, proximity_docs=10,
        ),
        Concept(
            "destination_city", _DESTINATION_CITIES,
            _lv(("To", 0.38), ("Going to", 0.17), ("Arrive at", 0.10),
                ("Destination", 0.11), ("Arrival city", 0.10),
                ("To city", 0.14)),
            presence=1.0, select_prob=0.0, web_richness=10, proximity_docs=10,
        ),
        Concept(
            "departure_date", _DEPARTURE_DATES,
            _lv(("Depart on", 0.36), ("Departing", 0.26), ("Leave on", 0.20),
                ("Departure date", 0.11), ("Departure", 0.07)),
            presence=1.0, select_prob=0.5, select_count=(6, 12),
            web_richness=5, proximity_docs=8,
        ),
        Concept(
            "return_date", _RETURN_DATES,
            _lv(("Return on", 0.38), ("Returning", 0.26), ("Come back on", 0.18),
                ("Return date", 0.11), ("Return", 0.07)),
            presence=0.95, select_prob=0.5, select_count=(6, 12),
            web_richness=5, proximity_docs=8,
        ),
        Concept(
            "passengers", tuple(vocab.count_values(1, 6)),
            _lv(("Passengers", 0.35), ("Number of passengers", 0.25),
                ("Adults", 0.25), ("Travelers", 0.15)),
            numeric=True, presence=0.95, select_prob=0.97, select_count=(4, 6),
            web_richness=2, proximity_docs=4,
        ),
        Concept(
            "children", tuple(vocab.count_values(0, 5)),
            _lv(("Children", 0.6), ("Number of children", 0.4)),
            numeric=True, presence=0.7, select_prob=0.97, select_count=(4, 6),
            web_richness=1, proximity_docs=3,
        ),
        Concept(
            "cabin_class", vocab.CABIN_CLASSES,
            _lv(("Class", 0.3), ("Class of service", 0.3), ("Cabin", 0.2),
                ("Service class", 0.2)),
            presence=0.95, select_prob=0.97, select_count=(3, 5),
            web_richness=4, proximity_docs=6,
        ),
        Concept(
            "airline", _ALL_AIRLINES,
            (LabelVariant("Airline", 0.45, pool=0),
             LabelVariant("Carrier", 0.3, pool=1),
             LabelVariant("Preferred airline", 0.25, pool=0)),
            presence=0.9, select_prob=0.85, select_count=(9, 13),
            value_pools=(_NA_POOL, _EU_POOL),
            web_richness=10, proximity_docs=10,
        ),
        Concept(
            "trip_type", vocab.TRIP_TYPES,
            _lv(("Trip type", 0.5), ("Type of trip", 0.3), ("Itinerary", 0.2)),
            presence=0.95, select_prob=0.97, select_count=(2, 3),
            web_richness=2, proximity_docs=4,
        ),
        Concept(
            "departure_time", vocab.TIMES_OF_DAY,
            _lv(("Departure time", 0.4), ("Time", 0.3),
                ("Preferred time", 0.3)),
            presence=0.85, select_prob=0.97, select_count=(4, 6),
            web_richness=2, proximity_docs=4,
        ),
        Concept(
            "seniors", tuple(vocab.count_values(0, 4)),
            _lv(("Seniors", 0.6), ("Number of seniors", 0.4)),
            numeric=True, presence=0.5, select_prob=0.97, select_count=(4, 5),
            web_richness=1, proximity_docs=2,
        ),
        Concept(
            "stops", ("Nonstop", "1 stop", "2 stops", "Any"),
            _lv(("Stops", 0.55), ("Number of stops", 0.45)),
            presence=0.55, select_prob=0.97, select_count=(2, 4),
            web_richness=1, proximity_docs=2,
        ),
        Concept(
            "airport", vocab.AIRPORT_CODES,
            _lv(("Airport", 0.4), ("Departure airport", 0.3),
                ("From airport", 0.3)),
            presence=0.4, select_prob=0.45, select_count=(5, 9),
            web_richness=7, proximity_docs=6,
        ),
    ),
)

# ---------------------------------------------------------------------------
# Auto: short, sometimes ambiguous labels ("zip"); mid Surface success
# (58.7%) rescued substantially by the Deep Web (82.2%).
# ---------------------------------------------------------------------------

_AUTO = DomainSpec(
    name="auto",
    object_name="car",
    concepts=(
        Concept(
            "make", vocab.CAR_MAKES,
            _lv(("Make", 0.45), ("Car make", 0.15), ("Manufacturer", 0.22),
                ("Brand", 0.18, 0.0)),
            presence=1.0, select_prob=0.8, select_count=(8, 14),
            web_richness=10, proximity_docs=10,
        ),
        Concept(
            "model", vocab.CAR_MODELS,
            _lv(("Model", 0.7), ("Car model", 0.3)),
            presence=0.95, select_prob=0.55, select_count=(6, 10),
            web_richness=9, proximity_docs=8,
        ),
        Concept(
            "year", tuple(vocab.year_values()),
            _lv(("Year", 0.5), ("Model year", 0.3), ("Year of car", 0.2)),
            numeric=True, presence=0.7, select_prob=0.85, select_count=(6, 12),
            web_richness=3, proximity_docs=6,
        ),
        Concept(
            "price", tuple(vocab.price_values(2000, 40000, 2000)),
            _lv(("Price", 0.4), ("Price range", 0.3), ("Maximum price", 0.3)),
            numeric=True, presence=0.7, select_prob=0.85, select_count=(5, 10),
            web_richness=3, proximity_docs=6,
        ),
        # "zip" is the paper's example of an ambiguous label that defeats
        # Surface extraction: barely any pattern coverage, and what exists
        # is polluted.
        Concept(
            "zip", vocab.ZIP_CODES,
            _lv(("Zip", 0.45), ("Zip code", 0.35), ("Near zip", 0.2)),
            presence=0.55, select_prob=0.2, select_count=(10, 14),
            web_richness=1, pollution=0.8, proximity_docs=2,
        ),
        Concept(
            "mileage", tuple(str(n) for n in range(10000, 150001, 10000)),
            _lv(("Mileage", 0.55), ("Maximum mileage", 0.45)),
            numeric=True, presence=0.35, select_prob=0.7, select_count=(5, 9),
            web_richness=1, pollution=0.5, proximity_docs=3,
        ),
        Concept(
            "color", vocab.CAR_COLORS,
            _lv(("Color", 0.6), ("Exterior color", 0.4)),
            presence=0.3, select_prob=0.7, select_count=(6, 10),
            web_richness=7, proximity_docs=6,
        ),
        Concept(
            "body_style", vocab.BODY_STYLES,
            _lv(("Body style", 0.5), ("Body type", 0.5)),
            presence=0.25, select_prob=0.8, select_count=(5, 8),
            web_richness=5, proximity_docs=4,
        ),
        Concept(
            "state", vocab.US_STATES,
            _lv(("State", 0.6), ("Location", 0.4)),
            presence=0.3, select_prob=0.7, select_count=(8, 15),
            web_richness=8, proximity_docs=6,
        ),
        Concept(
            "transmission", vocab.TRANSMISSIONS,
            _lv(("Transmission", 1.0),),
            presence=0.2, select_prob=0.85, select_count=(2, 3),
            web_richness=3, proximity_docs=3,
        ),
    ),
)

# ---------------------------------------------------------------------------
# Book: clean noun-phrase labels; the easiest domain for Surface extraction
# (84.4% success, and the Deep step adds nothing).
# ---------------------------------------------------------------------------

_BOOK = DomainSpec(
    name="book",
    object_name="book",
    concepts=(
        Concept(
            "title", vocab.BOOK_TITLES,
            _lv(("Title", 0.6), ("Book title", 0.4)),
            presence=1.0, select_prob=0.0, web_richness=11, proximity_docs=10,
        ),
        Concept(
            "author", vocab.AUTHORS,
            _lv(("Author", 0.5), ("Author name", 0.2), ("Writer", 0.15, 0.0),
                ("Written by", 0.15, 0.0)),
            presence=1.0, select_prob=0.45, select_count=(6, 10),
            web_richness=10, proximity_docs=10,
        ),
        Concept(
            "publisher", vocab.PUBLISHERS,
            _lv(("Publisher", 0.8), ("Publisher name", 0.2)),
            presence=0.75, select_prob=0.7, select_count=(6, 10),
            web_richness=9, proximity_docs=8,
        ),
        Concept(
            "subject", vocab.BOOK_SUBJECTS,
            _lv(("Subject", 0.4), ("Category", 0.35), ("Genre", 0.25, 0.0)),
            presence=0.75, select_prob=0.85, select_count=(8, 14),
            web_richness=8, proximity_docs=6,
        ),
        Concept(
            "format", vocab.BOOK_FORMATS,
            _lv(("Format", 0.55), ("Binding", 0.45)),
            presence=0.5, select_prob=0.9, select_count=(3, 6),
            web_richness=4, proximity_docs=4,
        ),
        Concept(
            "isbn", tuple(f"0{n:09d}" for n in range(387513628, 387513658)),
            _lv(("ISBN", 1.0),),
            presence=0.35, select_prob=0.0, web_richness=6, proximity_docs=5,
        ),
        Concept(
            "price", tuple(vocab.price_values(5, 95, 10)),
            _lv(("Price", 0.5), ("Price range", 0.5)),
            numeric=True, presence=0.4, select_prob=0.9, select_count=(4, 8),
            web_richness=3, proximity_docs=4,
        ),
        Concept(
            "keyword", vocab.DISTRACTORS,  # values are junk: nothing coherent
            _lv(("Keywords", 0.6), ("Keyword", 0.4)),
            presence=0.15, select_prob=0.0, findable=False,
            web_richness=2, pollution=1.0, proximity_docs=0,
        ),
        Concept(
            "condition", vocab.BOOK_CONDITIONS,
            _lv(("Condition", 1.0),),
            presence=0.3, select_prob=0.85, select_count=(2, 4),
            web_richness=4, proximity_docs=3,
        ),
    ),
)

# ---------------------------------------------------------------------------
# Job: almost everything is free text (74.6% of attributes lack instances),
# but labels are clean nouns, so Surface succeeds often (72.2%); generic
# fields (keywords, description) are unfindable (column 5 = 83.1%).
# ---------------------------------------------------------------------------

_JOB = DomainSpec(
    name="job",
    object_name="job",
    concepts=(
        Concept(
            "job_title", vocab.JOB_TITLES,
            _lv(("Job title", 0.55), ("Title", 0.3), ("Position", 0.15)),
            presence=0.95, select_prob=0.05, select_count=(6, 10),
            web_richness=9, proximity_docs=9,
        ),
        Concept(
            "category", vocab.JOB_CATEGORIES,
            _lv(("Job category", 0.4), ("Category", 0.3), ("Occupation", 0.3, 0.0)),
            presence=0.7, select_prob=0.3, select_count=(8, 14),
            web_richness=9, proximity_docs=8,
        ),
        Concept(
            "company", vocab.COMPANIES,
            _lv(("Company name", 0.4), ("Company", 0.3),
                ("Employer", 0.15, 0.0), ("Employer name", 0.15, 0.0)),
            presence=0.7, select_prob=0.0,
            web_richness=9, proximity_docs=9,
            poor_phrases=("employer", "employer name"),
        ),
        Concept(
            "city", vocab.US_CITIES,
            _lv(("City", 0.65), ("Job location", 0.35)),
            presence=0.7, select_prob=0.05, select_count=(6, 12),
            web_richness=9, proximity_docs=8,
        ),
        Concept(
            "state", vocab.US_STATES,
            _lv(("State", 1.0),),
            presence=0.4, select_prob=0.5, select_count=(8, 16),
            web_richness=7, proximity_docs=6,
        ),
        Concept(
            "salary", tuple(vocab.price_values(20000, 150000, 10000)),
            _lv(("Salary", 0.5), ("Salary range", 0.3), ("Minimum salary", 0.2)),
            numeric=True, presence=0.4, select_prob=0.3, select_count=(6, 10),
            web_richness=1, pollution=0.5, proximity_docs=4,
        ),
        Concept(
            "keywords", vocab.DISTRACTORS,
            _lv(("Keywords", 0.55), ("Search keywords", 0.25),
                ("Description", 0.2)),
            presence=0.6, select_prob=0.0, findable=False,
            web_richness=2, pollution=1.0, proximity_docs=0,
        ),
        Concept(
            "experience", vocab.EXPERIENCE_LEVELS,
            _lv(("Experience", 0.5), ("Years of experience", 0.3),
                ("Experience level", 0.2)),
            presence=0.3, select_prob=0.45, select_count=(4, 8),
            web_richness=4, proximity_docs=4,
        ),
        Concept(
            "degree", vocab.DEGREES,
            _lv(("Education", 0.5), ("Degree", 0.3), ("Education level", 0.2)),
            presence=0.25, select_prob=0.5, select_count=(4, 7),
            web_richness=4, proximity_docs=4,
        ),
        Concept(
            "job_type", vocab.JOB_TYPES,
            _lv(("Job type", 0.6), ("Employment type", 0.4)),
            presence=0.25, select_prob=0.7, select_count=(3, 6),
            web_richness=4, proximity_docs=3,
        ),
    ),
)

# ---------------------------------------------------------------------------
# Real estate: measurement-unit attributes (square feet, acreage) defeat the
# extraction patterns; several unfindable bookkeeping fields (MLS number)
# lower column 5 to 66.7%. Surface 49.1% -> 56.3% with the Deep Web.
# ---------------------------------------------------------------------------

_REALESTATE = DomainSpec(
    name="realestate",
    object_name="home",
    display_name="real estate",
    concepts=(
        Concept(
            "city", vocab.US_CITIES,
            _lv(("City", 0.6), ("City name", 0.2), ("Town", 0.2, 0.0)),
            presence=1.0, select_prob=0.45, select_count=(6, 12),
            web_richness=9, proximity_docs=9,
        ),
        Concept(
            "state", vocab.US_STATES,
            _lv(("State", 1.0),),
            presence=0.85, select_prob=0.75, select_count=(8, 16),
            web_richness=7, proximity_docs=6,
        ),
        Concept(
            "price", tuple(vocab.price_values(50000, 950000, 50000)),
            _lv(("Price range", 0.4), ("Maximum price", 0.3), ("Price", 0.3)),
            numeric=True, presence=0.9, select_prob=0.85, select_count=(6, 10),
            web_richness=3, proximity_docs=6,
        ),
        Concept(
            "bedrooms", tuple(vocab.count_values(1, 6)),
            _lv(("Bedrooms", 0.6), ("Number of bedrooms", 0.4)),
            numeric=True, presence=0.85, select_prob=0.95, select_count=(4, 6),
            web_richness=2, proximity_docs=4,
        ),
        Concept(
            "bathrooms", tuple(vocab.count_values(1, 5)),
            _lv(("Bathrooms", 0.65), ("Number of bathrooms", 0.35)),
            numeric=True, presence=0.6, select_prob=0.95, select_count=(3, 5),
            web_richness=2, proximity_docs=3,
        ),
        Concept(
            "property_type", vocab.PROPERTY_TYPES,
            _lv(("Property type", 0.45), ("Home type", 0.3),
                ("Style", 0.25, 0.0)),
            presence=0.7, select_prob=0.8, select_count=(5, 10),
            web_richness=9, proximity_docs=8,
        ),
        # Measurement units: "the extraction patterns are not as effective".
        Concept(
            "square_feet", tuple(vocab.sqft_values()),
            _lv(("Square feet", 0.55), ("Min square feet", 0.25),
                ("Square footage", 0.2)),
            numeric=True, presence=0.5, select_prob=0.5, select_count=(4, 8),
            web_richness=1, pollution=0.6, proximity_docs=3,
        ),
        Concept(
            "acreage", tuple(vocab.acreage_values()),
            _lv(("Acreage", 0.6), ("Lot size", 0.4)),
            numeric=True, presence=0.35, select_prob=0.5, select_count=(4, 7),
            web_richness=1, pollution=0.6, proximity_docs=2,
        ),
        Concept(
            "zip", vocab.ZIP_CODES,
            _lv(("Zip code", 0.6), ("Zip", 0.4)),
            presence=0.25, select_prob=0.15, select_count=(10, 14),
            web_richness=1, pollution=0.8, proximity_docs=2,
        ),
        Concept(
            "mls_number", tuple(f"MLS{n:06d}" for n in range(100000, 100040)),
            _lv(("MLS number", 0.6), ("Listing ID", 0.4)),
            presence=0.4, select_prob=0.0, findable=False,
            web_richness=1, pollution=1.0, proximity_docs=0,
        ),
        Concept(
            "agent", vocab.DISTRACTORS,
            _lv(("Agent name", 0.5), ("Keywords", 0.5)),
            presence=0.25, select_prob=0.0, findable=False,
            web_richness=1, pollution=1.0, proximity_docs=0,
        ),
    ),
)

_SPECS: Dict[str, DomainSpec] = {
    spec.name: spec
    for spec in (_AIRFARE, _AUTO, _BOOK, _JOB, _REALESTATE)
}


def domain_spec(domain: str) -> DomainSpec:
    """The full :class:`DomainSpec` of one of the five ICQ domains."""
    try:
        return _SPECS[domain]
    except KeyError:
        raise UnknownDomainError(
            f"unknown domain {domain!r}; expected one of {DOMAINS}"
        ) from None


def domain_concepts(domain: str) -> Tuple[Concept, ...]:
    """The concept inventory of ``domain``."""
    return domain_spec(domain).concepts
