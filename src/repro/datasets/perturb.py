"""Dataset perturbation utilities for robustness studies.

The paper evaluates on one fixed snapshot of each domain; a reproduction
can do better and ask *how sensitive* the result is to messier inputs.
These helpers mutate a generated interface set in controlled, realistic
ways:

- :func:`add_label_noise` — typos and decoration ("Departure city" ->
  "Departure ciity:*"), the way hand-built forms actually look;
- :func:`drop_select_instances` — thin out pre-defined values, pushing the
  dataset toward the paper's instance-starved regime;
- :func:`shuffle_attribute_order` — form layout order is meaningless and
  nothing downstream may depend on it.

All functions mutate in place (datasets are cheap to rebuild from the seed)
and are deterministic in their ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.datasets.dataset import DomainDataset
from repro.deepweb.models import Attribute, AttributeKind
from repro.util.rng import derive_rng

__all__ = [
    "add_label_noise",
    "drop_select_instances",
    "shuffle_attribute_order",
]

_DECORATIONS = (":", ":*", "*", " :", "?")


def _typo(word: str, rng: random.Random) -> str:
    """One character-level typo: duplication, swap, or drop."""
    if len(word) < 3:
        return word
    i = rng.randrange(1, len(word) - 1)
    kind = rng.randrange(3)
    if kind == 0:  # duplicate
        return word[:i] + word[i] + word[i:]
    if kind == 1:  # swap
        return word[:i] + word[i + 1] + word[i] + word[i + 2:]
    return word[:i] + word[i + 1:]  # drop


def add_label_noise(
    dataset: DomainDataset,
    rate: float = 0.2,
    seed: int = 0,
) -> int:
    """Decorate or typo a fraction of labels; returns how many changed.

    Decoration (the common case — real forms append colons and asterisks)
    is applied twice as often as typos.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    rng = derive_rng(seed, "perturb-labels", dataset.domain)
    changed = 0
    for interface in dataset.interfaces:
        for attribute in interface.attributes:
            if rng.random() >= rate:
                continue
            if rng.random() < 2 / 3:
                attribute.label = attribute.label + rng.choice(_DECORATIONS)
            else:
                words = attribute.label.split()
                index = rng.randrange(len(words))
                words[index] = _typo(words[index], rng)
                attribute.label = " ".join(words)
            changed += 1
    return changed


def drop_select_instances(
    dataset: DomainDataset,
    rate: float = 0.5,
    seed: int = 0,
) -> int:
    """Convert a fraction of SELECT attributes to empty text inputs.

    Returns the number of attributes stripped. This pushes the dataset
    toward the paper's worst case (everything instance-less) — useful for
    measuring how WebIQ's gain grows as instances vanish.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    rng = derive_rng(seed, "perturb-selects", dataset.domain)
    stripped = 0
    for interface in dataset.interfaces:
        for i, attribute in enumerate(interface.attributes):
            if attribute.kind is not AttributeKind.SELECT:
                continue
            if rng.random() >= rate:
                continue
            replacement = Attribute(name=attribute.name,
                                    label=attribute.label)
            interface.attributes[i] = replacement
            stripped += 1
    return stripped


def shuffle_attribute_order(dataset: DomainDataset, seed: int = 0) -> None:
    """Shuffle each interface's attribute order (layout is meaningless)."""
    rng = derive_rng(seed, "perturb-order", dataset.domain)
    for interface in dataset.interfaces:
        rng.shuffle(interface.attributes)
