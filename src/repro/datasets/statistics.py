"""Dataset characteristics — Table 1, columns 2-5.

For each domain the paper reports: the average number of attributes per
interface, the percentage of interfaces containing attributes without
instances, the percentage of attributes without instances on those
interfaces, and (column 5) the percentage of those no-instance attributes
for which instances can reasonably be expected on the Web (judged manually
in the paper; encoded here in each concept's ``findable`` flag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.datasets.dataset import DomainDataset

__all__ = ["DatasetStatistics", "dataset_statistics"]


@dataclass(frozen=True)
class DatasetStatistics:
    """Columns 2-5 of Table 1 for one domain."""

    domain: str
    n_interfaces: int
    avg_attributes: float            # column 2 (#Attr)
    pct_interfaces_no_inst: float    # column 3 (IntNoInst %)
    pct_attrs_no_inst: float         # column 4 (AttrNoInst %)
    pct_expected_findable: float     # column 5 (ExpInst %)


def dataset_statistics(dataset: DomainDataset) -> DatasetStatistics:
    """Compute Table 1 columns 2-5 from a built dataset."""
    n_interfaces = len(dataset.generated)
    total_attrs = 0
    interfaces_with_no_inst = 0
    attrs_on_those = 0
    no_inst_on_those = 0
    findable = 0
    total_no_inst = 0

    for gen in dataset.generated:
        attrs = gen.interface.attributes
        total_attrs += len(attrs)
        missing = [a for a in attrs if not a.has_instances]
        if missing:
            interfaces_with_no_inst += 1
            attrs_on_those += len(attrs)
            no_inst_on_those += len(missing)
        for attribute in missing:
            total_no_inst += 1
            concept = dataset.spec.concept(gen.concept_of[attribute.name])
            if concept.findable:
                findable += 1

    return DatasetStatistics(
        domain=dataset.domain,
        n_interfaces=n_interfaces,
        avg_attributes=total_attrs / n_interfaces if n_interfaces else 0.0,
        pct_interfaces_no_inst=(
            100.0 * interfaces_with_no_inst / n_interfaces if n_interfaces else 0.0
        ),
        pct_attrs_no_inst=(
            100.0 * no_inst_on_those / attrs_on_those if attrs_on_those else 0.0
        ),
        pct_expected_findable=(
            100.0 * findable / total_no_inst if total_no_inst else 0.0
        ),
    )
