"""Self-documenting datasets: render a domain's design as Markdown.

The concept inventories in :mod:`repro.datasets.concepts` *are* the dataset
documentation; this module renders them human-readable, so the generated
reference stays in lockstep with the code. ``python -m repro`` is not
needed — call :func:`describe_domain` from anywhere, or regenerate the full
``docs/DATASETS.md`` with :func:`describe_all`.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.datasets.concepts import DOMAINS, domain_spec
from repro.text.labels import analyze_label

__all__ = ["describe_domain", "describe_all"]


def describe_domain(domain: str) -> str:
    """Markdown description of one domain's concept inventory."""
    spec = domain_spec(domain)
    lines = [
        f"## {spec.display_name} (object: {spec.object_name})",
        "",
        f"{len(spec.concepts)} concepts; extraction-query keywords: "
        f"`{' '.join('+' + k for k in spec.keyword_terms())}`.",
        "",
        "| concept | labels (weight) | presence | select | values | "
        "web richness | notes |",
        "|---|---|---|---|---|---|---|",
    ]
    for concept in spec.concepts:
        labels = ", ".join(
            f"{v.label} ({v.weight:g})" for v in concept.label_variants)
        notes: List[str] = []
        if not concept.findable:
            notes.append("unfindable")
        if concept.pollution > 0:
            notes.append(f"pollution {concept.pollution:g}")
        if concept.value_pools:
            notes.append(f"{len(concept.value_pools)} value pools")
        if concept.poor_phrases:
            notes.append("poor phrases: " + ", ".join(concept.poor_phrases))
        no_np = [
            v.label for v in concept.label_variants
            if not analyze_label(v.label).has_noun_phrase
        ]
        if no_np:
            notes.append("no-NP labels: " + ", ".join(no_np))
        lines.append(
            f"| {concept.name} | {labels} | {concept.presence:g} "
            f"| {concept.select_prob:g} | {len(concept.values)} "
            f"| {concept.web_richness} | {'; '.join(notes) or '—'} |"
        )
    return "\n".join(lines)


def describe_all(domains: Sequence[str] = DOMAINS) -> str:
    """Markdown for all domains, suitable for ``docs/DATASETS.md``."""
    parts = [
        "# Datasets — generated domain reference",
        "",
        "Rendered from `repro.datasets.concepts` by "
        "`repro.datasets.describe.describe_all`; regenerate after editing "
        "the concept inventories. Per-concept columns: label variants with "
        "sampling weights, probability of appearing on an interface, "
        "probability of being a SELECT widget, value-domain size, and "
        "Hearst-pattern pages per extraction phrase in the synthetic "
        "Surface Web.",
        "",
    ]
    parts.extend(describe_domain(domain) + "\n" for domain in domains)
    return "\n".join(parts).rstrip() + "\n"
