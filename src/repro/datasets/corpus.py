"""Synthetic Surface-Web corpus generation.

The real WebIQ works because the Surface Web redundantly embeds attribute
instances in recognisable contexts. This generator reproduces those contexts
per domain, with the concept parameters controlling how much evidence each
concept gets:

- **Hearst-pattern pages** — sentences like "Departure cities such as
  Boston, Chicago, and LAX are listed on our airfare site." — one page set
  per extraction phrase derivable from the concept's labels, ``web_richness``
  pages each. With probability ``pollution`` a sentence's completion list is
  distractor junk instead of true values (the mechanism behind ambiguous
  labels like ``zip``).
- **Singleton-pattern pages** — "The author of the book is Mark Twain." —
  exercising the g1-g4 extraction rules.
- **Listing pages** — "Make: Honda, Model: Accord" style pages: the
  adjacency evidence behind the proximity validation pattern "L x" and the
  validation-based classifier's features.
- **Mention pages** — values in plain prose, giving candidates realistic
  popularity (hit-count marginals) independent of pattern contexts.
- **Noise pages** — general-vocabulary filler in which the distractor
  phrases occur frequently, so that junk completions have large marginals
  and therefore low PMI — which is how Web validation rejects them.

Every domain-attached page also mentions the domain and object keywords, so
extraction queries' ``+keyword`` filters behave like they do on Google.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.datasets.concepts import Concept, DomainSpec, domain_spec
from repro.surfaceweb.document import Document
from repro.text.labels import analyze_label
from repro.util.rng import derive_rng

__all__ = ["CorpusConfig", "build_corpus", "concept_phrases"]


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs of corpus generation (defaults reproduce the paper's shapes)."""

    n_noise_docs: int = 120
    #: probability a noise page carries a distractor phrase
    noise_distractor_rate: float = 0.8
    #: (min, max) "Label: value" entries per listing page
    listing_lines: Tuple[int, int] = (4, 8)
    #: (min, max) values per Hearst completion list
    hearst_values: Tuple[int, int] = (3, 5)
    #: baseline mention pages: every value of a findable concept is
    #: mentioned this many times in plain prose. This is the "the Web is
    #: big" floor on hit-count marginals: rare values still have non-trivial
    #: popularity, so PMI ranking favours genuinely popular values and two
    #: attributes of one concept acquire largely the same top instances.
    mentions_per_value: int = 2
    #: values mentioned per mention page
    mention_batch: int = 8


def zipf_sample(rng, values: Sequence[str], k: int, s: float = 1.0) -> List[str]:
    """Sample ``k`` distinct values with Zipf-like popularity weights.

    Real Web text is popularity-skewed: the same few cities, airlines and
    authors dominate. The skew matters downstream — WebIQ returns the top-k
    candidates by validation score, so two attributes of the same concept
    end up holding largely the *same* popular instances, which is what makes
    their acquired domains similar. A value's weight is ``1/(rank+1)**s``
    in the order the vocabulary lists it.
    """
    k = min(k, len(values))
    weights = [1.0 / (rank + 1) ** s for rank in range(len(values))]
    chosen: List[str] = []
    pool = list(range(len(values)))
    for _ in range(k):
        total = sum(weights[i] for i in pool)
        pick = rng.random() * total
        acc = 0.0
        for idx, i in enumerate(pool):
            acc += weights[i]
            if pick <= acc:
                chosen.append(values[i])
                pool.pop(idx)
                break
        else:  # floating-point edge: take the last remaining value
            chosen.append(values[pool.pop()])
    return chosen


def concept_phrases(concept: Concept) -> List[Tuple[str, str]]:
    """Distinct (plural, singular) extraction phrases of a concept's labels.

    Derived with the same label analysis the Surface component uses, so the
    corpus offers pattern sentences exactly for the phrases that extraction
    queries will ask about. Labels with no noun phrase (bare prepositions,
    verb phrases) contribute nothing — extraction for them fails regardless
    of the corpus, as in the paper's airfare domain.
    """
    phrases: List[Tuple[str, str]] = []
    seen: Set[str] = set()
    for variant in concept.label_variants:
        analysis = analyze_label(variant.label)
        for np in analysis.noun_phrases:
            if np.text not in seen:
                seen.add(np.text)
                phrases.append((np.plural, np.text))
    return phrases


def build_corpus(
    domain: str,
    seed: int = 0,
    config: CorpusConfig = CorpusConfig(),
    start_doc_id: int = 0,
) -> List[Document]:
    """Generate the Surface-Web corpus for ``domain``; deterministic in seed."""
    spec = domain_spec(domain)
    docs: List[Document] = []
    next_id = start_doc_id

    def emit(title: str, text: str) -> None:
        nonlocal next_id
        docs.append(
            Document(next_id, f"http://{domain}.example/{next_id}", title, text)
        )
        next_id += 1

    for concept in spec.concepts:
        rng = derive_rng(seed, "corpus", domain, concept.name)
        _emit_pattern_docs(emit, spec, concept, rng, config)
        _emit_singleton_docs(emit, spec, concept, rng)
        _emit_listing_docs(emit, spec, concept, rng, config)
        _emit_mention_docs(emit, spec, concept, rng, config)

    _emit_noise_docs(emit, spec, derive_rng(seed, "corpus", domain, "noise"),
                     config)
    return docs


# ---------------------------------------------------------------------------
# page emitters
# ---------------------------------------------------------------------------

_HEARST_TEMPLATES = (
    # one per set-extraction pattern s1-s4 of paper Figure 4
    "{Plural} such as {values} are available.",
    "We cover such {plural} as {values} every day.",
    "Browse {plural} including {values} right here.",
    "{values}, and other {plural} can be found on this page.",
)

_FILLERS = (
    # Every filler names both the domain and the object, so pattern pages
    # always satisfy extraction queries' +keyword filters.
    "Welcome to the best {domain} site for every {object} online.",
    "Find great {domain} deals for your {object} today.",
    "Our {domain} guide helps you compare every {object} offer.",
    "Search our {domain} directory to find the right {object}.",
    "Read {domain} customer reviews about each {object} before you decide.",
)


def _domain_sentence(spec: DomainSpec, rng) -> str:
    template = rng.choice(_FILLERS)
    return template.format(domain=spec.display_name, object=spec.object_name)


def _format_values(values: Sequence[str]) -> str:
    if len(values) == 1:
        return values[0]
    return ", ".join(values[:-1]) + ", and " + values[-1]


def _emit_pattern_docs(emit, spec: DomainSpec, concept: Concept, rng,
                       config: CorpusConfig) -> None:
    if concept.web_richness <= 0:
        return
    lo, hi = config.hearst_values
    for plural, singular in concept_phrases(concept):
        if singular in concept.poor_phrases:
            continue  # the Web simply lacks pattern sentences for these
        for i in range(concept.web_richness):
            template = _HEARST_TEMPLATES[i % len(_HEARST_TEMPLATES)]
            polluted = rng.random() < concept.pollution
            if polluted:
                from repro.datasets import vocab
                values = rng.sample(list(vocab.DISTRACTORS),
                                    min(rng.randint(lo, hi),
                                        len(vocab.DISTRACTORS)))
            else:
                values = zipf_sample(rng, list(concept.values),
                                     rng.randint(lo, hi))
            sentence = template.format(
                Plural=plural.capitalize(), plural=plural,
                values=_format_values(values),
            )
            text = " ".join([
                _domain_sentence(spec, rng),
                sentence,
                _domain_sentence(spec, rng),
            ])
            emit(f"{spec.display_name} {plural}", text)


def _emit_singleton_docs(emit, spec: DomainSpec, concept: Concept, rng) -> None:
    """Pages with singleton-pattern sentences (g1 and g4 of Figure 4)."""
    if concept.web_richness <= 1:
        return
    n_docs = max(1, concept.web_richness // 3)
    for _plural, singular in concept_phrases(concept):
        if singular in concept.poor_phrases:
            continue
        for i in range(n_docs):
            value = zipf_sample(rng, list(concept.values), 1)[0]
            if i % 2 == 0:
                sentence = (
                    f"The {singular} of the {spec.object_name} is {value}."
                )
            else:
                sentence = f"{value} is the {singular}."
            text = " ".join([_domain_sentence(spec, rng), sentence])
            emit(f"{spec.display_name} {singular} page", text)


def _emit_listing_docs(emit, spec: DomainSpec, concept: Concept, rng,
                       config: CorpusConfig) -> None:
    """Pages of 'Label: value' entries — the proximity-pattern evidence."""
    if concept.proximity_docs <= 0:
        return
    labels = [v.label for v in concept.label_variants]
    lo, hi = config.listing_lines
    for _ in range(concept.proximity_docs):
        lines = [_domain_sentence(spec, rng)]
        for _ in range(rng.randint(lo, hi)):
            label = rng.choice(labels)
            value = zipf_sample(rng, list(concept.values), 1)[0]
            lines.append(f"{label}: {value}.")
        emit(f"{spec.display_name} listings", " ".join(lines))


def _emit_mention_docs(emit, spec: DomainSpec, concept: Concept, rng,
                       config: CorpusConfig) -> None:
    """Plain-prose pages giving every value a uniform popularity baseline."""
    if config.mentions_per_value <= 0 or concept.web_richness <= 0:
        return
    for _ in range(config.mentions_per_value):
        values = list(concept.values)
        rng.shuffle(values)
        for start in range(0, len(values), config.mention_batch):
            batch = values[start:start + config.mention_batch]
            sentences = [
                f"People often talk about {value} in reviews and articles."
                for value in batch
            ]
            emit(f"about {spec.display_name}",
                 " ".join([_domain_sentence(spec, rng)] + sentences))


def _emit_noise_docs(emit, spec: DomainSpec, rng, config: CorpusConfig) -> None:
    from repro.datasets import vocab

    for _ in range(config.n_noise_docs):
        words = [rng.choice(vocab.NOISE_VOCAB) for _ in range(rng.randint(20, 40))]
        sentences: List[str] = []
        for i in range(0, len(words), 8):
            chunk = words[i:i + 8]
            if chunk:
                sentences.append(" ".join(chunk).capitalize() + ".")
        if rng.random() < config.noise_distractor_rate:
            distractor = rng.choice(vocab.DISTRACTORS)
            sentences.insert(
                rng.randrange(len(sentences) + 1),
                f"Do not miss our {distractor} this week.",
            )
        emit("misc page", " ".join(sentences))
