"""The dataset facade: one call builds a domain's whole experimental world.

``build_domain_dataset("airfare")`` yields the 20 query interfaces with
ground truth, the synthetic Surface Web behind a search engine, and the
probe-able Deep-Web sources — everything the WebIQ pipeline and the
benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.datasets.concepts import DomainSpec, domain_spec
from repro.datasets.corpus import CorpusConfig, build_corpus
from repro.datasets.interfaces import (
    GeneratedInterface,
    GroundTruth,
    generate_interfaces,
)
from repro.datasets.sources import SourceConfig, build_sources
from repro.deepweb.models import QueryInterface
from repro.deepweb.source import DeepWebSource
from repro.surfaceweb.engine import SearchEngine

__all__ = ["DomainDataset", "build_domain_dataset"]


@dataclass
class DomainDataset:
    """A domain's complete evaluation environment."""

    domain: str
    spec: DomainSpec
    generated: List[GeneratedInterface]
    ground_truth: GroundTruth
    engine: SearchEngine
    sources: Dict[str, DeepWebSource]
    seed: int

    @property
    def interfaces(self) -> List[QueryInterface]:
        return [g.interface for g in self.generated]

    def concept_of(self, interface_id: str, attribute_name: str) -> str:
        for gen in self.generated:
            if gen.interface.interface_id == interface_id:
                return gen.concept_of[attribute_name]
        raise KeyError(interface_id)

    def clear_acquired(self) -> None:
        """Remove all WebIQ-acquired instances (restore the pristine dataset)."""
        for interface in self.interfaces:
            interface.clear_acquired()

    def reset_counters(self) -> None:
        """Zero the engine's query counter and every source's probe counter."""
        self.engine.reset_query_count()
        for source in self.sources.values():
            source.probe_count = 0


def build_domain_dataset(
    domain: str,
    n_interfaces: int = 20,
    seed: int = 0,
    corpus_config: CorpusConfig = CorpusConfig(),
    source_config: SourceConfig = SourceConfig(),
) -> DomainDataset:
    """Build the full evaluation environment for ``domain``.

    Deterministic in all arguments; two calls with equal arguments yield
    interchangeable datasets (same interfaces, corpus and sources).
    """
    spec = domain_spec(domain)
    generated, truth = generate_interfaces(domain, n_interfaces, seed)
    engine = SearchEngine(build_corpus(domain, seed, corpus_config))
    sources = build_sources(generated, domain, seed, source_config)
    return DomainDataset(
        domain=domain,
        spec=spec,
        generated=generated,
        ground_truth=truth,
        engine=engine,
        sources=sources,
        seed=seed,
    )
