"""The ICQ-style evaluation datasets and the synthetic Surface Web.

The paper evaluates on the ICQ data set: five real-world domains — airfare,
automobile, book, job, and real estate — with 20 query interfaces each,
expert-provided ground-truth matches, plus Google and the live sources as
instance oracles. None of that is available offline, so this package
regenerates the whole experimental environment:

- :mod:`repro.datasets.vocab` — value vocabularies (cities, airlines, car
  makes, authors, ...);
- :mod:`repro.datasets.concepts` — per-domain *concepts*: the semantic
  attribute classes interfaces draw from, each with label variants, value
  domains, widget statistics and Surface-Web richness parameters;
- :mod:`repro.datasets.interfaces` — generates 20 interfaces per domain with
  ground-truth clusters (attributes match iff they share a concept);
- :mod:`repro.datasets.corpus` — generates the synthetic Surface-Web pages
  (Hearst-pattern sentences, "Label: value" listing pages, noise);
- :mod:`repro.datasets.sources` — builds probe-able Deep-Web sources;
- :mod:`repro.datasets.dataset` — the facade: ``build_domain_dataset``;
- :mod:`repro.datasets.statistics` — Table 1 columns 2-5.
"""

from repro.datasets.concepts import Concept, LabelVariant, domain_concepts, DOMAINS
from repro.datasets.dataset import DomainDataset, build_domain_dataset
from repro.datasets.interfaces import GroundTruth, generate_interfaces
from repro.datasets.statistics import DatasetStatistics, dataset_statistics

__all__ = [
    "Concept",
    "LabelVariant",
    "domain_concepts",
    "DOMAINS",
    "DomainDataset",
    "build_domain_dataset",
    "GroundTruth",
    "generate_interfaces",
    "DatasetStatistics",
    "dataset_statistics",
]
