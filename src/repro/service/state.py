"""Warm shared state behind copy-on-write epochs.

The service's whole correctness story reduces to one discipline: the
state a request *reads* is an immutable :class:`Epoch`, and the state a
request *produces* becomes a new epoch that either publishes atomically
or is dropped whole. Concretely an epoch bundles

- the warm query-cache content (a :class:`~repro.perf.CachePreload` —
  engine answers plus validation tallies captured from the publishing
  run), and
- the registry store, when the service assimilates
  (:class:`~repro.registry.store.RegistryStore`, copied via
  ``from_body(to_body())`` before any mutation).

A request never mutates its parent epoch: the pipeline *applies* the
parent's preload into its own fresh ``CachingSearchEngine`` and captures
a brand-new preload at the end; assimilation runs against a deep copy of
the parent's store. So a crash (or deadline expiry, or shed) anywhere
mid-request leaves nothing to undo — recovery is literally "do not call
:meth:`WarmState.publish`", and no other tenant can ever observe the
half-built epoch because it was never reachable from ``current``.

Publication is serial (the service executes requests one at a time in
admission order), so a publish whose parent is no longer ``current`` can
only mean a bug — two executors over one :class:`WarmState` — and raises
:class:`~repro.util.errors.StaleEpochError` instead of silently dropping
the other writer's epoch. The epoch-publication invariant law
(:func:`repro.service.laws.check_service`) audits the whole history:
published ids are consecutive, every epoch's parent is its predecessor,
and ``begun == published + abandoned``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.perf.cache import CachePreload
from repro.registry.store import RegistryStore
from repro.util.errors import StaleEpochError

__all__ = ["Epoch", "WarmState"]


@dataclass(frozen=True)
class Epoch:
    """One immutable generation of the service's warm state."""

    #: consecutive id; 0 is the boot epoch
    epoch_id: int
    #: the epoch this one was derived from (``None`` for the boot epoch)
    parent_id: Optional[int]
    #: warm query-cache content readers apply into their own engines
    warm: CachePreload
    #: registry snapshot (``None`` until an assimilating request publishes)
    registry: Optional[RegistryStore]
    #: request id that published this epoch (``None`` for the boot epoch)
    published_by: Optional[str]


class WarmState:
    """The epoch manager: one ``current`` pointer, swapped atomically.

    ``begin``/``publish``/``abandon`` bracket a request's use of warm
    state. ``begin`` hands back the current epoch (the request's
    *parent*); the request derives everything from that immutable
    snapshot; ``publish`` swings ``current`` to the request's new epoch
    in one assignment under the lock, and ``abandon`` simply drops the
    derivation. Counters and the published chain feed the
    epoch-publication law.
    """

    def __init__(self, *, registry: Optional[RegistryStore] = None) -> None:
        boot = Epoch(epoch_id=0, parent_id=None, warm=CachePreload(),
                     registry=registry, published_by=None)
        self._lock = threading.Lock()
        self.current: Epoch = boot
        #: every epoch ever current, by id (the audit trail)
        self.epochs: Dict[int, Epoch] = {0: boot}
        #: published epoch ids in publication order (excludes the boot epoch)
        self.chain: List[int] = []
        #: requests that called :meth:`begin`
        self.begun = 0
        #: requests whose epoch published
        self.published = 0
        #: requests whose derivation was dropped (crash/deadline/failure)
        self.abandoned = 0
        #: request ids that abandoned, in order (diagnostics + laws)
        self.abandoned_by: List[str] = []

    def begin(self, request_id: str) -> Epoch:
        """Snapshot the current epoch as a request's parent."""
        with self._lock:
            self.begun += 1
            return self.current

    def publish(
        self,
        parent: Epoch,
        *,
        warm: CachePreload,
        registry: Optional[RegistryStore] = None,
        published_by: str,
    ) -> Epoch:
        """Atomically derive and install the next epoch.

        ``registry=None`` means "unchanged" — the parent's store carries
        forward, so a plain match request never loses the registry an
        earlier assimilation published.
        """
        with self._lock:
            if parent.epoch_id != self.current.epoch_id:
                raise StaleEpochError(
                    f"request {published_by} tried to publish against "
                    f"epoch {parent.epoch_id} but epoch "
                    f"{self.current.epoch_id} is current — serial commit "
                    "discipline violated"
                )
            epoch = Epoch(
                epoch_id=parent.epoch_id + 1,
                parent_id=parent.epoch_id,
                warm=warm,
                registry=registry if registry is not None else parent.registry,
                published_by=published_by,
            )
            self.current = epoch
            self.epochs[epoch.epoch_id] = epoch
            self.chain.append(epoch.epoch_id)
            self.published += 1
            return epoch

    def abandon(self, parent: Epoch, request_id: str) -> None:
        """Drop a request's derivation — recovery *is* this no-op."""
        with self._lock:
            self.abandoned += 1
            self.abandoned_by.append(request_id)
