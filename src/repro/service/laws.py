"""Service-level conservation laws, audited like run invariants.

Three laws, reported through the same
:class:`~repro.obs.invariants.InvariantReport` machinery the per-run
:class:`~repro.obs.invariants.InvariantChecker` uses (so suites can
assert ``report.ok`` uniformly):

- **service-admission-accounting** — every submission is accounted
  exactly once: ``submitted == admitted + Σ rejected``, and every
  admitted request is either still queued or reached exactly one outcome
  (``admitted == completed + shed + deadline_expired + crashed +
  queued``). Per-tenant ledgers sum to the same totals.
- **service-epoch-publication** — the published chain has no gaps and no
  forks: ids are consecutive from the boot epoch, each epoch's parent is
  its predecessor, ``published == len(chain)``, and every begun
  derivation either published or abandoned (``begun == published +
  abandoned``). This is the atomicity audit: a crashed/expired/shed
  request provably left no trace in the chain.
- **service-quota-conservation** — charged spend is conserved across
  three independent books: each tenant's ledger equals the sum of that
  tenant's per-request records, and each completed request's record
  equals the stopwatch totals in its own export (queries = surface +
  attr-surface accounts, probes = attr-deep, seconds = Σ accounts). A
  request the service charged but the export didn't see (or vice versa)
  breaks the law.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs.invariants import InvariantReport, InvariantViolation

__all__ = ["check_service"]

_LAWS = (
    "service-admission-accounting",
    "service-epoch-publication",
    "service-quota-conservation",
)


def _fail(report: InvariantReport, invariant: str, message: str) -> None:
    report.violations.append(
        InvariantViolation(invariant=invariant, message=message))


def _equal(report: InvariantReport, invariant: str, actual, expected,
           what: str) -> None:
    if actual != expected:
        _fail(report, invariant, f"{what}: {actual!r} != {expected!r}")


def check_service(service) -> InvariantReport:
    """Audit a :class:`~repro.service.MatchingService` against the laws."""
    report = InvariantReport(checked=list(_LAWS))
    stats = service.stats
    warm = service.warm

    # ---- service-admission-accounting
    law = "service-admission-accounting"
    _equal(report, law, stats.submitted,
           stats.admitted + sum(stats.rejected.values()),
           "submitted vs admitted + rejected")
    _equal(report, law,
           stats.admitted,
           stats.completed + stats.shed + stats.deadline_expired
           + stats.crashed + len(service.admission),
           "admitted vs outcomes + queued")
    for name, total in (
        ("admitted", stats.admitted),
        ("completed", stats.completed),
        ("shed", stats.shed),
        ("deadline_expired", stats.deadline_expired),
        ("crashed", stats.crashed),
    ):
        _equal(report, law,
               sum(getattr(ledger, name)
                   for ledger in stats.ledgers.values()),
               total, f"Σ tenant {name} vs global")
    _equal(report, law,
           sum(sum(ledger.rejected.values())
               for ledger in stats.ledgers.values()),
           sum(stats.rejected.values()),
           "Σ tenant rejections vs global")

    # ---- service-epoch-publication
    law = "service-epoch-publication"
    _equal(report, law, warm.published, len(warm.chain),
           "published count vs chain length")
    _equal(report, law, warm.begun, warm.published + warm.abandoned,
           "begun vs published + abandoned")
    previous = 0  # the boot epoch
    for epoch_id in warm.chain:
        epoch = warm.epochs.get(epoch_id)
        if epoch is None:
            _fail(report, law, f"chain names unknown epoch {epoch_id}")
            continue
        _equal(report, law, epoch.epoch_id, previous + 1,
               "chain ids not consecutive")
        _equal(report, law, epoch.parent_id, previous,
               f"epoch {epoch_id} parent")
        if epoch.published_by is None:
            _fail(report, law,
                  f"published epoch {epoch_id} names no publisher")
        previous = epoch_id
    _equal(report, law, warm.current.epoch_id, previous,
           "current epoch vs chain tail")
    for request_id in warm.abandoned_by:
        for epoch in warm.epochs.values():
            if epoch.published_by == request_id:
                _fail(report, law,
                      f"request {request_id} abandoned AND published "
                      f"epoch {epoch.epoch_id}")

    # ---- service-quota-conservation
    law = "service-quota-conservation"
    by_tenant: Dict[str, Dict[str, Any]] = {}
    for record in stats.records:
        sums = by_tenant.setdefault(
            record["tenant"], {"queries": 0, "probes": 0, "seconds": 0.0})
        sums["queries"] += record["queries"]
        sums["probes"] += record["probes"]
        sums["seconds"] += record["seconds"]
    for tenant, ledger in sorted(stats.ledgers.items()):
        sums = by_tenant.get(
            tenant, {"queries": 0, "probes": 0, "seconds": 0.0})
        _equal(report, law, ledger.queries, sums["queries"],
               f"tenant {tenant} ledger queries vs Σ records")
        _equal(report, law, ledger.probes, sums["probes"],
               f"tenant {tenant} ledger probes vs Σ records")
        if abs(ledger.seconds - sums["seconds"]) > 1e-6:
            _fail(report, law,
                  f"tenant {tenant} ledger seconds {ledger.seconds!r} != "
                  f"Σ records {sums['seconds']!r}")
    records_by_id = {rec["request_id"]: rec for rec in stats.records}
    for request_id, response in sorted(service.responses.items()):
        if response.outcome != "completed" or response.export is None:
            continue
        record = records_by_id.get(request_id)
        if record is None:
            _fail(report, law,
                  f"completed request {request_id} has no spend record")
            continue
        export_queries = response.export.get("overhead_queries", {})
        export_seconds = response.export.get("overhead_seconds", {})
        _equal(report, law, record["queries"],
               export_queries.get("surface", 0)
               + export_queries.get("attr_surface", 0),
               f"{request_id} record queries vs export stopwatch")
        _equal(report, law, record["probes"],
               export_queries.get("attr_deep", 0),
               f"{request_id} record probes vs export stopwatch")
        if abs(record["seconds"] - sum(export_seconds.values())) > 1e-6:
            _fail(report, law,
                  f"{request_id} record seconds {record['seconds']!r} != "
                  f"export stopwatch {sum(export_seconds.values())!r}")
    return report
