"""The long-lived matching service: warm runs, provably standalone-equal.

One :class:`MatchingService` instance loads nothing up front and keeps
everything it learns: each completed request's post-run cache content
(engine answers + validation tallies) publishes as a new
:class:`~repro.service.state.Epoch`, so the next tenant's run starts
warm. The headline guarantee is the **equivalence oracle**: an admitted
request's export is byte-identical (after stripping the format-5
``service`` section) to the same run executed standalone with the same
effective config and the same :class:`~repro.perf.CachePreload` applied
— because the service and the standalone path *are the same code path*,
``WebIQMatcher.run(dataset, warm=...)``. The service adds coordinates
around the run, never hands inside it.

Request lifecycle::

    submit ──rejected──▶ AdmissionRejected (queue_full / over_quota /
       │                                    deadline_infeasible)
       ▼
    queued ──(deficit-round-robin)──▶ dispatch
       │                                │ quota re-check fails ──▶ SHED
       ▼                                ▼
    WarmState.begin (parent epoch)   run(dataset, warm=parent.warm)
       │                                │
       │  DeadlineExceededError ──▶ DEADLINE_EXPIRED (abandon epoch,
       │  any other exception  ──▶ CRASHED          partial report from
       ▼                                             the spool journal)
    COMPLETED: assimilate (copy-on-write) → publish epoch → charge ledger

Shed, expired and crashed requests abandon their derivation — warm state
is exactly what it was, audited by the epoch-publication law. Execution
is **serial in admission order** (concurrency lives at submission; the
authoritative interleaving is the deterministic DRR dispatch order), so
identical workloads produce identical epochs, ledgers and exports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.checkpoint import CheckpointConfig, RunJournal
from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets.dataset import build_domain_dataset
from repro.io import run_result_to_dict
from repro.perf.cache import CacheConfig, CachePreload
from repro.registry.assimilate import RegistryAssimilator
from repro.registry.store import RegistryLock, RegistryStore
from repro.service.admission import (
    AdmissionController,
    TenantLedger,
    TenantQuota,
)
from repro.service.state import Epoch, WarmState
from repro.supervisor import SupervisorConfig
from repro.util.clock import DEEP_PROBE_SECONDS, SEARCH_QUERY_SECONDS
from repro.util.errors import (
    AdmissionRejected,
    DeadlineExceededError,
    ValidationError,
)
from repro.util.rng import derive_rng

__all__ = [
    "MatchRequest",
    "MatchResponse",
    "MatchingService",
    "ServiceConfig",
    "ServiceEvent",
    "ServiceRunInfo",
    "ServiceStats",
    "build_workload",
]

#: request outcomes
COMPLETED = "completed"
SHED = "shed"
DEADLINE_EXPIRED = "deadline_expired"
CRASHED = "crashed"


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs (everything per-request lives on the request)."""

    #: total queued requests across all tenants before the door closes
    max_queue_depth: int = 8
    #: deficit-round-robin quantum (see :mod:`repro.service.admission`)
    quantum: float = 1.0
    #: quota applied to tenants absent from ``quotas``
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: per-tenant quota overrides
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: directory for per-request checkpoint spools (required before any
    #: request may carry a deadline — expiry is only sound at journal
    #: boundaries)
    spool_dir: Optional[str] = None
    #: directory the published registry persists to (under the
    #: :class:`~repro.registry.store.RegistryLock`); ``None`` keeps the
    #: registry in-memory only
    registry_dir: Optional[str] = None


@dataclass(frozen=True)
class MatchRequest:
    """One tenant's ask: run this matching workload against warm state."""

    tenant: str
    domain: str
    n_interfaces: int = 4
    seed: int = 7
    #: the run configuration; the service forces the query cache on and,
    #: for deadline requests, attaches a checkpoint spool + supervisor
    config: WebIQConfig = field(default_factory=WebIQConfig)
    #: simulated-seconds budget for the whole run; ``None`` = no deadline
    deadline_seconds: Optional[float] = None
    #: assimilate the run's interfaces into the service registry
    assimilate: bool = False
    #: deficit-round-robin cost (expensive requests wait longer)
    cost: float = 1.0
    #: assigned by the service at submission
    request_id: Optional[str] = None


@dataclass(frozen=True)
class ServiceRunInfo:
    """The format-5 ``service`` section: a run's service coordinates."""

    request_id: str
    tenant: str
    epoch_parent: int
    epoch_published: Optional[int]
    warm: bool
    outcome: str

    def to_export_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "epoch_parent": self.epoch_parent,
            "epoch_published": self.epoch_published,
            "warm": self.warm,
            "outcome": self.outcome,
        }


@dataclass
class MatchResponse:
    """What a tenant gets back for one executed request."""

    request_id: str
    tenant: str
    outcome: str
    #: eager JSON export of the run (``None`` unless completed). Captured
    #: at completion on purpose: result objects reference live dataset
    #: attributes a later request could never retroactively change here.
    export: Optional[Dict[str, Any]] = None
    #: partial degradation payload for a deadline-expired request,
    #: reconstructed from the spool journal's valid prefix
    degradation: Optional[Dict[str, Any]] = None
    #: ``"Type: message"`` of the failure, for expired/crashed outcomes
    error: Optional[str] = None
    epoch_parent: Optional[int] = None
    epoch_published: Optional[int] = None
    #: did the run start from a non-empty warm preload?
    warm: bool = False
    #: the exact config the run executed with (standalone comparator input)
    effective_config: Optional[WebIQConfig] = None
    #: spend charged to the tenant's ledger for this request
    queries: int = 0
    probes: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class ServiceEvent:
    """One streamed progress event (submitted/started/published/...)."""

    kind: str
    request_id: str
    tenant: str
    detail: str = ""


class ServiceStats:
    """The service ledger: per-tenant accounts plus the warm/cold split.

    Deliberately wall-clock-free: "latency" is simulated seconds from the
    runs' stopwatches, so two identical workloads produce byte-identical
    stats (the determinism the service suite asserts). Real wall clocks
    stay in-memory diagnostics, exactly like ``exec_stats``.
    """

    def __init__(self) -> None:
        self.ledgers: Dict[str, TenantLedger] = {}
        self.submitted = 0
        self.admitted = 0
        self.rejected: Dict[str, int] = {}
        self.completed = 0
        self.shed = 0
        self.deadline_expired = 0
        self.crashed = 0
        self.warm_runs = 0
        self.cold_runs = 0
        self.warm_seconds = 0.0
        self.cold_seconds = 0.0
        #: one record per *executed* request (completed/shed/expired/crashed)
        self.records: List[Dict[str, Any]] = []

    def ledger_for(self, tenant: str) -> TenantLedger:
        ledger = self.ledgers.get(tenant)
        if ledger is None:
            ledger = self.ledgers[tenant] = TenantLedger(tenant=tenant)
        return ledger

    @property
    def warm_mean_seconds(self) -> float:
        return self.warm_seconds / self.warm_runs if self.warm_runs else 0.0

    @property
    def cold_mean_seconds(self) -> float:
        return self.cold_seconds / self.cold_runs if self.cold_runs else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": {k: self.rejected[k] for k in sorted(self.rejected)},
            "completed": self.completed,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "crashed": self.crashed,
            "warm_runs": self.warm_runs,
            "cold_runs": self.cold_runs,
            "warm_seconds": round(self.warm_seconds, 6),
            "cold_seconds": round(self.cold_seconds, 6),
            "tenants": {
                tenant: self.ledgers[tenant].to_dict()
                for tenant in sorted(self.ledgers)
            },
            "records": list(self.records),
        }


class MatchingService:
    """See the module docstring for the lifecycle this class implements."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        on_event: Optional[Callable[[ServiceEvent], None]] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        registry: Optional[RegistryStore] = None
        directory = self.config.registry_dir
        if directory is not None and os.path.exists(
                os.path.join(directory, "registry.json")):
            registry = RegistryStore.load(directory)
        self.warm = WarmState(registry=registry)
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            quantum=self.config.quantum,
        )
        self.stats = ServiceStats()
        self.events: List[ServiceEvent] = []
        self.responses: Dict[str, MatchResponse] = {}
        self._on_event = on_event
        self._next_id = 1

    # ------------------------------------------------------------- intake
    def submit(self, request: MatchRequest) -> str:
        """Admit ``request`` (returns its id) or raise AdmissionRejected.

        A rejected request is fully accounted (per-tenant and per-reason)
        but spends nothing and never touches warm state.
        """
        if (request.deadline_seconds is not None
                and self.config.spool_dir is None):
            raise ValidationError(
                "a deadline request needs ServiceConfig.spool_dir: expiry "
                "is only sound at journal boundaries"
            )
        self.stats.submitted += 1
        ledger = self.stats.ledger_for(request.tenant)
        quota = self.config.quotas.get(
            request.tenant, self.config.default_quota)
        request_id = f"r{self._next_id:04d}"
        self._next_id += 1
        try:
            self.admission.offer(
                replace(request, request_id=request_id),
                ledger=ledger, quota=quota,
            )
        except AdmissionRejected as exc:
            self.stats.rejected[exc.reason] = \
                self.stats.rejected.get(exc.reason, 0) + 1
            ledger.note_rejection(exc.reason)
            self._emit("rejected", request_id, request.tenant, exc.reason)
            raise
        self.stats.admitted += 1
        ledger.admitted += 1
        self._emit("submitted", request_id, request.tenant, request.domain)
        return request_id

    # ------------------------------------------------------------ serving
    def run_pending(self) -> List[MatchResponse]:
        """Drain the queue in DRR order; one response per dispatched
        request, in execution order."""
        responses: List[MatchResponse] = []
        while True:
            request = self.admission.next_request()
            if request is None:
                return responses
            responses.append(self._execute(request))

    def drive(self, requests: List[MatchRequest]) -> List[MatchResponse]:
        """Submit then drain — the deterministic workload entry point.

        Rejections are absorbed into the stats/events (the driver's job
        is to exercise the service, not to die on the first full queue).
        """
        for request in requests:
            try:
                self.submit(request)
            except AdmissionRejected:
                pass
        return self.run_pending()

    # ------------------------------------------------------------ internals
    def _emit(self, kind: str, request_id: str, tenant: str,
              detail: str = "") -> None:
        event = ServiceEvent(kind=kind, request_id=request_id,
                             tenant=tenant, detail=detail)
        self.events.append(event)
        if self._on_event is not None:
            self._on_event(event)

    def effective_config(self, request: MatchRequest) -> WebIQConfig:
        """The config a request actually runs with.

        The cache is forced on (a cold service run is just a warm run
        with an empty preload — one code path); the registry knob is
        cleared (the service owns registry persistence, copy-on-write);
        a deadline attaches a per-request checkpoint spool and a run
        supervisor budget so expiry preempts at a journal boundary.
        """
        cfg = request.config
        if cfg.cache is None:
            cfg = replace(cfg, cache=CacheConfig())
        if cfg.registry is not None:
            cfg = replace(cfg, registry=None)
        if request.deadline_seconds is not None and cfg.checkpoint is None:
            assert self.config.spool_dir is not None  # enforced at submit
            spool = os.path.join(self.config.spool_dir,
                                 f"spool-{request.request_id}")
            cfg = replace(cfg, checkpoint=CheckpointConfig(directory=spool))
        if request.deadline_seconds is not None:
            supervisor = cfg.supervisor or SupervisorConfig()
            cfg = replace(cfg, supervisor=replace(
                supervisor, run_deadline_seconds=request.deadline_seconds))
        return cfg

    def _execute(self, request: MatchRequest) -> MatchResponse:
        request_id = request.request_id or "r????"
        ledger = self.stats.ledger_for(request.tenant)
        quota = self.config.quotas.get(
            request.tenant, self.config.default_quota)

        # Quota re-check at dispatch: the tenant may have gone over while
        # this request sat in the queue. Shedding touches no warm state.
        over = quota.exceeded_by(ledger)
        if over is not None:
            self.stats.shed += 1
            ledger.shed += 1
            self._record(request_id, request.tenant, SHED, False, 0, 0, 0.0)
            self._emit("shed", request_id, request.tenant, over)
            response = MatchResponse(
                request_id=request_id, tenant=request.tenant, outcome=SHED,
                error=f"AdmissionRejected: {over}")
            self.responses[request_id] = response
            return response

        parent = self.warm.begin(request_id)
        warm_start = not parent.warm.is_empty
        effective = self.effective_config(request)
        self._emit("started", request_id, request.tenant,
                   f"epoch={parent.epoch_id} warm={warm_start}")
        preload = None if parent.warm.is_empty else parent.warm
        try:
            # Dataset construction is inside the crash domain on purpose:
            # a bad request (unknown domain, absurd sizes) must crash
            # *this* request, not the serve loop.
            dataset = build_domain_dataset(
                request.domain, n_interfaces=request.n_interfaces,
                seed=request.seed)
            result = WebIQMatcher(effective).run(dataset, warm=preload)
        except DeadlineExceededError as exc:
            return self._expire(request, parent, effective, warm_start, exc)
        except Exception as exc:  # noqa: BLE001 — crash isolation is the point
            self.warm.abandon(parent, request_id)
            self.stats.crashed += 1
            ledger.crashed += 1
            error = f"{type(exc).__name__}: {exc}"
            self._record(request_id, request.tenant, CRASHED, warm_start,
                         0, 0, 0.0)
            self._emit("crashed", request_id, request.tenant, error)
            response = MatchResponse(
                request_id=request_id, tenant=request.tenant,
                outcome=CRASHED, error=error,
                epoch_parent=parent.epoch_id, warm=warm_start,
                effective_config=effective)
            self.responses[request_id] = response
            return response

        # ---- success: derive, publish, charge — in that order.
        new_warm = result.cache_content or CachePreload()
        registry = None
        if request.assimilate:
            registry = self._assimilate(parent, dataset, effective)
        info = ServiceRunInfo(
            request_id=request_id, tenant=request.tenant,
            epoch_parent=parent.epoch_id,
            epoch_published=parent.epoch_id + 1,
            warm=warm_start, outcome=COMPLETED)
        result.service = info
        export = run_result_to_dict(result)
        epoch = self.warm.publish(parent, warm=new_warm, registry=registry,
                                  published_by=request_id)
        if registry is not None and self.config.registry_dir is not None:
            with RegistryLock(self.config.registry_dir,
                              owner=f"service:{request_id}"):
                registry.save(self.config.registry_dir)
        queries = (result.stopwatch.queries("surface")
                   + result.stopwatch.queries("attr_surface"))
        probes = result.stopwatch.queries("attr_deep")
        seconds = result.stopwatch.total_seconds
        ledger.charge(queries=queries, probes=probes, seconds=seconds)
        ledger.completed += 1
        self.stats.completed += 1
        if warm_start:
            self.stats.warm_runs += 1
            self.stats.warm_seconds += seconds
        else:
            self.stats.cold_runs += 1
            self.stats.cold_seconds += seconds
        self._record(request_id, request.tenant, COMPLETED, warm_start,
                     queries, probes, seconds)
        self._emit("published", request_id, request.tenant,
                   f"epoch={epoch.epoch_id}")
        response = MatchResponse(
            request_id=request_id, tenant=request.tenant, outcome=COMPLETED,
            export=export, epoch_parent=parent.epoch_id,
            epoch_published=epoch.epoch_id, warm=warm_start,
            effective_config=effective, queries=queries, probes=probes,
            seconds=seconds)
        self.responses[request_id] = response
        return response

    def _expire(self, request: MatchRequest, parent: Epoch,
                effective: WebIQConfig, warm_start: bool,
                exc: DeadlineExceededError) -> MatchResponse:
        """Graceful degradation: abandon the epoch, salvage the journal.

        The spool journal's valid prefix is paid-for work — its spend is
        real and charged to the tenant (quota conservation counts every
        round trip the substrates served, not just the successful runs),
        and its last record's resilience snapshot becomes the partial
        degradation payload the tenant gets instead of nothing.
        """
        request_id = request.request_id or "r????"
        ledger = self.stats.ledger_for(request.tenant)
        self.warm.abandon(parent, request_id)
        queries = probes = 0
        degradation: Optional[Dict[str, Any]] = None
        assert effective.checkpoint is not None
        try:
            journal = RunJournal.open(effective.checkpoint.directory)
        except Exception:  # noqa: BLE001 — a torn spool loses the salvage only
            journal = None
        if journal is not None and journal.records:
            for body in journal.records:
                queries += int(body.get("queries", 0))
                probes += int(body.get("probes", 0))
            state = journal.records[-1].get("state", {})
            client = state.get("client")
            if client is not None:
                degradation = dict(client.get("report", {}))
        seconds = (queries * SEARCH_QUERY_SECONDS
                   + probes * DEEP_PROBE_SECONDS)
        ledger.charge(queries=queries, probes=probes, seconds=seconds)
        ledger.deadline_expired += 1
        self.stats.deadline_expired += 1
        error = f"{type(exc).__name__}: {exc}"
        self._record(request_id, request.tenant, DEADLINE_EXPIRED,
                     warm_start, queries, probes, seconds)
        self._emit("deadline_expired", request_id, request.tenant,
                   f"scope={exc.scope} spent={exc.seconds:.1f}s")
        response = MatchResponse(
            request_id=request_id, tenant=request.tenant,
            outcome=DEADLINE_EXPIRED, degradation=degradation, error=error,
            epoch_parent=parent.epoch_id, warm=warm_start,
            effective_config=effective, queries=queries, probes=probes,
            seconds=seconds)
        self.responses[request_id] = response
        return response

    def _assimilate(self, parent: Epoch, dataset,
                    effective: WebIQConfig) -> RegistryStore:
        """Copy-on-write assimilation of the run's interfaces.

        The parent's store is never touched: mutation happens on a deep
        copy (``from_body(to_body())``) that only becomes visible if the
        epoch publishes. Interfaces the registry already holds are
        skipped — re-running a request must be idempotent.
        """
        if parent.registry is not None:
            store = RegistryStore.from_body(parent.registry.to_body())
        else:
            store = RegistryStore(
                domain=dataset.domain, threshold=effective.threshold,
                linkage=effective.linkage, similarity=effective.similarity)
        assimilator = RegistryAssimilator(store)
        for interface in dataset.interfaces:
            if store.has_interface(interface.interface_id):
                continue
            assimilator.assimilate(interface)
        return store

    def _record(self, request_id: str, tenant: str, outcome: str,
                warm: bool, queries: int, probes: int,
                seconds: float) -> None:
        self.stats.records.append({
            "request_id": request_id,
            "tenant": tenant,
            "outcome": outcome,
            "warm": warm,
            "queries": queries,
            "probes": probes,
            "seconds": round(seconds, 6),
        })


def build_workload(
    *,
    seed: int,
    tenants: Tuple[str, ...] = ("acme", "globex"),
    n_requests: int = 6,
    domains: Tuple[str, ...] = ("book",),
    n_interfaces: int = 4,
    config: Optional[WebIQConfig] = None,
    deadline_every: int = 0,
    assimilate_every: int = 0,
) -> List[MatchRequest]:
    """A seeded deterministic request mix for tests and benchmarks.

    Tenant and domain picks come from one :func:`derive_rng` stream, so
    the same seed always yields the same workload; ``deadline_every`` /
    ``assimilate_every`` (0 = never) flag every k-th request.
    """
    rng = derive_rng(seed, "service", "workload")
    cfg = config or WebIQConfig()
    requests: List[MatchRequest] = []
    for index in range(n_requests):
        tenant = tenants[rng.randrange(len(tenants))]
        domain = domains[rng.randrange(len(domains))]
        deadline = (
            8.0 if deadline_every and (index + 1) % deadline_every == 0
            else None
        )
        assimilate = bool(
            assimilate_every and (index + 1) % assimilate_every == 0
        )
        requests.append(MatchRequest(
            tenant=tenant, domain=domain, n_interfaces=n_interfaces,
            seed=7, config=cfg, deadline_seconds=deadline,
            assimilate=assimilate))
    return requests
