"""Deterministic admission control: bounded queue, quotas, fairness.

Three gates, each with a typed rejection
(:class:`~repro.util.errors.AdmissionRejected`, ``reason`` one of
``queue_full`` / ``tenant_over_quota`` / ``deadline_infeasible``):

1. **Bounded queue** — overload sheds at the door. The service never
   buffers more than ``max_queue_depth`` requests in total; beyond that,
   admitting would only convert overload into latency for everyone.
2. **Per-tenant quotas** — :class:`TenantQuota` generalises the PR-1
   :class:`~repro.resilience.client.Budget` (a single round-trip pool for
   one component) to a tenant-lifetime allowance over engine queries,
   deep-web probes and simulated wall seconds, checked against the
   tenant's :class:`TenantLedger` of cumulative spend. The check repeats
   at dispatch: a tenant may be under quota when its request queues and
   over it by the time the request reaches the front, in which case the
   request is *shed* (it spent nothing, warm state untouched).
3. **Deadline feasibility** — a deadline shorter than one round trip
   (``SEARCH_QUERY_SECONDS + DEEP_PROBE_SECONDS`` simulated seconds by
   default) cannot admit any useful work; rejecting it at the door is
   kinder than letting it expire at position one in the queue.

Between tenants, dispatch order is **deficit round-robin**: each visit
to a tenant's queue earns it ``quantum`` deficit; its head request is
served once the deficit covers the request's ``cost``. A tenant posting
expensive requests waits proportionally longer — no tenant can starve
another — and the whole discipline is integer-free of wall clocks, so
the same submissions always dispatch in the same order (the determinism
the equivalence suite leans on).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.util.clock import DEEP_PROBE_SECONDS, SEARCH_QUERY_SECONDS
from repro.util.errors import AdmissionRejected

__all__ = [
    "MIN_FEASIBLE_DEADLINE_SECONDS",
    "AdmissionController",
    "TenantLedger",
    "TenantQuota",
]

#: One search round trip plus one probe round trip, simulated — the
#: smallest deadline under which a request can make any progress.
MIN_FEASIBLE_DEADLINE_SECONDS = SEARCH_QUERY_SECONDS + DEEP_PROBE_SECONDS


@dataclass(frozen=True)
class TenantQuota:
    """A tenant's lifetime allowance. ``None`` fields are unbounded."""

    #: cumulative surface/attr-surface engine queries
    max_engine_queries: Optional[int] = None
    #: cumulative deep-web form probes
    max_probes: Optional[int] = None
    #: cumulative simulated wall seconds
    max_wall_seconds: Optional[float] = None

    def exceeded_by(self, ledger: "TenantLedger") -> Optional[str]:
        """The first limit the ledger is at or over, or ``None``."""
        if (self.max_engine_queries is not None
                and ledger.queries >= self.max_engine_queries):
            return (f"engine queries {ledger.queries} >= "
                    f"{self.max_engine_queries}")
        if self.max_probes is not None and ledger.probes >= self.max_probes:
            return f"probes {ledger.probes} >= {self.max_probes}"
        if (self.max_wall_seconds is not None
                and ledger.seconds >= self.max_wall_seconds):
            return (f"wall {ledger.seconds:.1f}s >= "
                    f"{self.max_wall_seconds:.1f}s")
        return None


@dataclass
class TenantLedger:
    """One tenant's cumulative account with the service."""

    tenant: str
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    deadline_expired: int = 0
    crashed: int = 0
    #: rejection reason -> count (rejections never spend anything)
    rejected: Dict[str, int] = field(default_factory=dict)
    #: engine queries charged (surface + attr-surface accounts)
    queries: int = 0
    #: deep-web probes charged (attr-deep account)
    probes: int = 0
    #: simulated seconds charged
    seconds: float = 0.0

    def charge(self, *, queries: int, probes: int, seconds: float) -> None:
        self.queries += queries
        self.probes += probes
        self.seconds += seconds

    def note_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "crashed": self.crashed,
            "rejected": {k: self.rejected[k] for k in sorted(self.rejected)},
            "queries": self.queries,
            "probes": self.probes,
            "seconds": round(self.seconds, 6),
        }


class AdmissionController:
    """Bounded per-tenant queues drained in deficit-round-robin order."""

    def __init__(
        self,
        *,
        max_queue_depth: int = 8,
        quantum: float = 1.0,
        min_deadline_seconds: float = MIN_FEASIBLE_DEADLINE_SECONDS,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.max_queue_depth = max_queue_depth
        self.quantum = quantum
        self.min_deadline_seconds = min_deadline_seconds
        self._queues: Dict[str, Deque[object]] = {}
        #: tenants with queued work, in arrival-of-first-request order
        self._rotation: List[str] = []
        self._deficit: Dict[str, float] = {}

    # ------------------------------------------------------------ intake
    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queued_for(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def offer(self, request, *, ledger: TenantLedger,
              quota: TenantQuota) -> None:
        """Admit ``request`` or raise a typed :class:`AdmissionRejected`.

        ``request`` needs ``tenant``, ``cost`` and ``deadline_seconds``
        attributes; admission never inspects anything else, so shedding
        and rejection provably cannot depend on (or touch) warm state.
        """
        tenant = request.tenant
        if len(self) >= self.max_queue_depth:
            raise AdmissionRejected(
                f"request queue is full ({self.max_queue_depth} deep) — "
                f"shedding {tenant}'s request at the door",
                reason="queue_full", tenant=tenant,
            )
        over = quota.exceeded_by(ledger)
        if over is not None:
            raise AdmissionRejected(
                f"tenant {tenant} is over quota ({over})",
                reason="tenant_over_quota", tenant=tenant,
            )
        deadline = getattr(request, "deadline_seconds", None)
        if deadline is not None and deadline < self.min_deadline_seconds:
            raise AdmissionRejected(
                f"deadline {deadline:.2f}s cannot fit one round trip "
                f"(minimum {self.min_deadline_seconds:.2f}s simulated)",
                reason="deadline_infeasible", tenant=tenant,
            )
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue and tenant not in self._rotation:
            self._rotation.append(tenant)
        queue.append(request)

    # ----------------------------------------------------------- dispatch
    def next_request(self):
        """The next request in deficit-round-robin order, or ``None``.

        Each visit earns the tenant ``quantum`` deficit; its head request
        dispatches once the deficit covers the request's ``cost``.
        Deficits reset when a tenant's queue drains, so an idle tenant
        cannot bank credit. Terminates because every full rotation adds
        ``quantum`` to some non-empty queue's deficit.
        """
        while self._rotation:
            tenant = self._rotation.pop(0)
            queue = self._queues.get(tenant)
            if not queue:
                self._deficit.pop(tenant, None)
                continue
            deficit = self._deficit.get(tenant, 0.0) + self.quantum
            head_cost = getattr(queue[0], "cost", 1.0)
            if deficit >= head_cost:
                request = queue.popleft()
                if queue:
                    self._deficit[tenant] = deficit - head_cost
                    self._rotation.append(tenant)
                else:
                    self._deficit.pop(tenant, None)
                return request
            self._deficit[tenant] = deficit
            self._rotation.append(tenant)
        return None
