"""The long-running matching service (DESIGN.md §17).

A :class:`MatchingService` keeps the expensive substrates warm across
requests — engine answers, validation tallies and the attribute registry
live behind copy-on-write :class:`~repro.service.state.Epoch` snapshots —
while admission control (:mod:`repro.service.admission`) keeps misbehaving
tenants from hurting anyone else: bounded queue, per-tenant quotas with
deficit-round-robin fairness, deadline feasibility at the door and
graceful deadline degradation in flight.

The correctness contract is inherited, not invented: every admitted
request executes through the very same ``WebIQMatcher.run`` as a
standalone CLI run (warm start is just a ``CachePreload`` argument), so
its export is byte-identical to that standalone run — the equivalence
oracle ``tests/test_service_equivalence.py`` enforces — and the
service-level conservation laws (:func:`repro.service.laws.check_service`)
audit admission accounting, epoch-publication atomicity and per-tenant
quota conservation on top.
"""

from repro.service.admission import (
    MIN_FEASIBLE_DEADLINE_SECONDS,
    AdmissionController,
    TenantLedger,
    TenantQuota,
)
from repro.service.laws import check_service
from repro.service.server import (
    MatchRequest,
    MatchResponse,
    MatchingService,
    ServiceConfig,
    ServiceEvent,
    ServiceRunInfo,
    ServiceStats,
    build_workload,
)
from repro.service.state import Epoch, WarmState

__all__ = [
    "MIN_FEASIBLE_DEADLINE_SECONDS",
    "AdmissionController",
    "Epoch",
    "MatchRequest",
    "MatchResponse",
    "MatchingService",
    "ServiceConfig",
    "ServiceEvent",
    "ServiceRunInfo",
    "ServiceStats",
    "TenantLedger",
    "TenantQuota",
    "WarmState",
    "build_workload",
    "check_service",
]
