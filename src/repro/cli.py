"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``stats``     — Table-1-style dataset characteristics for one/all domains
- ``run``       — full pipeline on a domain; prints accuracy, acquisition
  success, and overhead; optional JSON export of the run
- ``discover``  — Surface instance discovery for a single label (the §2
  pipeline, verbose)
- ``export``    — snapshot a generated dataset to JSON
- ``diff``      — compare two exported runs and classify the drift
- ``journal``   — inspect or salvage a run's checkpoint journal
- ``registry``  — build, extend, inspect or batch-check a canonical
  attribute registry (incremental matching, see :mod:`repro.registry`)
- ``bench``     — compare versioned benchmark artifacts; ``bench diff
  BASELINE CURRENT`` classifies per-metric drift against the baseline's
  declared tolerances (exit 1 on regression, 2 on workload mismatch)
- ``serve``     — boot the long-running matching service and drive a JSON
  request script through it: warm epochs, admission control, per-tenant
  quotas, deadlines (exit 1 on --strict violations, 2 on a bad script)
- ``request``   — execute one request through a fresh service instance;
  exit 0 completed, 3 deadline-expired, 5 admission-rejected, 6 crashed.
  ``--strip-service --json PATH`` writes the export without its service
  section, byte-comparable against ``run --json`` output

``run --profile PATH`` profiles the run with the deterministic span
profiler (:mod:`repro.obs.profile`): hot-path work counters plus
self/cumulative time per span path, written as sorted JSON to PATH and
as collapsed-stack lines to ``PATH.folded`` for flamegraph tooling.

``run --report PATH`` writes a provenance-backed run report (accuracy,
acquisition yield, hardest match decisions); ``run --explain ATTR``
prints the match explanations touching one attribute. ``run --checkpoint
DIR`` journals every completed unit of work so a killed run resumes with
``--resume`` (exit code 3 marks a preempted run, ``--kill-at N`` preempts
deterministically for testing); ``run --supervise`` wraps the run in the
self-healing supervisor, which auto-resumes after crashes, salvages torn
journals, and quarantines poisoned units (exit code 4 when the restart
budget is exhausted); ``run --strict`` exits non-zero if any cross-layer
invariant is violated. Everything is deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.core.surface import SurfaceDiscoverer
from repro.datasets import DOMAINS, build_domain_dataset, dataset_statistics
from repro.deepweb.models import Attribute

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WebIQ reproduction: match Deep-Web query interfaces "
                    "with Web-acquired instances.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="dataset characteristics (Table 1)")
    _common(stats)

    run = sub.add_parser("run", help="run the WebIQ + IceQ pipeline")
    _common(run)
    run.add_argument("--baseline", action="store_true",
                     help="disable all WebIQ components (IceQ alone)")
    run.add_argument("--threshold", type=float, default=0.0,
                     help="clustering threshold tau (default 0.0)")
    run.add_argument("--no-surface", action="store_true")
    run.add_argument("--no-attr-deep", action="store_true")
    run.add_argument("--no-attr-surface", action="store_true")
    run.add_argument("--json", metavar="PATH",
                     help="write the full run result as JSON")
    run.add_argument("--fault-rate", type=float, default=0.0,
                     help="inject Web faults at this rate (0..1) and run "
                          "behind the resilience layer")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed of the fault streams (default 0)")
    run.add_argument("--probe-budget", type=int, default=None,
                     help="cap on Attr-Deep form submissions per run")
    run.add_argument("--query-budget", type=int, default=None,
                     help="cap on search-engine round trips per component")
    run.add_argument("--degradation", action="store_true",
                     help="print the full degradation report")
    run.add_argument("--cache", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="memoise repeated search-engine queries "
                          "(default on; --no-cache issues every query)")
    run.add_argument("--cache-size", type=int, default=None, metavar="N",
                     help="LRU capacity of the query cache "
                          "(default 65536 entries)")
    run.add_argument("--trace", metavar="PATH",
                     help="trace the run and write the trace + metrics "
                          "as deterministic JSON")
    run.add_argument("--profile", metavar="PATH",
                     help="profile the run: write span self/cumulative "
                          "times, hot-path work counters and per-phase "
                          "rollups as JSON to PATH, plus collapsed "
                          "stacks to PATH.folded (flamegraph input); "
                          "strictly read-only — results are unchanged")
    run.add_argument("--metrics", action="store_true",
                     help="trace the run and print the observability and "
                          "invariant-check summaries")
    run.add_argument("--report", metavar="PATH",
                     help="record decision provenance and write a run "
                          "report (accuracy, acquisition yield, hardest "
                          "decisions) as text to PATH")
    run.add_argument("--explain", metavar="ATTR",
                     help="record decision provenance and print the match "
                          "explanations touching attributes whose name "
                          "contains ATTR")
    run.add_argument("--checkpoint", metavar="DIR",
                     help="journal every completed unit of work to DIR so "
                          "a killed run can resume without re-spending its "
                          "queries")
    run.add_argument("--resume", action="store_true",
                     help="replay the journal in --checkpoint DIR before "
                          "doing fresh work (requires --checkpoint)")
    run.add_argument("--kill-at", type=int, default=None, metavar="N",
                     help="deterministically abort the run right after "
                          "journal boundary N (crash-safety testing; "
                          "requires --checkpoint; exit code 3)")
    run.add_argument("--supervise", action="store_true",
                     help="run under the self-healing supervisor: crashes "
                          "and preemptions auto-resume from the journal, "
                          "torn journals are salvaged, and units that "
                          "crash repeatedly are quarantined (requires "
                          "--checkpoint; exit code 4 if the restart "
                          "budget runs out)")
    run.add_argument("--max-restarts", type=int, default=None, metavar="K",
                     help="restarts the supervisor absorbs before giving "
                          "up (default 8; requires --supervise)")
    run.add_argument("--unit-deadline", type=float, default=None,
                     metavar="S",
                     help="per-unit simulated-seconds budget; a unit "
                          "exceeding it preempts the run for the "
                          "supervisor to resume (requires --supervise)")
    run.add_argument("--run-deadline", type=float, default=None,
                     metavar="S",
                     help="per-attempt simulated-seconds budget over "
                          "fresh work (requires --supervise)")
    run.add_argument("--strict", action="store_true",
                     help="audit every run with the cross-layer invariant "
                          "checker and exit non-zero on any violation")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="execute acquisition units with N speculative "
                          "prefetch workers (default 1 = serial; any N "
                          "produces byte-identical results — workers only "
                          "overlap simulated I/O latency)")
    run.add_argument("--io-latency", type=float, default=0.0, metavar="S",
                     help="sleep S real seconds per raw web round trip "
                          "(simulated network latency; the quantity "
                          "--workers overlaps)")
    run.add_argument("--registry", metavar="DIR",
                     help="after matching, assimilate the run's interfaces "
                          "into a canonical attribute registry persisted "
                          "at DIR (exports stay byte-identical; the "
                          "registry's induced matching is audited against "
                          "the batch clusters)")

    discover = sub.add_parser(
        "discover", help="Surface instance discovery for one label")
    _common(discover)
    discover.add_argument("label", help='attribute label, e.g. "Departure city"')

    export = sub.add_parser("export", help="snapshot a dataset to JSON")
    _common(export)
    export.add_argument("path", help="output JSON path")

    diff = sub.add_parser(
        "diff", help="compare two exported runs (accuracy, overhead, "
                     "provenance drift)")
    diff.add_argument("old", help="reference run JSON (from run --json)")
    diff.add_argument("new", help="candidate run JSON (from run --json)")

    journal = sub.add_parser(
        "journal", help="inspect or salvage a checkpoint journal")
    jsub = journal.add_subparsers(dest="journal_command", required=True)
    jinspect = jsub.add_parser(
        "inspect", help="verify a journal and print its identity, record "
                        "count and journaled spend (exit 1 if damaged)")
    jinspect.add_argument("directory",
                          help="journal directory (from run --checkpoint)")
    jsalvage = jsub.add_parser(
        "salvage", help="truncate a damaged journal to its longest valid "
                        "prefix, moving torn records to quarantine/")
    jsalvage.add_argument("directory",
                          help="journal directory (from run --checkpoint)")

    registry = sub.add_parser(
        "registry", help="build/extend/inspect a canonical attribute "
                         "registry with incremental matching")
    rsub = registry.add_subparsers(dest="registry_command", required=True)
    rbuild = rsub.add_parser(
        "build", help="assimilate a domain's interfaces one at a time "
                      "into a fresh registry at DIR")
    _common(rbuild)
    _registry_matching_flags(rbuild)
    rbuild.add_argument("--hold-out", type=int, default=0, metavar="K",
                        help="leave the last K interfaces out of the "
                             "build (assimilate them later with "
                             "`registry add`)")
    rbuild.add_argument("--induced", metavar="PATH",
                        help="also write the registry's induced matching "
                             "as JSON to PATH")
    rbuild.add_argument("directory", help="registry directory to create")
    radd = rsub.add_parser(
        "add", help="assimilate one more interface into an existing "
                    "registry")
    _common(radd)
    radd.add_argument("--index", type=int, required=True, metavar="I",
                      help="dataset index of the interface to assimilate")
    radd.add_argument("--induced", metavar="PATH",
                      help="also write the registry's induced matching "
                           "as JSON to PATH")
    radd.add_argument("directory", help="existing registry directory")
    rshow = rsub.add_parser(
        "show", help="verify a registry and print its entries and "
                     "blocking ledger (exit 1 if damaged)")
    rshow.add_argument("directory", help="registry directory")
    rbatch = rsub.add_parser(
        "batch", help="run batch IceQ over the same interfaces and write "
                      "the induced matching JSON (the oracle `registry "
                      "build`+`add` must equal byte for byte)")
    _common(rbatch)
    _registry_matching_flags(rbatch)
    rbatch.add_argument("--induced", required=True, metavar="PATH",
                        help="output JSON path")

    bench = sub.add_parser(
        "bench", help="compare versioned benchmark artifacts")
    bsub = bench.add_subparsers(dest="bench_command", required=True)
    bdiff = bsub.add_parser(
        "diff", help="classify per-metric drift of CURRENT against "
                     "BASELINE using the baseline's declared tolerance "
                     "bands (exit 1 on regression, 2 on workload "
                     "mismatch or a damaged artifact)")
    bdiff.add_argument("baseline", help="committed baseline BENCH_*.json")
    bdiff.add_argument("current", help="freshly produced BENCH_*.json")

    serve = sub.add_parser(
        "serve", help="boot the matching service and drive a request "
                      "script against warm shared state")
    serve.add_argument("--script", required=True, metavar="PATH",
                       help="JSON request script: a list of request "
                            "objects, or {\"quotas\": {...}, "
                            "\"requests\": [...]}")
    serve.add_argument("--spool", metavar="DIR",
                       help="checkpoint spool directory (required before "
                            "any scripted request may carry a deadline)")
    serve.add_argument("--registry", metavar="DIR",
                       help="persist the service registry at DIR "
                            "(assimilating requests publish into it)")
    serve.add_argument("--queue-depth", type=int, default=8, metavar="N",
                       help="bounded request queue depth (default 8)")
    serve.add_argument("--export-dir", metavar="DIR",
                       help="write each completed request's export as "
                            "DIR/<request-id>.json")
    serve.add_argument("--stats-json", metavar="PATH",
                       help="write the deterministic ServiceStats ledger "
                            "as JSON")
    serve.add_argument("--strict", action="store_true",
                       help="audit the service conservation laws and exit "
                            "1 on any violation")

    request = sub.add_parser(
        "request", help="execute one request through a fresh service "
                        "instance (exit 0/3/5/6: completed / "
                        "deadline-expired / rejected / crashed)")
    _common(request)
    request.add_argument("--tenant", default="cli",
                         help="tenant the request is billed to "
                              "(default 'cli')")
    request.add_argument("--deadline", type=float, default=None, metavar="S",
                         help="simulated-seconds budget for the run "
                              "(requires --spool; graceful degradation on "
                              "expiry)")
    request.add_argument("--spool", metavar="DIR",
                         help="checkpoint spool directory for deadline "
                              "requests")
    request.add_argument("--registry", metavar="DIR",
                         help="assimilate the run's interfaces into the "
                              "service registry at DIR")
    request.add_argument("--threshold", type=float, default=0.0,
                         help="clustering threshold tau (default 0.0)")
    request.add_argument("--fault-rate", type=float, default=0.0,
                         help="inject Web faults at this rate (0..1)")
    request.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the fault streams (default 0)")
    request.add_argument("--probe-budget", type=int, default=None,
                         help="cap on Attr-Deep form submissions")
    request.add_argument("--query-budget", type=int, default=None,
                         help="cap on engine round trips per component")
    request.add_argument("--workers", type=int, default=1, metavar="N",
                         help="speculative prefetch workers (default 1)")
    request.add_argument("--json", metavar="PATH",
                         help="write the run export as JSON")
    request.add_argument("--strip-service", action="store_true",
                         help="strip the service section from --json "
                              "output (byte-comparable vs run --json)")
    request.add_argument("--strict", action="store_true",
                         help="audit the service conservation laws and "
                              "exit 1 on any violation")

    analyze = sub.add_parser(
        "analyze", help="error analysis of a matching run")
    _common(analyze)
    analyze.add_argument("--baseline", action="store_true",
                         help="analyse IceQ alone instead of IceQ+WebIQ")
    analyze.add_argument("--top", type=int, default=8,
                         help="error groups to show per kind")

    figure = sub.add_parser(
        "figure", help="regenerate one of the paper's tables/figures")
    figure.add_argument("id", choices=(
        "table1", "table1-acquisition", "figure6", "figure7", "figure8"))
    figure.add_argument("--interfaces", type=int, default=20)
    figure.add_argument("--seed", type=int, default=1)
    return parser


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--domain", choices=DOMAINS + ("all",),
                        default="airfare")
    parser.add_argument("--interfaces", type=int, default=20)
    parser.add_argument("--seed", type=int, default=1)


def _registry_matching_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="clustering threshold tau (default 0.0)")
    parser.add_argument("--linkage", default="average",
                        choices=("average", "single", "complete"),
                        help="inter-cluster linkage (default average)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "stats": _cmd_stats,
        "run": _cmd_run,
        "discover": _cmd_discover,
        "export": _cmd_export,
        "diff": _cmd_diff,
        "figure": _cmd_figure,
        "analyze": _cmd_analyze,
        "journal": _cmd_journal,
        "registry": _cmd_registry,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "request": _cmd_request,
    }
    return handlers[args.command](args)


def _domains(args) -> List[str]:
    return list(DOMAINS) if args.domain == "all" else [args.domain]


def _cmd_stats(args) -> int:
    print(f"{'domain':11} {'#attr':>6} {'IntNoInst%':>11} "
          f"{'AttrNoInst%':>12} {'ExpInst%':>9}")
    for domain in _domains(args):
        dataset = build_domain_dataset(domain, args.interfaces, args.seed)
        s = dataset_statistics(dataset)
        print(f"{domain:11} {s.avg_attributes:6.1f} "
              f"{s.pct_interfaces_no_inst:11.1f} "
              f"{s.pct_attrs_no_inst:12.1f} {s.pct_expected_findable:9.1f}")
    return 0


def _resilience_config(args):
    """Build the run's ResilienceConfig from CLI flags, or None."""
    if not 0.0 <= args.fault_rate <= 1.0:
        raise SystemExit(
            f"repro run: error: --fault-rate must be within [0, 1], "
            f"got {args.fault_rate}")
    wants_resilience = (
        args.fault_rate > 0.0
        or args.probe_budget is not None
        or args.query_budget is not None
        or args.degradation
    )
    if not wants_resilience:
        return None
    from repro.resilience import FaultProfile, ResilienceConfig

    return ResilienceConfig(
        profile=FaultProfile(fault_rate=args.fault_rate, seed=args.fault_seed),
        surface_query_budget=args.query_budget,
        attr_surface_query_budget=args.query_budget,
        attr_deep_probe_budget=args.probe_budget,
    )


def _cache_config(args):
    """Build the run's CacheConfig from CLI flags, or None."""
    if not args.cache:
        if args.cache_size is not None:
            raise SystemExit(
                "repro run: error: --cache-size conflicts with --no-cache")
        return None
    from repro.perf import DEFAULT_CACHE_ENTRIES, CacheConfig

    size = args.cache_size if args.cache_size is not None \
        else DEFAULT_CACHE_ENTRIES
    if size < 1:
        raise SystemExit(
            f"repro run: error: --cache-size must be at least 1, got {size}")
    return CacheConfig(max_entries=size)


def _obs_config(args):
    """Build the run's ObsConfig from CLI flags, or None."""
    if not (args.trace or args.metrics or args.report or args.explain
            or args.profile):
        return None
    from repro.obs import ObsConfig

    return ObsConfig(profile=bool(args.profile))


def _checkpoint_config(args):
    """Build the run's CheckpointConfig from CLI flags, or None."""
    if args.checkpoint is None:
        if args.resume:
            raise SystemExit(
                "repro run: error: --resume requires --checkpoint DIR")
        if args.kill_at is not None:
            raise SystemExit(
                "repro run: error: --kill-at requires --checkpoint DIR")
        return None
    if args.domain == "all":
        raise SystemExit(
            "repro run: error: --checkpoint needs a single --domain "
            "(a journal belongs to exactly one run)")
    if args.resume and (args.trace or args.metrics or args.report
                        or args.explain or args.profile):
        raise SystemExit(
            "repro run: error: --resume cannot be combined with "
            "--trace/--metrics/--report/--explain/--profile (replayed "
            "units issue no calls for the tracer to observe)")
    if args.kill_at is not None and args.kill_at < 0:
        raise SystemExit(
            f"repro run: error: --kill-at must be >= 0, got {args.kill_at}")
    from repro.checkpoint import CheckpointConfig

    return CheckpointConfig(
        directory=args.checkpoint, resume=args.resume, kill_at=args.kill_at)


def _supervisor_config(args):
    """Build the run's SupervisorConfig from CLI flags, or None."""
    if not args.supervise:
        for value, flag in ((args.max_restarts, "--max-restarts"),
                            (args.unit_deadline, "--unit-deadline"),
                            (args.run_deadline, "--run-deadline")):
            if value is not None:
                raise SystemExit(
                    f"repro run: error: {flag} requires --supervise")
        return None
    if args.checkpoint is None:
        raise SystemExit(
            "repro run: error: --supervise requires --checkpoint DIR "
            "(recovery resumes from the journal)")
    if args.trace or args.metrics or args.report or args.explain \
            or args.profile:
        raise SystemExit(
            "repro run: error: --supervise cannot be combined with "
            "--trace/--metrics/--report/--explain/--profile (recovery "
            "resumes from the journal, and resumed units issue no calls "
            "for the tracer to observe)")
    max_restarts = 8 if args.max_restarts is None else args.max_restarts
    if max_restarts < 0:
        raise SystemExit(
            f"repro run: error: --max-restarts must be >= 0, "
            f"got {max_restarts}")
    for value, flag in ((args.unit_deadline, "--unit-deadline"),
                        (args.run_deadline, "--run-deadline")):
        if value is not None and value <= 0:
            raise SystemExit(
                f"repro run: error: {flag} must be positive, got {value}")
    from repro.supervisor import RestartPolicy, SupervisorConfig

    return SupervisorConfig(
        restart=RestartPolicy(max_restarts=max_restarts, seed=args.seed),
        unit_deadline_seconds=args.unit_deadline,
        run_deadline_seconds=args.run_deadline,
    )


def _cmd_run(args) -> int:
    if args.workers < 1:
        raise SystemExit(
            f"repro run: error: --workers must be at least 1, "
            f"got {args.workers}")
    if args.io_latency < 0:
        raise SystemExit(
            f"repro run: error: --io-latency must be non-negative, "
            f"got {args.io_latency}")
    if args.registry is not None and args.domain == "all":
        raise SystemExit(
            "repro run: error: --registry needs a single --domain "
            "(a registry holds exactly one domain)")
    config = WebIQConfig(
        enable_surface=not (args.baseline or args.no_surface),
        enable_attr_deep=not (args.baseline or args.no_attr_deep),
        enable_attr_surface=not (args.baseline or args.no_attr_surface),
        threshold=args.threshold,
        resilience=_resilience_config(args),
        cache=_cache_config(args),
        obs=_obs_config(args),
        checkpoint=_checkpoint_config(args),
        supervisor=_supervisor_config(args),
        workers=args.workers,
        io_latency=args.io_latency,
        registry=args.registry,
    )
    from repro.util.errors import PreemptionError, SupervisionExhaustedError

    results = []
    strict_ok = True
    for domain in _domains(args):
        dataset = build_domain_dataset(domain, args.interfaces, args.seed)
        try:
            if args.supervise:
                from dataclasses import replace

                from repro.supervisor import RunSupervisor

                # The supervisor owns the kill switch: --kill-at arms
                # attempt 0 only, and recovery attempts run unarmed.
                kill_schedule = () if args.kill_at is None \
                    else (args.kill_at,)
                supervised = replace(
                    config,
                    checkpoint=replace(config.checkpoint, kill_at=None))
                result = RunSupervisor(
                    supervised, kill_schedule=kill_schedule).run(dataset)
            else:
                result = WebIQMatcher(config).run(dataset)
        except SupervisionExhaustedError as exc:
            print(f"{domain:11} {exc}", file=sys.stderr)
            print(f"journal in {args.checkpoint} is durable; inspect it "
                  f"with `repro journal inspect {args.checkpoint}`",
                  file=sys.stderr)
            return 4
        except PreemptionError as exc:
            print(f"{domain:11} {exc}", file=sys.stderr)
            print(f"journal in {args.checkpoint} is durable; continue with "
                  f"--checkpoint {args.checkpoint} --resume",
                  file=sys.stderr)
            return 3
        results.append(result)
        m = result.metrics
        line = (f"{domain:11} P={m.precision:.3f} R={m.recall:.3f} "
                f"F1={m.f1:.3f}")
        if result.acquisition is not None:
            line += (f"  surface%={result.acquisition.surface_success_rate:.1f}"
                     f" final%={result.acquisition.final_success_rate:.1f}")
        print(line)
        if result.degradation is not None:
            if args.degradation:
                print(result.degradation.summary())
            elif not result.degradation.empty:
                d = result.degradation
                print(f"  degraded: {d.total_faults} faults, "
                      f"{d.total_retries} retries "
                      f"({d.total_backoff_seconds:.1f}s backoff); "
                      f"use --degradation for details")
        if result.cache is not None:
            print(f"  {result.cache.summary()}")
        if result.exec_stats is not None and (
                result.exec_stats.workers > 1
                or result.exec_stats.sleeps_paid
                or result.exec_stats.sleeps_skipped):
            print(f"  {result.exec_stats.summary()}")
        if result.checkpoint is not None:
            print(f"  {result.checkpoint.summary()}")
        if result.supervisor is not None:
            print(f"  {result.supervisor.summary()}")
        if result.registry is not None:
            r = result.registry
            reduction = (100.0 * r.blocked / r.pairs_considered
                         if r.pairs_considered else 0.0)
            print(f"  registry: {r.n_entries} entries over {r.n_views} "
                  f"attributes; blocking skipped {r.blocked}/"
                  f"{r.pairs_considered} cross pairs "
                  f"({reduction:.1f}%) -> {r.directory}")
        if result.obs is not None:
            from repro.obs import check_run
            print(f"  {result.obs.summary()}")
            print(f"  {check_run(result).summary()}")
        if args.strict:
            from repro.obs import check_run
            audit = check_run(result)
            if result.obs is None:
                # (with obs the summary was just printed above)
                print(f"  {audit.summary()}")
            if not audit.ok:
                strict_ok = False
        if args.trace:
            import json as _json
            from repro.io import observability_to_dict
            path = args.trace if args.domain != "all" else \
                f"{args.trace}.{domain}.json"
            with open(path, "w") as handle:
                _json.dump(observability_to_dict(result.obs), handle,
                           indent=2, sort_keys=True)
            print(f"  wrote {path}")
        if args.profile:
            from repro.obs import build_profile, hottest_paths, write_profile
            profile = build_profile(result)
            path = args.profile if args.domain != "all" else \
                f"{args.profile}.{domain}.json"
            folded = write_profile(path, profile)
            hottest = hottest_paths(profile, limit=3)
            if hottest:
                top = hottest[0]
                print(f"  profile: hottest span {top['path']} "
                      f"(self {top['t_self']:.1f}s simulated over "
                      f"{top['count']} call(s)); digest "
                      f"{profile['digest']}")
            print(f"  wrote {path} and {folded}")
        if args.json:
            from repro.io import dump_run_result
            path = args.json if args.domain != "all" else \
                f"{args.json}.{domain}.json"
            dump_run_result(result, path)
            print(f"  wrote {path}")
        if args.explain:
            _print_explanations(result, args.explain)
    if args.report:
        from repro.obs import build_run_report
        report = build_run_report(results)
        with open(args.report, "w") as handle:
            handle.write(report.render())
        print(f"wrote report {args.report}")
    if not strict_ok:
        print("strict mode: invariant violations detected", file=sys.stderr)
        return 1
    return 0


def _print_explanations(result, needle: str) -> None:
    """Print every match explanation touching attributes named ``needle``."""
    provenance = result.obs.provenance if result.obs is not None else None
    if provenance is None:
        print("  (no provenance recorded — explanations unavailable)")
        return
    explanations = provenance.explanations_involving(needle)
    if not explanations:
        print(f"  no match evaluations touch {needle!r}")
        return
    print(f"  {len(explanations)} match evaluations touch {needle!r}:")
    for e in sorted(explanations, key=lambda e: (-e.sim, e.a, e.b)):
        verdict = "candidate match" if e.exceeds_threshold else "no match"
        print(f"    {e.a[0]}.{e.a[1]} ~ {e.b[0]}.{e.b[1]}: "
              f"Sim={e.sim:.4f} = {e.alpha}*LabelSim({e.label_sim:.4f}) "
              f"+ {e.beta}*DomSim({e.dom_sim:.4f}) "
              f"vs tau={e.threshold:.2f} -> {verdict}")
        if e.exceeds_threshold:
            merge = provenance.committing_merge(e.a, e.b)
            if merge is not None:
                print(f"      committed by merge step {merge.step} "
                      f"(linkage {merge.linkage_value:.4f})")


def _cmd_diff(args) -> int:
    from repro.io import load_run_result
    from repro.obs import diff_runs

    diff = diff_runs(load_run_result(args.old), load_run_result(args.new))
    print(diff.summary(), end="")
    return 1 if diff.has_regression else 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        BenchArtifactError,
        BenchWorkloadMismatch,
        diff_benches,
        load_bench,
    )

    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
        diff = diff_benches(baseline, current)
    except (BenchArtifactError, BenchWorkloadMismatch) as exc:
        print(f"bench diff: {exc}", file=sys.stderr)
        return 2
    for drift in diff.drifts:
        print(f"  {drift.describe()}")
    print(diff.summary())
    return 1 if diff.has_regression else 0


def _scripted_request(entry, position: int):
    """One script entry -> a MatchRequest (raises ValueError if bad)."""
    from repro.service import MatchRequest

    if not isinstance(entry, dict):
        raise ValueError(f"request {position}: not an object")
    known = {"tenant", "domain", "interfaces", "seed", "deadline",
             "assimilate", "cost", "threshold", "fault_rate", "fault_seed",
             "probe_budget", "query_budget", "workers"}
    unknown = set(entry) - known
    if unknown:
        raise ValueError(
            f"request {position}: unknown keys {sorted(unknown)}")
    if "domain" not in entry:
        raise ValueError(f"request {position}: missing 'domain'")
    config = _service_run_config(
        threshold=entry.get("threshold", 0.0),
        fault_rate=entry.get("fault_rate", 0.0),
        fault_seed=entry.get("fault_seed", 0),
        probe_budget=entry.get("probe_budget"),
        query_budget=entry.get("query_budget"),
        workers=entry.get("workers", 1),
    )
    return MatchRequest(
        tenant=entry.get("tenant", "anon"),
        domain=entry["domain"],
        n_interfaces=entry.get("interfaces", 4),
        seed=entry.get("seed", 7),
        config=config,
        deadline_seconds=entry.get("deadline"),
        assimilate=bool(entry.get("assimilate", False)),
        cost=float(entry.get("cost", 1.0)),
    )


def _service_run_config(*, threshold=0.0, fault_rate=0.0, fault_seed=0,
                        probe_budget=None, query_budget=None, workers=1):
    """A WebIQConfig for a service request (cache is forced on anyway)."""
    resilience = None
    if fault_rate > 0.0 or probe_budget is not None \
            or query_budget is not None:
        from repro.resilience import FaultProfile, ResilienceConfig

        resilience = ResilienceConfig(
            profile=FaultProfile(fault_rate=fault_rate, seed=fault_seed),
            surface_query_budget=query_budget,
            attr_surface_query_budget=query_budget,
            attr_deep_probe_budget=probe_budget,
        )
    return WebIQConfig(threshold=threshold, resilience=resilience,
                       workers=workers)


def _cmd_serve(args) -> int:
    import json

    from repro.service import (
        MatchingService,
        ServiceConfig,
        TenantQuota,
        check_service,
    )

    try:
        with open(args.script) as handle:
            script = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro serve: bad script: {exc}", file=sys.stderr)
        return 2
    if isinstance(script, list):
        script = {"requests": script}
    if not isinstance(script, dict) or "requests" not in script:
        print("repro serve: script must be a list of requests or an "
              "object with a 'requests' key", file=sys.stderr)
        return 2
    quotas = {}
    for tenant, raw in script.get("quotas", {}).items():
        try:
            quotas[tenant] = TenantQuota(**raw)
        except TypeError as exc:
            print(f"repro serve: bad quota for {tenant}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        requests = [
            _scripted_request(entry, position)
            for position, entry in enumerate(script["requests"])
        ]
    except ValueError as exc:
        print(f"repro serve: bad script: {exc}", file=sys.stderr)
        return 2

    service = MatchingService(
        ServiceConfig(max_queue_depth=args.queue_depth, quotas=quotas,
                      spool_dir=args.spool, registry_dir=args.registry),
        on_event=lambda event: print(
            f"  [{event.kind}] {event.request_id} tenant={event.tenant} "
            f"{event.detail}"),
    )
    service.drive(requests)
    print(f"{'request':8} {'tenant':10} {'outcome':17} {'warm':5} "
          f"{'queries':>8} {'probes':>7} {'sim-sec':>9}")
    for record in service.stats.records:
        print(f"{record['request_id']:8} {record['tenant']:10} "
              f"{record['outcome']:17} {str(record['warm']):5} "
              f"{record['queries']:8d} {record['probes']:7d} "
              f"{record['seconds']:9.2f}")
    stats = service.stats
    print(f"submitted={stats.submitted} admitted={stats.admitted} "
          f"rejected={sum(stats.rejected.values())} "
          f"completed={stats.completed} shed={stats.shed} "
          f"expired={stats.deadline_expired} crashed={stats.crashed}")
    print(f"warm runs: {stats.warm_runs} "
          f"(mean {stats.warm_mean_seconds:.2f} sim-sec)  "
          f"cold runs: {stats.cold_runs} "
          f"(mean {stats.cold_mean_seconds:.2f} sim-sec)")
    if args.export_dir is not None:
        import os

        from repro.util.atomicio import atomic_write_json

        os.makedirs(args.export_dir, exist_ok=True)
        for request_id, response in sorted(service.responses.items()):
            if response.export is not None:
                atomic_write_json(
                    os.path.join(args.export_dir, f"{request_id}.json"),
                    response.export)
    if args.stats_json is not None:
        from repro.util.atomicio import atomic_write_json

        atomic_write_json(args.stats_json, stats.to_dict())
    report = check_service(service)
    print(report.summary())
    if args.strict and not report.ok:
        return 1
    return 0


def _cmd_request(args) -> int:
    from repro.service import (
        MatchRequest,
        MatchingService,
        ServiceConfig,
        check_service,
    )
    from repro.util.errors import AdmissionRejected, ValidationError

    if args.domain == "all":
        raise SystemExit(
            "repro request: error: needs a single --domain")
    if args.workers < 1:
        raise SystemExit(
            f"repro request: error: --workers must be at least 1, "
            f"got {args.workers}")
    if not 0.0 <= args.fault_rate <= 1.0:
        raise SystemExit(
            f"repro request: error: --fault-rate must be within [0, 1], "
            f"got {args.fault_rate}")
    service = MatchingService(ServiceConfig(
        spool_dir=args.spool, registry_dir=args.registry))
    request = MatchRequest(
        tenant=args.tenant, domain=args.domain,
        n_interfaces=args.interfaces, seed=args.seed,
        config=_service_run_config(
            threshold=args.threshold, fault_rate=args.fault_rate,
            fault_seed=args.fault_seed, probe_budget=args.probe_budget,
            query_budget=args.query_budget, workers=args.workers),
        deadline_seconds=args.deadline,
        assimilate=args.registry is not None,
    )
    try:
        service.submit(request)
    except AdmissionRejected as exc:
        print(f"rejected ({exc.reason}): {exc}")
        return 5
    except ValidationError as exc:
        raise SystemExit(f"repro request: error: {exc}")
    responses = service.run_pending()
    response = responses[0]
    print(f"{response.request_id} tenant={response.tenant} "
          f"outcome={response.outcome} warm={response.warm} "
          f"queries={response.queries} probes={response.probes} "
          f"sim-seconds={response.seconds:.2f}")
    if response.outcome == "deadline_expired":
        print(f"  {response.error}")
        if response.degradation is not None:
            spent = response.degradation.get("budget_spent_by_component", {})
            print(f"  partial degradation report: "
                  f"{sum(spent.values())} round trips accounted")
    if response.outcome == "crashed":
        print(f"  {response.error}")
    if args.json is not None and response.export is not None:
        from repro.io import strip_service_section
        from repro.util.atomicio import atomic_write_json

        payload = response.export
        if args.strip_service:
            payload = strip_service_section(payload)
        atomic_write_json(args.json, payload)
        print(f"run result written to {args.json}")
    if args.strict:
        report = check_service(service)
        print(report.summary())
        if not report.ok:
            return 1
    return {"completed": 0, "deadline_expired": 3,
            "shed": 5, "crashed": 6}[response.outcome]


def _journal_spend_of(records) -> int:
    """Journaled round trips, by the checkpoint tally rule."""
    spend = 0
    for body in records:
        if body["unit"][0] == "attr_deep":
            spend += body["probes"]
        else:
            spend += body["queries"]
    return spend


def _cmd_journal(args) -> int:
    import os

    from repro.checkpoint import QUARANTINE_DIRNAME, RunJournal
    from repro.util.errors import (
        JournalCorruptionError,
        JournalFormatError,
        JournalMismatchError,
    )

    if args.journal_command == "salvage":
        try:
            report = RunJournal.salvage(args.directory)
        except (JournalCorruptionError, JournalFormatError,
                JournalMismatchError) as exc:
            print(f"cannot salvage {args.directory}: {exc}", file=sys.stderr)
            return 1
        print(report.summary())
        return 0

    try:
        journal = RunJournal.open(args.directory)
    except (JournalFormatError, JournalMismatchError) as exc:
        print(f"journal {args.directory}: {exc}", file=sys.stderr)
        return 1
    except JournalCorruptionError as exc:
        print(f"journal {args.directory} is damaged: {exc}", file=sys.stderr)
        print(f"recover the valid prefix with "
              f"`repro journal salvage {args.directory}`", file=sys.stderr)
        return 1
    print(f"journal {args.directory}: intact")
    for key in sorted(journal.meta):
        print(f"  {key}: {journal.meta[key]}")
    skipped = sum(1 for body in journal.records if body.get("skipped"))
    quarantined = sum(
        1 for body in journal.records if body.get("quarantined"))
    line = (f"  records: {len(journal.records)} "
            f"({_journal_spend_of(journal.records)} round trips journaled)")
    if skipped:
        line += f"; {skipped} skipped, {quarantined} of those quarantined"
    print(line)
    quarantine_dir = os.path.join(args.directory, QUARANTINE_DIRNAME)
    if os.path.isdir(quarantine_dir) and os.listdir(quarantine_dir):
        print(f"  quarantine/: {len(os.listdir(quarantine_dir))} damaged "
              f"record files from earlier salvages")
    return 0


def _cmd_registry(args) -> int:
    from repro.util.errors import (
        RegistryCorruptionError,
        RegistryError,
        RegistryFormatError,
    )

    try:
        return _registry_dispatch(args)
    except RegistryCorruptionError as exc:
        print(f"registry is damaged: {exc}", file=sys.stderr)
        return 1
    except RegistryFormatError as exc:
        print(f"registry: {exc}", file=sys.stderr)
        return 1
    except RegistryError as exc:
        print(f"registry: {exc}", file=sys.stderr)
        return 1


def _registry_dispatch(args) -> int:
    if args.registry_command == "show":
        return _registry_show(args)
    if args.domain == "all":
        print(f"registry {args.registry_command} needs a single --domain",
              file=sys.stderr)
        return 2
    dataset = build_domain_dataset(args.domain, args.interfaces, args.seed)

    if args.registry_command == "build":
        from repro.io import dump_induced_matching
        from repro.registry import RegistryStore, build_registry

        if not 0 <= args.hold_out < len(dataset.interfaces):
            print(f"registry build: --hold-out must be within "
                  f"[0, {len(dataset.interfaces) - 1}], got {args.hold_out}",
                  file=sys.stderr)
            return 2
        interfaces = dataset.interfaces[:len(dataset.interfaces)
                                        - args.hold_out]
        store = RegistryStore(domain=args.domain, threshold=args.threshold,
                              linkage=args.linkage)
        store, report = build_registry(
            args.domain, interfaces, store=store,
            directory=args.directory)
        _print_registry_summary(report)
        if args.induced:
            dump_induced_matching(store, args.induced)
            print(f"wrote {args.induced}")
        return 0

    if args.registry_command == "add":
        from repro.io import dump_induced_matching, load_registry
        from repro.registry import RegistryAssimilator, RegistryLock

        if not 0 <= args.index < len(dataset.interfaces):
            print(f"registry add: --index must be within "
                  f"[0, {len(dataset.interfaces) - 1}], got {args.index}",
                  file=sys.stderr)
            return 2
        # Load-assimilate-save is a read-modify-write: hold the writer
        # lock for all of it, or a concurrent add loses an update.
        with RegistryLock(args.directory, owner="cli registry add"):
            store = load_registry(args.directory)
            assimilator = RegistryAssimilator(store)
            record = assimilator.assimilate(dataset.interfaces[args.index])
            store.save(args.directory)
        considered = record.pairs_considered
        reduction = (100.0 * record.blocked / considered
                     if considered else 0.0)
        print(f"assimilated {record.interface_id}: evaluated "
              f"{record.evaluated}, blocked {record.blocked} of "
              f"{considered} cross pairs ({reduction:.1f}% skipped)")
        _print_registry_summary(assimilator.report(args.directory))
        if args.induced:
            dump_induced_matching(store, args.induced)
            print(f"wrote {args.induced}")
        return 0

    # batch: the independent oracle — straight IceQ over the id-sorted
    # interfaces, written in the same induced-matching JSON shape.
    from repro.matching.clustering import IceQMatcher
    from repro.util.atomicio import atomic_write_json

    interfaces = sorted(dataset.interfaces, key=lambda i: i.interface_id)
    result = IceQMatcher(linkage=args.linkage).match(
        interfaces, threshold=args.threshold)
    atomic_write_json(args.induced, {
        "domain": args.domain,
        "threshold": args.threshold,
        "linkage": args.linkage,
        "n_interfaces": len(interfaces),
        "clusters": [
            [list(key) for key in sorted(cluster.keys)]
            for cluster in result.clusters
        ],
    })
    print(f"batch IceQ: {len(result.clusters)} clusters from "
          f"{result.similarity_evaluations} pair evaluations; "
          f"wrote {args.induced}")
    return 0


def _print_registry_summary(report) -> None:
    considered = report.pairs_considered
    reduction = (100.0 * report.blocked / considered if considered else 0.0)
    print(f"registry: {report.n_entries} entries over {report.n_views} "
          f"attributes from {report.n_interfaces} interfaces")
    print(f"blocking: evaluated {report.evaluated}, skipped "
          f"{report.blocked} of {considered} cross pairs "
          f"({reduction:.1f}%)")
    if report.directory:
        print(f"persisted at {report.directory}")


def _registry_show(args) -> int:
    from repro.io import load_registry

    store = load_registry(args.directory)
    print(f"registry {args.directory}: intact")
    print(f"  domain: {store.domain}  threshold: {store.threshold}  "
          f"linkage: {store.linkage}")
    print(f"  interfaces: {len(store.interfaces)} "
          f"({store.n_views} attributes, arrival order "
          f"{', '.join(store.interface_ids()[:6])}"
          f"{', ...' if len(store.interfaces) > 6 else ''})")
    stats = store.stats
    reduction = 100.0 * stats.reduction
    print(f"  blocking ledger: evaluated {stats.evaluated}, skipped "
          f"{stats.blocked} of {stats.pairs_considered} cross pairs "
          f"({reduction:.1f}%) over {len(stats.adds)} assimilations")
    print(f"  entries: {len(store.entries)}")
    for entry in store.entries:
        print(f"    {entry.cluster_id} {entry.label!r}: "
              f"{len(entry.members)} attributes across {entry.coverage} "
              f"interfaces, {len(entry.instances)} unified values, "
              f"{len(entry.merges)} merges")
    return 0


def _cmd_discover(args) -> int:
    if args.domain == "all":
        print("discover needs a single --domain", file=sys.stderr)
        return 2
    dataset = build_domain_dataset(args.domain, args.interfaces, args.seed)
    discoverer = SurfaceDiscoverer(dataset.engine)
    result = discoverer.discover(
        Attribute(name="cli", label=args.label),
        dataset.spec.keyword_terms(), dataset.spec.object_name,
    )
    print(f"label: {args.label!r} (domain {args.domain})")
    print(f"raw candidates: {len(result.raw_candidates)}")
    print(f"removed (type/outlier): {len(result.outliers)}")
    print(f"numeric domain: {result.numeric_domain}")
    print(f"queries used: {result.queries_used}")
    if result.instances:
        print("instances:")
        for value in result.instances:
            print(f"  {value}")
    else:
        print("instances: (none — extraction failed or nothing validated)")
    return 0


def _cmd_export(args) -> int:
    if args.domain == "all":
        print("export needs a single --domain", file=sys.stderr)
        return 2
    from repro.io import dump_dataset
    dataset = build_domain_dataset(args.domain, args.interfaces, args.seed)
    dump_dataset(dataset, args.path)
    print(f"wrote {args.path} ({len(dataset.interfaces)} interfaces)")
    return 0


def _cmd_analyze(args) -> int:
    if args.domain == "all":
        print("analyze needs a single --domain", file=sys.stderr)
        return 2
    from repro.analysis import analyze_errors

    config = WebIQConfig(
        enable_surface=not args.baseline,
        enable_attr_deep=not args.baseline,
        enable_attr_surface=not args.baseline,
    )
    dataset = build_domain_dataset(args.domain, args.interfaces, args.seed)
    result = WebIQMatcher(config).run(dataset)
    report = analyze_errors(result.match_result, dataset)
    m = report.metrics
    print(f"{args.domain}: P={m.precision:.3f} R={m.recall:.3f} F1={m.f1:.3f}")
    print(f"missed pairs: {report.total_missed} "
          f"({report.missed_involving_no_instances} involve a no-instance "
          f"attribute); wrong pairs: {report.total_wrong}")
    if report.missed:
        print("top missed:")
        for error in report.top_missed(args.top):
            print(f"  {error}")
    if report.wrong:
        print("top wrong:")
        for error in report.top_wrong(args.top):
            print(f"  {error}")
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import ExperimentSuite, render_rows

    suite = ExperimentSuite(seed=args.seed, n_interfaces=args.interfaces)
    tables = {
        "table1": (
            ("domain", "#attr", "IntNoInst%", "AttrNoInst%", "ExpInst%"),
            suite.table1_characteristics,
        ),
        "table1-acquisition": (
            ("domain", "Surface%", "Surface+Deep%"),
            suite.table1_acquisition,
        ),
        "figure6": (
            ("domain", "baseline", "+WebIQ", "+threshold"),
            suite.figure6,
        ),
        "figure7": (
            ("domain", "baseline", "+Surface", "+Attr-Deep", "+Attr-Surface"),
            suite.figure7,
        ),
        "figure8": (
            ("domain", "matching", "Surface", "Attr-Surface", "Attr-Deep"),
            suite.figure8,
        ),
    }
    header, producer = tables[args.id]
    print(render_rows(header, producer()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
