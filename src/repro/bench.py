"""Versioned benchmark envelopes and the bench regression gate.

Every ``benchmarks/test_*_sweep.py`` historically dumped a bare metrics
dict to ``BENCH_*.json`` — no schema, no integrity guard, no environment
metadata, no tolerance declarations, and therefore nothing a CI gate
could compare. This module gives benchmark artifacts the same discipline
the journal and registry stores already have:

- an **envelope** ``{"format": N, "crc": <crc32>, "body": {...}}`` using
  the exact CRC idiom of :func:`repro.checkpoint.journal.record_crc`, so
  a torn or hand-edited artifact is detected on load;
- a **body schema**: benchmark name, a *workload fingerprint* (the knobs
  that define what was measured — domains, interface counts, seeds),
  the measured ``metrics``, per-metric **tolerance declarations**, an
  ``env`` block (python/platform), and optionally the profiler digest of
  the run that produced the numbers plus a free-form ``detail`` payload
  (per-domain tables, sweep rows);
- a **differ** :func:`diff_benches` that classifies per-metric drift
  against the declared tolerances and drives ``repro bench diff``
  (exit 1 on regression, mirroring the run ``diff`` contract; exit 2
  when the two artifacts do not describe the same workload).

Tolerance declarations live *in the baseline artifact*, next to the
numbers they guard, so refreshing a baseline re-declares its contract in
one place. Each is ``{"rel": <float>, "direction": <str>}`` where
direction is one of:

``lower_is_better``
    counts, durations, round trips — exceeding baseline by more than
    ``rel`` is a regression; undercutting it is an improvement.
``higher_is_better``
    F1, hit rates, speedups, reductions — mirrored.
``two_sided``
    determinism guards — any drift beyond ``rel`` regresses (use
    ``rel: 0.0`` for values that must be bit-equal).
``info``
    recorded, compared, reported — but never gates.

Deterministic metrics (query counts, F1, reductions) should declare
tight bands (``rel`` ≈ 0.02 or 0.0); wall-clock metrics should declare
very loose ones (``rel`` ≈ 10.0) so the gate is trustworthy on loaded CI
runners — a real substrate slowdown shows up first in the deterministic
work counters, not in noisy timings.
"""

from __future__ import annotations

import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.checkpoint.journal import record_crc
from repro.util.atomicio import atomic_write_json
from repro.util.errors import ReproError

__all__ = [
    "BENCH_FORMAT",
    "BenchArtifactError",
    "BenchWorkloadMismatch",
    "MetricDrift",
    "BenchDiff",
    "bench_environment",
    "make_envelope",
    "write_bench",
    "load_bench",
    "diff_benches",
]

#: Schema version of bench envelopes.
BENCH_FORMAT = 1

#: Tolerance applied to metrics with no declaration anywhere.
DEFAULT_TOLERANCE = {"rel": 0.02, "direction": "two_sided"}

_DIRECTIONS = ("lower_is_better", "higher_is_better", "two_sided", "info")


class BenchArtifactError(ReproError):
    """A bench artifact is unreadable, torn, or from a newer schema."""


class BenchWorkloadMismatch(ReproError):
    """Two artifacts do not describe the same benchmark workload."""


def bench_environment() -> Dict[str, Any]:
    """The environment block stamped into every envelope (info only)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def make_envelope(
    name: str,
    workload: Mapping[str, Any],
    metrics: Mapping[str, Any],
    tolerances: Mapping[str, Mapping[str, Any]],
    *,
    profile_digest: Optional[int] = None,
    detail: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a sealed bench envelope.

    ``workload`` is the fingerprint of *what* was measured; two artifacts
    are only comparable when their fingerprints are equal. ``metrics``
    are the gated numbers; anything structured or merely descriptive
    belongs in ``detail``. Every tolerance must name a metric that exists
    and a known direction — a typo in a tolerance key would otherwise
    silently un-gate the metric it meant to guard.
    """
    for metric, spec in tolerances.items():
        if metric not in metrics:
            raise ValueError(f"tolerance declared for unknown metric {metric!r}")
        direction = spec.get("direction")
        if direction not in _DIRECTIONS:
            raise ValueError(
                f"metric {metric!r}: unknown direction {direction!r} "
                f"(expected one of {_DIRECTIONS})"
            )
    body: Dict[str, Any] = {
        "bench": name,
        "workload": dict(workload),
        "metrics": dict(metrics),
        "tolerances": {k: dict(v) for k, v in tolerances.items()},
        "env": bench_environment(),
    }
    if profile_digest is not None:
        body["profile_digest"] = profile_digest
    if detail is not None:
        body["detail"] = dict(detail)
    return {"format": BENCH_FORMAT, "crc": record_crc(body), "body": body}


def write_bench(path: str, envelope: Mapping[str, Any]) -> None:
    """Atomically persist an envelope (sorted keys, stable bytes)."""
    atomic_write_json(path, dict(envelope))


def load_bench(path: str) -> Dict[str, Any]:
    """Load and verify an envelope; refuse torn or newer-schema files."""
    import json

    try:
        with open(path, "r") as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchArtifactError(f"{path}: unreadable bench artifact: {exc}")
    if not isinstance(raw, dict) or "body" not in raw:
        raise BenchArtifactError(
            f"{path}: not a bench envelope (missing 'body'); "
            "re-run the benchmark to produce a versioned artifact"
        )
    fmt = raw.get("format")
    if not isinstance(fmt, int) or fmt > BENCH_FORMAT:
        raise BenchArtifactError(
            f"{path}: bench format {fmt!r} is newer than supported "
            f"({BENCH_FORMAT}); upgrade before comparing"
        )
    if raw.get("crc") != record_crc(raw["body"]):
        raise BenchArtifactError(f"{path}: CRC mismatch — artifact is torn or edited")
    return raw


@dataclass(frozen=True)
class MetricDrift:
    """One metric's classified movement between baseline and current."""

    metric: str
    baseline: Any
    current: Any
    #: Signed relative drift ``(current - baseline) / |baseline|`` for
    #: numeric pairs; ``None`` for non-numeric or missing values.
    rel_drift: Optional[float]
    #: ``regression`` | ``improvement`` | ``stable`` | ``info`` |
    #: ``missing`` | ``new``
    status: str
    direction: str
    tolerance_rel: float

    def describe(self) -> str:
        if self.status == "missing":
            return f"{self.metric}: missing from current artifact"
        if self.status == "new":
            return f"{self.metric}: new metric (no baseline) = {self.current!r}"
        if self.rel_drift is None:
            return (
                f"{self.metric}: {self.baseline!r} -> {self.current!r} "
                f"[{self.status}]"
            )
        return (
            f"{self.metric}: {self.baseline} -> {self.current} "
            f"({self.rel_drift:+.1%}, tol ±{self.tolerance_rel:.0%} "
            f"{self.direction}) [{self.status}]"
        )


@dataclass
class BenchDiff:
    """The classified comparison of two bench artifacts."""

    bench: str
    workload: Dict[str, Any]
    drifts: List[MetricDrift] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDrift]:
        return [d for d in self.drifts if d.status in ("regression", "missing")]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for drift in self.drifts:
            counts[drift.status] = counts.get(drift.status, 0) + 1
        parts = ", ".join(f"{counts[s]} {s}" for s in sorted(counts))
        verdict = "REGRESSION" if self.has_regression else "ok"
        return f"bench {self.bench}: {verdict} ({parts})"


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _classify(
    metric: str,
    baseline: Any,
    current: Any,
    spec: Mapping[str, Any],
) -> MetricDrift:
    direction = spec.get("direction", DEFAULT_TOLERANCE["direction"])
    rel = float(spec.get("rel", DEFAULT_TOLERANCE["rel"]))

    if not (_is_number(baseline) and _is_number(current)):
        # Non-numeric metrics gate on equality (unless merely info).
        if direction == "info":
            status = "info"
        elif baseline == current:
            status = "stable"
        else:
            status = "regression"
        return MetricDrift(metric, baseline, current, None, status, direction, rel)

    if baseline == 0:
        drift = 0.0 if current == 0 else float("inf") * (1 if current > 0 else -1)
    else:
        drift = (current - baseline) / abs(baseline)

    if direction == "info":
        status = "info"
    elif direction == "lower_is_better":
        if drift > rel:
            status = "regression"
        elif drift < -rel:
            status = "improvement"
        else:
            status = "stable"
    elif direction == "higher_is_better":
        if drift < -rel:
            status = "regression"
        elif drift > rel:
            status = "improvement"
        else:
            status = "stable"
    else:  # two_sided
        status = "regression" if abs(drift) > rel else "stable"
    return MetricDrift(metric, baseline, current, drift, status, direction, rel)


def diff_benches(
    baseline: Mapping[str, Any], current: Mapping[str, Any]
) -> BenchDiff:
    """Classify every baseline metric's drift in ``current``.

    Tolerances come from the baseline's declarations (falling back to the
    current artifact's, then to :data:`DEFAULT_TOLERANCE`): the committed
    baseline *is* the contract, so editing tolerances in a working copy
    cannot loosen the gate. Raises :class:`BenchWorkloadMismatch` when
    the artifacts measured different things — comparing a 20-interface
    sweep against a 5-interface one is never a drift, it is a mistake.
    """
    base_body = baseline["body"]
    cur_body = current["body"]
    if base_body.get("bench") != cur_body.get("bench"):
        raise BenchWorkloadMismatch(
            f"bench name mismatch: baseline {base_body.get('bench')!r} "
            f"vs current {cur_body.get('bench')!r}"
        )
    if base_body.get("workload") != cur_body.get("workload"):
        raise BenchWorkloadMismatch(
            f"workload fingerprint mismatch for bench "
            f"{base_body.get('bench')!r}: baseline {base_body.get('workload')!r} "
            f"vs current {cur_body.get('workload')!r}"
        )

    base_metrics: Dict[str, Any] = base_body.get("metrics", {})
    cur_metrics: Dict[str, Any] = cur_body.get("metrics", {})
    base_tol: Dict[str, Any] = base_body.get("tolerances", {})
    cur_tol: Dict[str, Any] = cur_body.get("tolerances", {})

    diff = BenchDiff(bench=base_body.get("bench", "?"),
                     workload=dict(base_body.get("workload", {})))
    for metric in sorted(base_metrics):
        spec = base_tol.get(metric) or cur_tol.get(metric) or DEFAULT_TOLERANCE
        rel = float(spec.get("rel", DEFAULT_TOLERANCE["rel"]))
        direction = spec.get("direction", DEFAULT_TOLERANCE["direction"])
        if metric not in cur_metrics:
            diff.drifts.append(
                MetricDrift(metric, base_metrics[metric], None, None,
                            "missing", direction, rel)
            )
            continue
        diff.drifts.append(
            _classify(metric, base_metrics[metric], cur_metrics[metric], spec)
        )
    for metric in sorted(cur_metrics):
        if metric in base_metrics:
            continue
        spec = cur_tol.get(metric) or DEFAULT_TOLERANCE
        diff.drifts.append(
            MetricDrift(metric, None, cur_metrics[metric], None, "new",
                        spec.get("direction", "info"),
                        float(spec.get("rel", DEFAULT_TOLERANCE["rel"])))
        )
    return diff
