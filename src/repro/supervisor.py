"""Self-healing run supervision: crash-domain isolation over the journal.

PR 5 made a single run crash-safe; this module makes *recovery*
automatic. A :class:`RunSupervisor` executes the pipeline inside a
supervised loop — every attempt is one crash domain — and drives the
state machine documented in DESIGN.md §13::

    RUNNING --crash/preempt/deadline--> CRASHED --[journal torn]--> SALVAGE
       ^                                   |                           |
       |                                   v                           |
       +------------- RESUME <------ (backoff) <-----------------------+
       |                |
       |                +--[unit crashed N times]--> QUARANTINE
       |                                                 |
       +-------------------------------------------------+
    RUNNING --all units done--> DONE

Failure classification, per attempt:

- :class:`~repro.util.errors.DeadlineExceededError` — a wall-clock budget
  fired *after* the offending unit's record reached disk. Treated exactly
  like a preemption: journal durable, resume eligible.
- :class:`~repro.util.errors.PreemptionError` — process death at a
  journal boundary (the kill switch, or a real SIGKILL stand-in).
- :class:`~repro.util.errors.JournalCorruptionError` while *opening* the
  journal — the previous death tore a record (or bit-rot set in during
  the downtime). :meth:`RunJournal.salvage` truncates to the longest
  valid prefix and the loop retries; resume re-runs the trimmed units.
- any other ``Exception`` — an arbitrary crash inside a unit. The
  acquirer stamps escaping exceptions with the open unit's key
  (``exc.webiq_unit``), so the supervisor can count crashes *per unit*:
  a unit that kills the run ``poison_threshold`` times consecutively is
  quarantined — skipped (and journaled as skipped) on every later
  attempt — and the run completes gracefully instead of crash-looping,
  reporting the poisoned unit with its full exception chain and restart
  indices.

Configuration errors are *not* retried: a journal belonging to a
different run (:class:`~repro.util.errors.JournalMismatchError`), a
newer-format journal (:class:`~repro.util.errors.JournalFormatError`) or
a resume/observability conflict (:class:`~repro.util.errors.ResumeError`)
will fail identically on every attempt, so they propagate immediately.

Determinism: restart backoff is drawn from
``derive_rng(seed, "supervisor", "backoff")`` — the same seeded-stream
discipline as every other RNG in the library — and is *recorded*, never
charged to the run's :class:`~repro.util.clock.SimulatedClock`. Given the
same failure schedule, a supervised run is bit-identical end to end; and
under *any* kill/corruption schedule, its export is byte-identical to an
uninterrupted run's, minus only the units it explicitly quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.checkpoint.journal import (
    RunJournal,
    SalvageReport,
    _scan_valid_prefix,
)
from repro.util.errors import (
    DeadlineExceededError,
    InjectedCrashError,
    JournalCorruptionError,
    JournalFormatError,
    JournalMismatchError,
    PreemptionError,
    ResumeError,
    SupervisionExhaustedError,
)
from repro.util.rng import derive_rng

__all__ = [
    "FAILURE_CRASH",
    "FAILURE_CORRUPTION",
    "FAILURE_DEADLINE",
    "FAILURE_PREEMPTION",
    "AttemptRecord",
    "QuarantinedUnit",
    "RestartPolicy",
    "RunSupervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "UnitFaultInjector",
]

UnitKey = Tuple[str, str, str]

#: Attempt outcomes (:attr:`AttemptRecord.outcome`); ``"completed"`` is
#: the fifth.
FAILURE_PREEMPTION = "preemption"
FAILURE_DEADLINE = "deadline"
FAILURE_CORRUPTION = "corruption"
FAILURE_CRASH = "crash"
COMPLETED = "completed"


@dataclass(frozen=True)
class RestartPolicy:
    """How many deaths the supervisor absorbs, and how long it waits.

    The backoff before restart ``index`` (0-based) is
    ``base_delay * multiplier**index``, clamped to ``max_delay``, scaled
    by a jitter factor uniform in ``[1-jitter, 1+jitter]`` — the same
    shape as :class:`repro.resilience.RetryPolicy`, but drawn from its
    own seeded stream (``derive_rng(seed, "supervisor", "backoff")``) so
    supervision never perturbs the run's RNG positions.
    """

    #: restarts allowed after the first attempt (so ``max_restarts + 1``
    #: attempts total)
    max_restarts: int = 8
    #: consecutive crashes attributed to one unit before it is quarantined
    poison_threshold: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.25
    #: seed of the backoff jitter stream
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")

    def delay(self, restart_index: int, rng) -> float:
        seconds = self.base_delay * (self.multiplier ** restart_index)
        seconds = min(seconds, self.max_delay)
        if self.jitter:
            seconds *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return seconds


class UnitFaultInjector:
    """Deterministic unit-level saboteur for chaos tests.

    ``crashes`` maps a unit key to how many times entering that unit
    raises :class:`~repro.util.errors.InjectedCrashError` (``-1`` means
    every time, forever — the shape of a genuinely poisoned unit). The
    injector is mutable shared state across attempts on purpose: "crash
    twice, then heal" is exactly the transient-fault shape the
    supervisor's quarantine threshold must distinguish from poison.
    """

    def __init__(
        self,
        crashes: Dict[UnitKey, int],
        error_factory: Optional[Callable[[UnitKey], Exception]] = None,
    ) -> None:
        self.crashes = {tuple(unit): count for unit, count in crashes.items()}
        self._error_factory = error_factory

    def check(self, unit_key: UnitKey) -> None:
        """Crash the unit if its schedule says so (called by the unit
        bracket, inside the crash domain)."""
        remaining = self.crashes.get(tuple(unit_key), 0)
        if remaining == 0:
            return
        if remaining > 0:
            self.crashes[tuple(unit_key)] = remaining - 1
        if self._error_factory is not None:
            raise self._error_factory(tuple(unit_key))
        raise InjectedCrashError(
            f"injected crash in unit {list(unit_key)}"
        )


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs (attach to ``WebIQConfig.supervisor``).

    Like ``kill_at``, none of this enters the journal meta: the
    supervisor legitimately varies the quarantine set between attempts
    of one run, and deadlines/saboteurs are injected hostility, not run
    identity.
    """

    restart: RestartPolicy = field(default_factory=RestartPolicy)
    #: per-unit simulated-seconds budget; a unit exceeding it preempts
    #: the run (journal durable, resume eligible)
    unit_deadline_seconds: Optional[float] = None
    #: per-attempt simulated-seconds budget over *fresh* work (replayed
    #: units spent their seconds in an earlier attempt)
    run_deadline_seconds: Optional[float] = None
    #: units the acquirer must skip (journaled as quarantined, zero cost)
    quarantine: Tuple[UnitKey, ...] = ()
    #: chaos saboteur fired at unit entry (tests only)
    unit_faults: Optional[UnitFaultInjector] = None

    def __post_init__(self) -> None:
        if (self.unit_deadline_seconds is not None
                and self.unit_deadline_seconds <= 0):
            raise ValueError("unit_deadline_seconds must be positive")
        if (self.run_deadline_seconds is not None
                and self.run_deadline_seconds <= 0):
            raise ValueError("run_deadline_seconds must be positive")
        object.__setattr__(
            self, "quarantine",
            tuple(tuple(unit) for unit in self.quarantine),
        )


@dataclass(frozen=True)
class QuarantinedUnit:
    """One poisoned unit, with the provenance to debug it."""

    unit: UnitKey
    #: consecutive crashes attributed to the unit before quarantine
    crashes: int
    #: 0-based attempt indices at which the unit crashed the run
    restart_indices: Tuple[int, ...]
    #: ``"Type: message"`` lines of the final crash's exception chain
    #: (outermost first)
    error_chain: Tuple[str, ...]


@dataclass
class AttemptRecord:
    """One crash domain: what it did, how it died (or didn't)."""

    index: int
    #: ``"completed"`` or one of the ``FAILURE_*`` kinds
    outcome: str
    #: the crashing unit, when the failure could be attributed to one
    unit: Optional[UnitKey] = None
    #: ``"Type: message"`` of the failure, when there was one
    error: Optional[str] = None
    #: round trips this attempt really sent (raw substrate counters)
    round_trips: int = 0
    #: the subset of ``round_trips`` that reached the journal durably
    committed_round_trips: int = 0
    #: journal spend already durable when the attempt started — the round
    #: trips resume restored that a cold restart would have re-paid
    restored_round_trips: int = 0
    #: seeded backoff recorded before the *next* attempt (0 for the last)
    backoff_seconds: float = 0.0
    #: present when this attempt's journal needed salvage before resume
    salvage: Optional[SalvageReport] = None


@dataclass
class SupervisorReport:
    """What supervision did for one run (in-memory + exported)."""

    attempts: List[AttemptRecord] = field(default_factory=list)
    quarantined_units: List[QuarantinedUnit] = field(default_factory=list)
    #: round trips paid by failed attempts but never journaled (lost to
    #: the unit in flight when the attempt died)
    wasted_round_trips: int = 0
    #: journaled round trips lost again when salvage trimmed torn records
    salvage_trimmed_round_trips: int = 0
    #: total seeded backoff the supervisor waited (never charged to the
    #: run's simulated clock — supervision downtime is not run overhead)
    backoff_seconds: float = 0.0
    completed: bool = False

    @property
    def restarts(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def total_round_trips(self) -> int:
        """Raw spend across every attempt — the conservation law's left side."""
        return sum(a.round_trips for a in self.attempts)

    @property
    def salvages(self) -> int:
        return sum(1 for a in self.attempts if a.salvage is not None)

    @property
    def salvaged_records(self) -> int:
        return sum(
            a.salvage.quarantined_records
            for a in self.attempts if a.salvage is not None
        )

    def summary(self) -> str:
        """One CLI-ready line, mirroring the checkpoint summary's tone."""
        line = (
            f"supervisor: {len(self.attempts)} attempts "
            f"({self.restarts} restarts), "
            f"{self.wasted_round_trips} round trips lost to crashes"
        )
        if self.salvages:
            line += (
                f", {self.salvages} salvages "
                f"({self.salvage_trimmed_round_trips} round trips trimmed)"
            )
        if self.quarantined_units:
            line += f", {len(self.quarantined_units)} units quarantined"
        return line


def _error_chain(exc: BaseException) -> Tuple[str, ...]:
    """``"Type: message"`` lines for ``exc`` and its causes, outermost first."""
    chain: List[str] = []
    seen: set = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return tuple(chain)


class RunSupervisor:
    """Executes a pipeline run to completion across crash domains.

    ``kill_schedule`` arms the checkpoint kill switch per attempt (entry
    ``i`` preempts attempt ``i`` at that journal boundary; missing
    entries arm nothing) and ``chaos`` is called between attempts
    (``chaos(attempt_index, journal_directory)``) — together they let
    tests and the chaos CI job inject any deterministic kill/corruption
    schedule. Production use passes neither.

    Restart attempts reuse the run config verbatim, including
    ``workers`` / ``io_latency``: the journal is executor-agnostic (the
    parallel executor commits units in the same canonical order the
    serial one does), so a crashed parallel attempt may be resumed
    parallel, serial, or at any other worker count without affecting a
    byte of the result.
    """

    def __init__(
        self,
        config: Any,
        kill_schedule: Tuple[Optional[int], ...] = (),
        chaos: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        if config.checkpoint is None:
            raise ResumeError(
                "supervision requires a checkpoint journal — attach a "
                "CheckpointConfig to the run config"
            )
        if config.obs is not None:
            raise ResumeError(
                "cannot supervise under observability: recovery resumes "
                "from the journal, and resumed units issue no calls for "
                "the tracer to observe — rerun with obs=None"
            )
        self.config = config
        self.kill_schedule = tuple(kill_schedule)
        self.chaos = chaos

    # ------------------------------------------------------------------ run
    def run(self, dataset: Any) -> Any:
        """Run to completion (or exhaustion); returns the final attempt's
        :class:`~repro.core.pipeline.WebIQRunResult` with
        ``result.supervisor`` attached."""
        # Imported here, not at module top: the pipeline imports this
        # module for the config/report types, so the reverse import must
        # wait until call time.
        from repro.core.pipeline import WebIQMatcher

        base_supervisor = self.config.supervisor or SupervisorConfig()
        policy = base_supervisor.restart
        rng = derive_rng(policy.seed, "supervisor", "backoff")
        directory = self.config.checkpoint.directory

        report = SupervisorReport()
        # unit -> crash bookkeeping feeding the quarantine decision
        crash_counts: Dict[UnitKey, int] = {}
        crash_indices: Dict[UnitKey, List[int]] = {}
        crash_errors: Dict[UnitKey, Tuple[str, ...]] = {}
        quarantine: Dict[UnitKey, QuarantinedUnit] = {
            unit: QuarantinedUnit(
                unit=unit, crashes=0, restart_indices=(), error_chain=()
            )
            for unit in base_supervisor.quarantine
        }

        resume = self.config.checkpoint.resume
        journal_spend = self._journal_spend(directory) if resume else 0
        attempt_index = 0
        while True:
            attempt = AttemptRecord(
                index=attempt_index, outcome=COMPLETED,
                restored_round_trips=journal_spend,
            )
            kill_at = None
            if attempt_index < len(self.kill_schedule):
                kill_at = self.kill_schedule[attempt_index]
            attempt_config = replace(
                self.config,
                checkpoint=replace(
                    self.config.checkpoint, resume=resume, kill_at=kill_at,
                ),
                supervisor=replace(
                    base_supervisor,
                    quarantine=tuple(sorted(quarantine)),
                ),
            )

            failure: Optional[Tuple[str, Optional[UnitKey], Exception]] = None
            result = None
            try:
                result = WebIQMatcher(attempt_config).run(dataset)
            except (JournalFormatError, JournalMismatchError, ResumeError):
                # Configuration errors fail identically on every attempt:
                # restarting cannot cure them, so don't burn the budget.
                raise
            except JournalCorruptionError as exc:
                failure = (FAILURE_CORRUPTION, None, exc)
            except DeadlineExceededError as exc:
                failure = (FAILURE_DEADLINE, None, exc)
            except PreemptionError as exc:
                failure = (FAILURE_PREEMPTION, None, exc)
            except Exception as exc:  # the crash domain: anything else
                failure = (
                    FAILURE_CRASH, getattr(exc, "webiq_unit", None), exc
                )

            # ---- account the attempt's spend against the journal.
            # The pipeline resets the dataset's raw counters at attempt
            # start, so they measure exactly this attempt's wire traffic.
            attempt.round_trips = self._raw_round_trips(dataset)
            if failure is None or failure[0] != FAILURE_CORRUPTION:
                spend_now = self._journal_spend(directory)
                attempt.committed_round_trips = spend_now - journal_spend
                journal_spend = spend_now
                report.wasted_round_trips += (
                    attempt.round_trips - attempt.committed_round_trips
                )

            if failure is None:
                report.attempts.append(attempt)
                report.completed = True
                report.quarantined_units = [
                    quarantine[unit] for unit in sorted(quarantine)
                ]
                assert result is not None
                result.supervisor = report
                if result.degradation is not None:
                    result.degradation.quarantined_units.extend(
                        report.quarantined_units
                    )
                return result

            kind, unit, exc = failure
            attempt.outcome = kind
            attempt.unit = unit
            attempt.error = f"{type(exc).__name__}: {exc}"

            if kind == FAILURE_CORRUPTION:
                # The journal would not open: trim it to the longest
                # valid prefix, then account the spend the trim lost.
                salvage = RunJournal.salvage(directory)
                attempt.salvage = salvage
                spend_now = self._journal_spend(directory)
                report.salvage_trimmed_round_trips += (
                    journal_spend - spend_now
                )
                journal_spend = spend_now

            if kind == FAILURE_CRASH and unit is not None:
                unit = tuple(unit)
                crash_counts[unit] = crash_counts.get(unit, 0) + 1
                crash_indices.setdefault(unit, []).append(attempt_index)
                crash_errors[unit] = _error_chain(exc)
                if crash_counts[unit] >= policy.poison_threshold \
                        and unit not in quarantine:
                    quarantine[unit] = QuarantinedUnit(
                        unit=unit,
                        crashes=crash_counts[unit],
                        restart_indices=tuple(crash_indices[unit]),
                        error_chain=crash_errors[unit],
                    )

            if attempt_index >= policy.max_restarts:
                report.attempts.append(attempt)
                raise SupervisionExhaustedError(
                    f"run still failing after {attempt_index + 1} attempts "
                    f"({policy.max_restarts} restarts allowed); last "
                    f"failure: {attempt.error}"
                ) from exc

            attempt.backoff_seconds = policy.delay(attempt_index, rng)
            report.backoff_seconds += attempt.backoff_seconds
            report.attempts.append(attempt)

            if self.chaos is not None:
                # Downtime: bit-rot, torn writes — whatever the chaos
                # schedule wants to do to the journal before resume.
                # Re-measure at once: any spend the damage removed from
                # the valid prefix is trimmed *now*, keeping the books
                # telescoped even when the damage (say, a deleted tail
                # record) would not make the next open raise.
                self.chaos(attempt_index, directory)
                spend_after_chaos = self._journal_spend(directory)
                report.salvage_trimmed_round_trips += (
                    journal_spend - spend_after_chaos
                )
                journal_spend = spend_after_chaos

            resume = True
            attempt_index += 1

    # ------------------------------------------------------------ internals
    @staticmethod
    def _raw_round_trips(dataset: Any) -> int:
        return dataset.engine.query_count + sum(
            source.probe_count for source in dataset.sources.values()
        )

    @staticmethod
    def _journal_spend(directory: str) -> int:
        """Round trips durably journaled, by the checkpoint tally rule
        (probe spend for Attr-Deep units, query spend otherwise).

        Counts the journal's *valid prefix*: records past the first
        damaged one never count — they are exactly what salvage will
        trim, so the supervisor's books never include spend it cannot
        prove was journaled.
        """
        try:
            bodies, _, _ = _scan_valid_prefix(directory)
        except JournalMismatchError:
            return 0
        spend = 0
        for body in bodies:
            if body["unit"][0] == "attr_deep":
                spend += body["probes"]
            else:
                spend += body["queries"]
        return spend
