"""JSON import/export for interfaces, ground truth and run results.

A reproduction is only useful if its artifacts can leave the process:
these helpers serialise generated interface sets (so a dataset can be
inspected, diffed, or versioned), ground-truth clusters, acquisition
reports and matching metrics. Everything round-trips losslessly except the
corpus and sources, which are regenerated from the seed (recorded in the
dataset payload) rather than stored.

Run payloads carry a schema version (:data:`RUN_RESULT_FORMAT`, under the
``"format"`` key). Format 2 added ``"format"``, ``"seed"`` and
``"provenance"``; format 3 added ``"checkpoint"``; format 4 added
``"supervisor"``; format 5 added ``"service"`` (the matching service's
per-request coordinates — request id, tenant, epoch lineage). The writer
emits the *lowest* format that can represent the run — a run without
checkpointing still dumps as format 2, byte-identical to what earlier
revisions wrote, and a checkpointed but unsupervised run still dumps as
format 3; only a run executed by the service dumps as format 5.
:func:`strip_service_section` removes the service section again (and
recomputes the lowest format), which is how the service-equivalence
oracle byte-compares a service response against the same run executed
standalone. :func:`load_run_result`
upgrades older payloads in place (the new keys default to absent values)
and rejects formats newer than it knows, so old archives stay readable
and future ones fail loudly instead of silently misreading. A payload
that does not parse at all raises a typed
:class:`~repro.util.errors.ExportCorruptionError` naming the path and
byte offset of the damage. All dumps use ``sort_keys=True`` — byte
equality between two dumps then means payload equality — and every dump
is written atomically (:mod:`repro.util.atomicio`): a crash mid-dump
leaves the previous file intact, never a torn half-payload.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: Schema version written into run-result payloads (highest known).
RUN_RESULT_FORMAT = 5

from repro.checkpoint.journal import JOURNAL_FORMAT
from repro.checkpoint.session import CheckpointReport
from repro.core.acquisition import AcquisitionReport
from repro.core.pipeline import WebIQRunResult
from repro.datasets.dataset import DomainDataset
from repro.datasets.interfaces import GroundTruth
from repro.deepweb.models import Attribute, AttributeKind, QueryInterface
from repro.obs.instrument import Observability
from repro.perf.cache import CacheStats
from repro.resilience.client import DegradationReport
from repro.supervisor import SupervisorReport
from repro.util.atomicio import atomic_write_json
from repro.util.errors import ExportCorruptionError

__all__ = [
    "RUN_RESULT_FORMAT",
    "interface_to_dict",
    "interface_from_dict",
    "dataset_to_dict",
    "ground_truth_to_dict",
    "ground_truth_from_dict",
    "acquisition_report_to_dict",
    "degradation_report_to_dict",
    "cache_stats_to_dict",
    "checkpoint_report_to_dict",
    "supervisor_report_to_dict",
    "observability_to_dict",
    "run_result_to_dict",
    "strip_service_section",
    "dump_dataset",
    "dump_run_result",
    "load_run_result",
    "registry_to_dict",
    "dump_registry",
    "load_registry",
    "induced_matching_to_dict",
    "dump_induced_matching",
]


def interface_to_dict(interface: QueryInterface) -> Dict[str, Any]:
    """One interface, including any WebIQ-acquired instances."""
    return {
        "interface_id": interface.interface_id,
        "domain": interface.domain,
        "object_name": interface.object_name,
        "attributes": [
            {
                "name": a.name,
                "label": a.label,
                "kind": a.kind.value,
                "instances": list(a.instances),
                "acquired": list(a.acquired),
            }
            for a in interface.attributes
        ],
    }


def interface_from_dict(payload: Dict[str, Any]) -> QueryInterface:
    """Inverse of :func:`interface_to_dict`."""
    attributes = []
    for item in payload["attributes"]:
        attribute = Attribute(
            name=item["name"],
            label=item["label"],
            kind=AttributeKind(item["kind"]),
            instances=tuple(item["instances"]),
        )
        attribute.acquired.extend(item.get("acquired", ()))
        attributes.append(attribute)
    return QueryInterface(
        interface_id=payload["interface_id"],
        domain=payload["domain"],
        object_name=payload["object_name"],
        attributes=attributes,
    )


def ground_truth_to_dict(truth: GroundTruth) -> Dict[str, Any]:
    return {
        "clusters": {
            concept: sorted([list(member) for member in members])
            for concept, members in truth.clusters.items()
        }
    }


def ground_truth_from_dict(payload: Dict[str, Any]) -> GroundTruth:
    truth = GroundTruth()
    for concept, members in payload["clusters"].items():
        for interface_id, attribute in members:
            truth.add(concept, interface_id, attribute)
    return truth


def dataset_to_dict(dataset: DomainDataset) -> Dict[str, Any]:
    """Snapshot a dataset: interfaces, ground truth, and regeneration info.

    The corpus and sources are deterministic functions of
    ``(domain, n_interfaces, seed)`` and are not stored; the seed in the
    payload regenerates them bit-identically.
    """
    return {
        "domain": dataset.domain,
        "seed": dataset.seed,
        "n_interfaces": len(dataset.interfaces),
        "n_documents": dataset.engine.n_documents,
        "interfaces": [interface_to_dict(i) for i in dataset.interfaces],
        "ground_truth": ground_truth_to_dict(dataset.ground_truth),
    }


def acquisition_report_to_dict(report: AcquisitionReport) -> Dict[str, Any]:
    return {
        "k": report.k,
        "surface_queries": report.surface_queries,
        "attr_surface_queries": report.attr_surface_queries,
        "attr_deep_probes": report.attr_deep_probes,
        "surface_success_rate": report.surface_success_rate,
        "final_success_rate": report.final_success_rate,
        "records": [
            {
                "interface_id": r.interface_id,
                "attribute": r.attribute,
                "label": r.label,
                "had_instances": r.had_instances,
                "n_after_surface": r.n_after_surface,
                "n_after_borrow": r.n_after_borrow,
                "surface_attempted": r.surface_attempted,
                "borrow_deep_attempted": r.borrow_deep_attempted,
                "borrow_surface_attempted": r.borrow_surface_attempted,
            }
            for r in report.records
        ],
    }


def degradation_report_to_dict(report: DegradationReport) -> Dict[str, Any]:
    """The resilience layer's account of faults survived and work given up."""
    return {
        "degraded": report.degraded,
        "faults_by_kind": dict(report.faults_by_kind),
        "faults_by_component": dict(report.faults_by_component),
        "retries_by_component": dict(report.retries_by_component),
        "backoff_seconds_by_component": dict(
            report.backoff_seconds_by_component
        ),
        "giveups_by_component": dict(report.giveups_by_component),
        "breaker_trips": dict(report.breaker_trips),
        "breaker_rejections": dict(report.breaker_rejections),
        "budgets_exhausted": list(report.budgets_exhausted),
        "attributes_skipped": [list(pair) for pair in report.attributes_skipped],
        "budget_spent_by_component": dict(report.budget_spent_by_component),
    }


def cache_stats_to_dict(stats: CacheStats) -> Dict[str, Any]:
    """The query cache's account of round trips saved."""
    return {
        "max_entries": stats.max_entries,
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": stats.hit_rate,
        "evictions": stats.evictions,
        "stores": stats.stores,
        "uncacheable": stats.uncacheable,
        "hits_by_kind": dict(stats.hits_by_kind),
        "misses_by_kind": dict(stats.misses_by_kind),
    }


def checkpoint_report_to_dict(report: CheckpointReport) -> Dict[str, Any]:
    """The resume-invariant core of a checkpoint report.

    Only what is identical between an uninterrupted run and a
    kill-and-resume of it may be exported: the replay/fresh split (and
    the journal directory) necessarily differ, and exporting them would
    break the byte-identity guarantee the whole subsystem exists for.
    They stay in-memory diagnostics (``result.checkpoint.summary()``).
    """
    return {
        "journal_format": JOURNAL_FORMAT,
        "boundaries": report.boundaries,
    }


def supervisor_report_to_dict(report: SupervisorReport) -> Dict[str, Any]:
    """What supervision did: attempts, quarantine provenance, spend ledger.

    Unlike the checkpoint section, this *is* the full failure history —
    the supervisor section is the one part of a supervised export that
    legitimately differs from the uninterrupted reference run, and the
    byte-identity oracle strips it before comparing.
    """
    return {
        "completed": report.completed,
        "restarts": report.restarts,
        "attempts": [
            {
                "index": a.index,
                "outcome": a.outcome,
                "unit": list(a.unit) if a.unit is not None else None,
                "error": a.error,
                "round_trips": a.round_trips,
                "committed_round_trips": a.committed_round_trips,
                "restored_round_trips": a.restored_round_trips,
                "backoff_seconds": a.backoff_seconds,
                "salvage": (
                    {
                        "kept_records": a.salvage.kept_records,
                        "quarantined_records": [
                            {"filename": q.filename, "reason": q.reason}
                            for q in a.salvage.quarantined
                        ],
                    }
                    if a.salvage is not None
                    else None
                ),
            }
            for a in report.attempts
        ],
        "quarantined_units": [
            {
                "unit": list(q.unit),
                "crashes": q.crashes,
                "restart_indices": list(q.restart_indices),
                "error_chain": list(q.error_chain),
            }
            for q in report.quarantined_units
        ],
        "wasted_round_trips": report.wasted_round_trips,
        "salvage_trimmed_round_trips": report.salvage_trimmed_round_trips,
        "backoff_seconds": report.backoff_seconds,
    }


def observability_to_dict(obs: Observability) -> Dict[str, Any]:
    """The run's trace and metrics, ready for byte-stable JSON.

    Both halves export deterministically (logical sequence numbers,
    simulated-clock timestamps, sorted metric rows), so serialising with
    ``sort_keys=True`` makes byte equality across runs meaningful.
    """
    return {
        "trace": obs.tracer.export(),
        "metrics": obs.metrics.export(),
    }


def run_result_to_dict(result: WebIQRunResult) -> Dict[str, Any]:
    """A full pipeline run: config, metrics, clusters, overhead.

    The execution layer is deliberately absent: ``config.workers``,
    ``config.io_latency`` and ``result.exec_stats`` are scheduling
    facts, not run identity. Excluding them is what lets the parallel
    executor promise byte-identical exports at any worker count — an
    export can't differ on them if it never mentions them. They stay
    in-memory diagnostics (``result.exec_stats.summary()``).
    """
    provenance = (
        result.obs.provenance if result.obs is not None else None
    )
    # The lowest representable format: a run without checkpointing dumps
    # as format 2, a checkpointed but unsupervised run as format 3 —
    # byte-identical to what earlier revisions wrote.
    version = 2
    if result.checkpoint is not None:
        version = 3
    if result.supervisor is not None:
        version = 4
    if result.service is not None:
        version = RUN_RESULT_FORMAT
    payload = {
        "format": version,
        "domain": result.domain,
        "seed": result.seed,
        "config": {
            "enable_surface": result.config.enable_surface,
            "enable_attr_deep": result.config.enable_attr_deep,
            "enable_attr_surface": result.config.enable_attr_surface,
            "threshold": result.config.threshold,
            "linkage": result.config.linkage,
        },
        "metrics": {
            "precision": result.metrics.precision,
            "recall": result.metrics.recall,
            "f1": result.metrics.f1,
            "n_predicted": result.metrics.n_predicted,
            "n_truth": result.metrics.n_truth,
            "n_correct": result.metrics.n_correct,
        },
        "clusters": [
            sorted([list(m.key) for m in cluster.members])
            for cluster in result.match_result.clusters
        ],
        "overhead_seconds": dict(result.stopwatch.seconds_by_account),
        "overhead_queries": dict(result.stopwatch.queries_by_account),
        "acquisition": (
            acquisition_report_to_dict(result.acquisition)
            if result.acquisition is not None
            else None
        ),
        "degradation": (
            degradation_report_to_dict(result.degradation)
            if result.degradation is not None
            else None
        ),
        "cache": (
            cache_stats_to_dict(result.cache)
            if result.cache is not None
            else None
        ),
        "observability": (
            observability_to_dict(result.obs)
            if result.obs is not None
            else None
        ),
        "provenance": (
            provenance.to_dict() if provenance is not None else None
        ),
    }
    if result.checkpoint is not None:
        payload["checkpoint"] = checkpoint_report_to_dict(result.checkpoint)
    if result.supervisor is not None:
        payload["supervisor"] = supervisor_report_to_dict(result.supervisor)
    if result.service is not None:
        # Duck-typed on purpose: the service section is produced by
        # repro.service (which imports this module), so io cannot import
        # the concrete type without a cycle.
        payload["service"] = result.service.to_export_dict()
    return payload


def strip_service_section(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``payload`` with the format-5 service section removed.

    The service-equivalence oracle promises that an admitted request's
    export is byte-identical to the same run executed standalone — *except*
    for the service section itself, which records coordinates (request id,
    tenant, epoch lineage) that a standalone run cannot have. This helper
    removes the section and recomputes the lowest representable format, so
    the result compares byte-for-byte against a standalone export.
    """
    stripped = dict(payload)
    stripped.pop("service", None)
    version = 2
    if stripped.get("checkpoint") is not None:
        version = 3
    if stripped.get("supervisor") is not None:
        version = 4
    stripped["format"] = version
    return stripped


def dump_dataset(dataset: DomainDataset, path: str) -> None:
    """Write a dataset snapshot as JSON to ``path`` (atomically)."""
    atomic_write_json(path, dataset_to_dict(dataset))


def dump_run_result(result: WebIQRunResult, path: str) -> None:
    """Write a pipeline run as JSON to ``path`` (atomically)."""
    atomic_write_json(path, run_result_to_dict(result))


def registry_to_dict(store: "RegistryStore") -> Dict[str, Any]:
    """The registry's archival body (the envelope's ``"body"`` section)."""
    return store.to_body()


def dump_registry(store: "RegistryStore", directory: str) -> str:
    """Persist a registry store to ``directory`` (atomic, CRC-guarded,
    format-versioned — see :mod:`repro.registry.store`); returns the
    path written."""
    return store.save(directory)


def load_registry(directory: str) -> "RegistryStore":
    """Load and verify a registry store persisted by :func:`dump_registry`.

    Raises the typed :class:`~repro.util.errors.RegistryError` family on
    damage: :class:`~repro.util.errors.RegistryCorruptionError` naming the
    damaged entry, :class:`~repro.util.errors.RegistryFormatError` for a
    newer schema, :class:`~repro.util.errors.RegistryMismatchError` for a
    missing store."""
    from repro.registry.store import RegistryStore

    return RegistryStore.load(directory)


def induced_matching_to_dict(store: "RegistryStore") -> Dict[str, Any]:
    """The registry's induced matching in the run export's cluster shape.

    Identical bytes to what batch IceQ over the same (id-sorted)
    interfaces exports — the equality CI's registry smoke ``cmp``-checks.
    """
    from repro.registry.assimilate import induced_clusters

    clusters, _ = induced_clusters(store)
    return {
        "domain": store.domain,
        "threshold": store.threshold,
        "linkage": store.linkage,
        "n_interfaces": len(store.interfaces),
        "clusters": [
            [list(key) for key in cluster] for cluster in clusters
        ],
    }


def dump_induced_matching(store: "RegistryStore", path: str) -> None:
    """Write the induced matching as JSON to ``path`` (atomically)."""
    atomic_write_json(path, induced_matching_to_dict(store))


def load_run_result(path: str) -> Dict[str, Any]:
    """Read back a :func:`dump_run_result` payload (as plain dicts).

    The corpus-backed objects are not reconstructed — the payload is the
    archival form; tests use it to assert the dump was lossless for the
    accounting layers (degradation, cache, trace, metrics, provenance).

    Format-1 payloads (written before the schema carried a version) are
    upgraded in place: ``"format"`` becomes 1 and the format-2 keys
    (``"seed"``, ``"provenance"``) default to ``None``, as do the
    format-3 ``"checkpoint"``, format-4 ``"supervisor"`` and format-5
    ``"service"`` sections for
    older payloads. Payloads newer than :data:`RUN_RESULT_FORMAT` raise
    ``ValueError`` rather than being silently misread; a file that does
    not parse as JSON at all (truncated export, bit-rot) raises
    :class:`~repro.util.errors.ExportCorruptionError` naming the path
    and byte offset of the damage."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ExportCorruptionError(
                f"run export {path} is corrupt at byte {exc.pos}: "
                f"{exc.msg}",
                path=path, offset=exc.pos,
            ) from exc
    version = payload.setdefault("format", 1)
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"unrecognised run-result format: {version!r}")
    if version > RUN_RESULT_FORMAT:
        raise ValueError(
            f"run-result format {version} is newer than this reader "
            f"(knows up to {RUN_RESULT_FORMAT})"
        )
    payload.setdefault("seed", None)
    payload.setdefault("provenance", None)
    payload.setdefault("checkpoint", None)
    payload.setdefault("supervisor", None)
    payload.setdefault("service", None)
    return payload
