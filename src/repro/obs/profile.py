"""The deterministic span profiler: where a run's time and work went.

The tracer records *what happened in which order*; this module folds that
tree into *attribution*: for every span path (``run;surface``, ``run;
attr_deep``, ...) the number of calls plus **self** and **cumulative**
simulated seconds, rolled up per phase and per component, joined with the
hot-path work counters (:mod:`repro.util.counters`) and the stopwatch's
per-account ledger. The result is the answer ROADMAP item 5 asks for —
"profile the inner loops" — in a form a CI gate can diff.

The profile has two strictly separated sections:

``deterministic``
    Everything derived from the :class:`~repro.util.clock.SimulatedClock`,
    the trace structure, the work counters and the metrics registry. Two
    runs with equal seed and configuration produce byte-identical
    deterministic sections; its CRC (``digest``) is therefore a run
    fingerprint a bench envelope can embed.
``wall``
    Host wall-clock attribution per span path (from the span's
    ``perf_counter`` bounds, which never enter the trace export) plus the
    exec layer's worker-utilization and prefetch-ledger rollups. Advisory
    by nature: it varies machine to machine and run to run, which is
    exactly why it lives outside the digest — see DESIGN.md §16.

:func:`collapsed_stacks` renders the deterministic section as
Brendan-Gregg collapsed-stack lines (``run;surface 123456`` — self time
in integer simulated microseconds), directly consumable by
``flamegraph.pl`` or speedscope.

Profiling is strictly read-only: enabling it changes no export byte (the
metamorphic suite proves this), and the *profile-time-conservation* law
in :mod:`repro.obs.invariants` audits that the attribution itself is
sound — every span closed, self times non-negative, and children never
claiming more time than their parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.checkpoint.journal import record_crc
from repro.obs.instrument import LAYER_ENTRY, LAYER_TRANSPORT
from repro.obs.trace import Span, Tracer
from repro.util.atomicio import atomic_write_json, atomic_write_text

__all__ = [
    "PROFILE_FORMAT",
    "PathStats",
    "aggregate_spans",
    "span_time_violations",
    "build_profile",
    "collapsed_stacks",
    "write_profile",
    "hottest_paths",
]

#: Schema version of profile exports.
PROFILE_FORMAT = 1

#: Self-time sums may differ from the parent's cumulative time by float
#: accumulation error only; anything beyond this is a real leak.
TIME_EPSILON = 1e-9


@dataclass
class PathStats:
    """Aggregated timing of every span sharing one root-to-node path."""

    path: str
    count: int = 0
    #: simulated seconds including children
    t_cum: float = 0.0
    #: simulated seconds excluding children
    t_self: float = 0.0
    #: host wall seconds including children (advisory)
    wall_cum: float = 0.0
    #: host wall seconds excluding children (advisory)
    wall_self: float = 0.0
    events: int = 0


def _walk(span: Span, prefix: str, table: Dict[str, PathStats]) -> None:
    path = f"{prefix};{span.name}" if prefix else span.name
    stats = table.get(path)
    if stats is None:
        stats = table[path] = PathStats(path)
    if span.t_end is None or span.seq_end is None:
        raise ValueError(f"unclosed span {path!r}: profile a finished run")
    t_cum = span.t_end - span.t_start
    wall_cum = (span.wall_end or span.wall_start) - span.wall_start
    child_t = 0.0
    child_wall = 0.0
    for child in span.children:
        if child.t_end is None:
            raise ValueError(
                f"unclosed span {path};{child.name!r}: profile a finished run"
            )
        child_t += child.t_end - child.t_start
        child_wall += (child.wall_end or child.wall_start) - child.wall_start
        _walk(child, path, table)
    stats.count += 1
    stats.t_cum += t_cum
    stats.t_self += t_cum - child_t
    stats.wall_cum += wall_cum
    stats.wall_self += wall_cum - child_wall
    stats.events += len(span.events)


def aggregate_spans(tracer: Tracer) -> Dict[str, PathStats]:
    """Fold the span tree into per-path self/cumulative attribution.

    Paths are ``;``-joined span names from the root down — the collapsed
    stack identity. Self time is cumulative time minus the children's
    cumulative time; summed over the whole table, self times reproduce
    the roots' cumulative time exactly (the conservation law).
    """
    table: Dict[str, PathStats] = {}
    for root in tracer.roots:
        _walk(root, "", table)
    return table


def span_time_violations(tracer: Tracer) -> List[str]:
    """The profile-time-conservation audit, as violation strings.

    Checks (all in simulated seconds, to :data:`TIME_EPSILON`):

    - every span is closed and spans non-negative time;
    - no span's children cumulatively exceed it (self time ≥ 0);
    - total self time equals the roots' total cumulative time.

    Shared by :func:`build_profile` callers and the
    :class:`~repro.obs.invariants.InvariantChecker` law so the CLI and
    the test oracle can never disagree.
    """
    violations: List[str] = []
    for span in tracer.iter_spans():
        if not span.closed or span.t_end is None:
            violations.append(
                f"profile-time-conservation: span {span.name!r} never closed"
            )
    if violations:
        return violations
    try:
        table = aggregate_spans(tracer)
    except ValueError as exc:  # pragma: no cover - guarded above
        return [f"profile-time-conservation: {exc}"]
    for stats in table.values():
        if stats.t_cum < -TIME_EPSILON:
            violations.append(
                f"profile-time-conservation: span path {stats.path!r} "
                f"spans negative simulated time ({stats.t_cum})"
            )
        if stats.t_self < -TIME_EPSILON:
            violations.append(
                f"profile-time-conservation: span path {stats.path!r} "
                f"children claim more time than the parent "
                f"(self {stats.t_self})"
            )
    total_self = sum(stats.t_self for stats in table.values())
    total_roots = sum(
        (root.t_end or 0.0) - root.t_start for root in tracer.roots
    )
    if abs(total_self - total_roots) > max(
        TIME_EPSILON, TIME_EPSILON * abs(total_roots)
    ):
        violations.append(
            f"profile-time-conservation: self times sum to {total_self} "
            f"but root spans cover {total_roots}"
        )
    return violations


def _phase_rollup(tracer: Tracer) -> Dict[str, Dict[str, Any]]:
    """Per-phase-name count and self/cumulative simulated seconds.

    Aggregates every span carrying ``kind="phase"`` by name, whatever its
    depth — two phases sharing a name sum, they do not overwrite.
    """
    phases: Dict[str, Dict[str, Any]] = {}
    for span in tracer.iter_spans():
        if span.attrs.get("kind") != "phase" or span.t_end is None:
            continue
        t_cum = span.t_end - span.t_start
        child_t = sum(
            (child.t_end or child.t_start) - child.t_start
            for child in span.children
        )
        row = phases.setdefault(
            span.name, {"count": 0, "t_self": 0.0, "t_cum": 0.0}
        )
        row["count"] += 1
        row["t_self"] += t_cum - child_t
        row["t_cum"] += t_cum
    return {name: phases[name] for name in sorted(phases)}


def _component_rollup(metrics) -> Dict[str, Dict[str, int]]:
    """Per-component entry/transport call and round-trip totals."""
    components: Dict[str, Dict[str, int]] = {}
    for labels in metrics.counter_labels("web.calls"):
        component = labels.get("component", "?")
        if component not in components:
            components[component] = {
                "entry_calls": metrics.sum_counters(
                    "web.calls", layer=LAYER_ENTRY, component=component
                ),
                "transport_calls": metrics.sum_counters(
                    "web.calls", layer=LAYER_TRANSPORT, component=component
                ),
                "round_trips": metrics.sum_counters(
                    "web.round_trips", layer=LAYER_TRANSPORT,
                    component=component,
                ),
            }
    return {name: components[name] for name in sorted(components)}


def build_profile(result) -> Dict[str, Any]:
    """Build the full profile dict for a finished ``WebIQRunResult``.

    Requires the run to have executed with observability attached
    (``result.obs``); work counters appear when the run profiled
    (``ObsConfig(profile=True)``), an empty dict otherwise, so the
    deterministic digest distinguishes the two explicitly.
    """
    obs = result.obs
    if obs is None:
        raise ValueError(
            "cannot profile a run without observability: pass "
            "WebIQConfig(obs=ObsConfig(profile=True))"
        )
    table = aggregate_spans(obs.tracer)
    ordered = [table[path] for path in sorted(table)]
    deterministic: Dict[str, Any] = {
        "domain": result.domain,
        "seed": result.seed,
        "spans": [
            {
                "path": stats.path,
                "count": stats.count,
                "t_self": stats.t_self,
                "t_cum": stats.t_cum,
                "events": stats.events,
            }
            for stats in ordered
        ],
        "phases": _phase_rollup(obs.tracer),
        "components": _component_rollup(obs.metrics),
        "counters": (
            obs.counters.as_dict() if obs.counters is not None else {}
        ),
        "clock": {
            "seconds_by_account": dict(
                sorted(result.stopwatch.seconds_by_account.items())
            ),
            "queries_by_account": dict(
                sorted(result.stopwatch.queries_by_account.items())
            ),
            "total_seconds": result.stopwatch.total_seconds,
        },
    }
    digest = record_crc(deterministic)

    wall: Dict[str, Any] = {
        "spans": [
            {
                "path": stats.path,
                "wall_self": stats.wall_self,
                "wall_cum": stats.wall_cum,
            }
            for stats in ordered
        ],
    }
    exec_stats = getattr(result, "exec_stats", None)
    if exec_stats is not None:
        speculated = exec_stats.units_speculated
        total = exec_stats.units_total
        wall["exec"] = {
            "workers": exec_stats.workers,
            "units_total": total,
            "units_speculated": speculated,
            "speculation_failures": exec_stats.speculation_failures,
            "worker_utilization": (speculated / total) if total else 0.0,
            "prefetch": {
                "credits_recorded": exec_stats.credits_recorded,
                "credits_consumed": exec_stats.credits_consumed,
                "sleeps_paid": exec_stats.sleeps_paid,
                "sleeps_skipped": exec_stats.sleeps_skipped,
                "seconds_paid": exec_stats.seconds_paid,
            },
        }

    return {
        "format": PROFILE_FORMAT,
        "digest": digest,
        "deterministic": deterministic,
        "wall": wall,
    }


def collapsed_stacks(profile: Dict[str, Any]) -> str:
    """Render the deterministic section as collapsed-stack lines.

    One line per span path: ``run;surface 123456`` where the value is the
    path's *self* time in integer simulated microseconds — the exact
    input format of ``flamegraph.pl``. Deterministic: same run, same
    bytes.
    """
    lines = []
    for row in profile["deterministic"]["spans"]:
        micros = int(round(max(row["t_self"], 0.0) * 1_000_000))
        lines.append(f"{row['path']} {micros}")
    return "\n".join(lines) + "\n"


def write_profile(path: str, profile: Dict[str, Any]) -> str:
    """Persist the profile JSON plus ``<path>.folded`` collapsed stacks.

    Returns the folded-file path. Both writes are atomic and sorted, so
    artifacts are byte-stable for equal runs.
    """
    atomic_write_json(path, profile)
    folded = path + ".folded"
    atomic_write_text(folded, collapsed_stacks(profile))
    return folded


def hottest_paths(
    profile: Dict[str, Any], limit: int = 5
) -> List[Dict[str, Any]]:
    """The ``limit`` span paths with the largest deterministic self time
    (ties break on path for stable output)."""
    rows = sorted(
        profile["deterministic"]["spans"],
        key=lambda row: (-row["t_self"], row["path"]),
    )
    return rows[:limit]
