"""Observability plumbing: the per-run bundle and the observed wrappers.

:class:`Observability` carries one run's :class:`~repro.obs.trace.Tracer`
and :class:`~repro.obs.metrics.MetricsRegistry` plus the *component scope*
(which pipeline phase is currently executing), so instrumentation anywhere
in the stack can attribute what it sees without threading extra arguments
through every call.

:class:`ObservedSearchEngine` and :class:`ObservedDeepWebSource` are
transparent pass-through layers inserted at two depths of the Web stack::

    ObservedSearchEngine(layer="entry")      # what components ask for
      CachingSearchEngine                    # may answer from memory
        ObservedSearchEngine(layer="transport")   # what escapes the cache
          ResilientSearchEngine -> FlakySearchEngine -> SearchEngine

The entry layer counts every call a component issues; the transport layer
counts the calls that actually head for the (possibly flaky) Web and, by
differencing the substrate's ``query_count``/``probe_count`` around each
call, how many *real round trips* the call cost (retries included). Those
two independent tallies are what give the
:class:`~repro.obs.invariants.InvariantChecker` its conservation laws:
entry calls must equal cache hits + misses, transport calls must equal
cache misses, transport round trips must equal the stopwatch's per-account
query counts and the resilience budgets' spend.

The wrappers are strictly read-only observers: they consume no randomness,
swallow no exceptions, and forward every attribute they do not define
(``last_degraded``, breaker handles, ...) to the wrapped layer, so cached
and resilient behaviour is bit-identical with or without them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import (
    DEFAULT_PROVENANCE_CAPACITY,
    ProvenanceRecorder,
)
from repro.obs.trace import Tracer
from repro.util.counters import WorkCounters

__all__ = [
    "ObsConfig",
    "Observability",
    "ObservedSearchEngine",
    "ObservedDeepWebSource",
    "LAYER_ENTRY",
    "LAYER_TRANSPORT",
]

#: Layer label of the wrapper components talk to (above any cache).
LAYER_ENTRY = "entry"
#: Layer label of the wrapper directly above the resilient proxy /
#: raw substrate (below any cache): everything here goes to the "Web".
LAYER_TRANSPORT = "transport"

#: Component label outside any phase scope.
DEFAULT_COMPONENT = "web"


@dataclass(frozen=True)
class ObsConfig:
    """Pipeline-facing observability knobs (attach to ``WebIQConfig.obs``).

    ``trace_calls`` controls the per-call trace events (the bulkiest part
    of a trace); metrics counters and phase spans are always recorded.
    ``provenance`` turns the decision-provenance recorder on (default) or
    off; ``provenance_capacity`` bounds each of its ring buffers so an
    arbitrarily large run cannot exhaust memory. ``profile`` additionally
    collects hot-path work counters (:mod:`repro.util.counters`) for the
    span profiler (:mod:`repro.obs.profile`); it is strictly read-only —
    run exports are bit-identical with it on or off.
    """

    trace_calls: bool = True
    provenance: bool = True
    provenance_capacity: int = DEFAULT_PROVENANCE_CAPACITY
    profile: bool = False


class Observability:
    """One run's tracer + metrics registry + provenance + component scope."""

    def __init__(
        self,
        config: ObsConfig = ObsConfig(),
        clock_seconds=None,
    ) -> None:
        self.config = config
        self.tracer = Tracer(clock_seconds)
        self.metrics = MetricsRegistry()
        self.provenance: Optional[ProvenanceRecorder] = (
            ProvenanceRecorder(config.provenance_capacity)
            if config.provenance else None
        )
        #: Hot-path work counters, collected only when profiling: the
        #: pipeline installs these via ``repro.util.counters.collecting``
        #: around the profiled region.
        self.counters: Optional[WorkCounters] = (
            WorkCounters() if config.profile else None
        )
        self._components: List[str] = []

    # ------------------------------------------------------------- scoping
    @contextmanager
    def component(self, name: str) -> Iterator[None]:
        """Attribute observed calls inside the block to component ``name``."""
        self._components.append(name)
        try:
            yield
        finally:
            self._components.pop()

    @property
    def active_component(self) -> str:
        return self._components[-1] if self._components else DEFAULT_COMPONENT

    @contextmanager
    def phase(self, name: str, **attrs: Any) -> Iterator[None]:
        """A pipeline phase: a trace span plus a component scope."""
        with self.tracer.span(name, kind="phase", **attrs):
            with self.component(name):
                yield

    # ------------------------------------------------------------ recording
    def record_call(
        self,
        layer: str,
        substrate: str,
        method: str,
        round_trips: int,
        **attrs: Any,
    ) -> None:
        """One observed Web-stack call: a counter bump and (optionally) a
        trace event, attributed to the active component."""
        component = self.active_component
        self.metrics.counter(
            "web.calls", layer=layer, substrate=substrate, component=component
        ).inc()
        self.metrics.counter(
            "web.round_trips",
            layer=layer,
            substrate=substrate,
            component=component,
        ).inc(round_trips)
        if self.config.trace_calls:
            self.tracer.event(
                "web_call",
                layer=layer,
                substrate=substrate,
                method=method,
                component=component,
                round_trips=round_trips,
                **attrs,
            )

    def summary(self) -> str:
        """One CLI-ready line for the run's trace + metrics volume."""
        line = (
            f"observability: {self.tracer.n_spans} spans, "
            f"{self.tracer.n_events} events; {self.metrics.summary()}"
        )
        if self.provenance is not None:
            line += f"; {self.provenance.summary()}"
        return line


class ObservedSearchEngine:
    """Engine-shaped pass-through that reports every call to ``obs``.

    ``layer`` labels where in the stack this wrapper sits (see module
    docs). Round trips are measured by differencing the underlying
    ``query_count`` around the call, so a cache hit below reports 0 and a
    retried call reports every attempt.
    """

    def __init__(self, inner, obs: Observability, layer: str) -> None:
        self.inner = inner
        self.obs = obs
        self.layer = layer

    # ------------------------------------------------------- engine facade
    @property
    def query_count(self) -> int:
        return self.inner.query_count

    def reset_query_count(self) -> None:
        self.inner.reset_query_count()

    @property
    def n_documents(self) -> int:
        return self.inner.n_documents

    def search(self, query: str, max_results: int = 10):
        return self._observe(
            "search", lambda: self.inner.search(query, max_results)
        )

    def num_hits(self, query: str) -> int:
        return self._observe("num_hits", lambda: self.inner.num_hits(query))

    def num_hits_proximity(self, phrase_a: str, phrase_b: str,
                           window: Optional[int] = None):
        if window is None:
            return self._observe(
                "num_hits_proximity",
                lambda: self.inner.num_hits_proximity(phrase_a, phrase_b),
            )
        return self._observe(
            "num_hits_proximity",
            lambda: self.inner.num_hits_proximity(phrase_a, phrase_b, window),
        )

    def __getattr__(self, name: str):
        # Forward everything else (``last_degraded``, ...) untouched so the
        # wrapper is invisible to the layers above and below.
        return getattr(self.inner, name)

    # ----------------------------------------------------------- internals
    def _observe(self, method: str, fn):
        before = self.inner.query_count
        result = fn()
        self.obs.record_call(
            layer=self.layer,
            substrate="engine",
            method=method,
            round_trips=self.inner.query_count - before,
        )
        return result


class ObservedDeepWebSource:
    """Source-shaped pass-through reporting every probe to ``obs``."""

    def __init__(self, inner, obs: Observability,
                 layer: str = LAYER_TRANSPORT) -> None:
        self.inner = inner
        self.obs = obs
        self.layer = layer

    # ------------------------------------------------------- source facade
    @property
    def interface(self):
        return self.inner.interface

    @property
    def interface_id(self) -> str:
        return self.inner.interface.interface_id

    @property
    def probe_count(self) -> int:
        return self.inner.probe_count

    @probe_count.setter
    def probe_count(self, value: int) -> None:
        self.inner.probe_count = value

    def recognizes(self, attribute_name: str, value: str) -> bool:
        return self.inner.recognizes(attribute_name, value)

    def submit(self, values: Mapping[str, str]):
        before = self.inner.probe_count
        result = self.inner.submit(values)
        self.obs.record_call(
            layer=self.layer,
            substrate="source",
            method="submit",
            round_trips=self.inner.probe_count - before,
            source=self.interface_id,
        )
        return result

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
