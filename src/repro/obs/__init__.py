"""Run-trace observability: tracer, metrics, and the invariant oracle.

``repro.obs`` watches a pipeline run from inside the Web stack and turns
what it sees into three artifacts:

- a deterministic **trace** (:class:`~repro.obs.trace.Tracer`) — phase
  spans and per-call events timestamped from the run's simulated clock;
- a **metrics registry** (:class:`~repro.obs.metrics.MetricsRegistry`) —
  labelled counters/gauges/histograms over calls, round trips, retries
  and cache outcomes;
- an **invariant report**
  (:class:`~repro.obs.invariants.InvariantChecker`) — cross-layer
  conservation laws relating the trace and metrics to the stopwatch,
  degradation and cache accounting, making every run a correctness test
  of the whole stack;
- a **decision provenance** record
  (:class:`~repro.obs.provenance.ProvenanceRecorder`) — the full lineage
  of every acquired instance and an explanation of every match decision,
  digestible into a :class:`~repro.obs.report.RunReport` and diffable
  across runs with :func:`~repro.obs.report.diff_runs`;
- a **span profile** (:mod:`repro.obs.profile`) — self/cumulative time
  attribution per span path plus hot-path work counters, split into a
  deterministic digestible section and an advisory wall-clock section,
  exportable as collapsed stacks for flamegraph tooling. Enable the work
  counters with ``ObsConfig(profile=True)``.

Attach an :class:`ObsConfig` to ``WebIQConfig.obs`` to enable; the
default (``None``) leaves the pipeline bit-identical to an uninstrumented
run.
"""

from repro.obs.instrument import (
    LAYER_ENTRY,
    LAYER_TRANSPORT,
    Observability,
    ObsConfig,
    ObservedDeepWebSource,
    ObservedSearchEngine,
)
from repro.obs.invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
    check_run,
)
from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    PROFILE_FORMAT,
    PathStats,
    aggregate_spans,
    build_profile,
    collapsed_stacks,
    hottest_paths,
    span_time_violations,
    write_profile,
)
from repro.obs.provenance import (
    DEFAULT_PROVENANCE_CAPACITY,
    DiscoverySummary,
    InstanceLineage,
    MatchExplanation,
    MergeStep,
    ProbeVerdict,
    ProvenanceRecorder,
    PruneEvent,
    ThresholdSearchRecord,
    ValidationEvidence,
)
from repro.obs.report import (
    NO_PROVENANCE_DIVERGENCE,
    DomainReport,
    Drift,
    HardDecision,
    RunDiff,
    RunReport,
    build_run_report,
    diff_runs,
)
from repro.obs.trace import Span, TraceEvent, Tracer

__all__ = [
    "ObsConfig",
    "Observability",
    "ObservedSearchEngine",
    "ObservedDeepWebSource",
    "LAYER_ENTRY",
    "LAYER_TRANSPORT",
    "Tracer",
    "Span",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_SAMPLE_CAP",
    "PROFILE_FORMAT",
    "PathStats",
    "aggregate_spans",
    "build_profile",
    "collapsed_stacks",
    "hottest_paths",
    "span_time_violations",
    "write_profile",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "check_run",
    "DEFAULT_PROVENANCE_CAPACITY",
    "ProvenanceRecorder",
    "InstanceLineage",
    "PruneEvent",
    "DiscoverySummary",
    "MatchExplanation",
    "MergeStep",
    "ProbeVerdict",
    "ThresholdSearchRecord",
    "ValidationEvidence",
    "RunReport",
    "DomainReport",
    "HardDecision",
    "build_run_report",
    "RunDiff",
    "Drift",
    "diff_runs",
    "NO_PROVENANCE_DIVERGENCE",
]
