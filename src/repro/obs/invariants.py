"""Cross-layer conservation laws over a finished pipeline run.

The pipeline now has four accounting systems that observe the same
underlying traffic from different layers:

- the :class:`~repro.util.clock.SimulatedClock` stopwatch (per-account
  seconds *and* round-trip counts, charged per phase);
- the resilience layer's :class:`~repro.resilience.DegradationReport`
  (faults, retries, give-ups, breaker trips, budget spend);
- the perf layer's :class:`~repro.perf.CacheStats` (hits, misses, stores);
- the :mod:`repro.obs` trace/metrics (per-call counts at the cache entry
  and at the transport layer, with measured round-trip deltas).

None of them is derived from another: the stopwatch differences substrate
counters per phase, the degradation report counts retry-loop decisions,
the cache counts lookups, and the observed wrappers count individual
calls. When the stack is wired correctly they must agree exactly — every
call entering the cache is a hit or a miss, every miss reaches the
transport, every transport round trip is charged to the stopwatch and to
the component's budget, every raised fault ends in a retry, a give-up or a
breaker trip. :class:`InvariantChecker` asserts those identities, turning
any benchmark or test run into a whole-stack correctness check: a single
missed or double-counted call anywhere breaks a conservation law.

Checks degrade gracefully with the run's configuration: each law is only
evaluated when the layers it relates were active, and the report lists
which checks ran so a suite can assert it exercised what it meant to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.obs.instrument import (
    DEFAULT_COMPONENT,
    LAYER_ENTRY,
    LAYER_TRANSPORT,
    Observability,
)
from repro.obs.provenance import PRUNE_STAGES, ProvenanceRecorder

__all__ = ["InvariantViolation", "InvariantReport", "InvariantChecker", "check_run"]

#: The pipeline components with their own budgets and stopwatch accounts.
COMPONENTS = ("surface", "attr_surface", "attr_deep")

#: Fault kind whose injection does not raise (and so never enters the
#: retry loop): the payload is corrupted but the call "succeeds".
_SILENT_FAULT_KIND = "garbled"


@dataclass(frozen=True)
class InvariantViolation:
    """One broken conservation law."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.message}"


@dataclass
class InvariantReport:
    """Which laws were evaluated and which were broken."""

    checked: List[str] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violations_for(self, invariant: str) -> List[InvariantViolation]:
        return [v for v in self.violations if v.invariant == invariant]

    def summary(self) -> str:
        status = "all hold" if self.ok else f"{len(self.violations)} VIOLATED"
        line = f"invariants: {len(self.checked)} checked, {status}"
        for violation in self.violations:
            line += f"\n  !! {violation}"
        return line


class InvariantChecker:
    """Audits a :class:`~repro.core.pipeline.WebIQRunResult`.

    Violation messages carry a ``[domain=... seed=...]`` prefix naming
    the run that broke the law, so a failure inside a multi-domain,
    multi-seed sweep is attributable without re-running the sweep.
    """

    def __init__(self) -> None:
        self._context = ""

    def check(self, result) -> InvariantReport:
        """Evaluate every applicable conservation law on ``result``."""
        report = InvariantReport()
        obs: Optional[Observability] = getattr(result, "obs", None)
        cache = result.cache
        degradation = result.degradation
        trace_calls = obs is not None and obs.config.trace_calls
        domain = getattr(result, "domain", None) or "?"
        seed = getattr(result, "seed", None)
        self._context = (
            f"[domain={domain} seed={'?' if seed is None else seed}] "
        )

        if obs is not None:
            self._check_trace_well_formed(report, obs)
            self._check_phase_spans(report, obs, result)
            self._check_profile_time_conservation(report, obs)
        if cache is not None:
            self._check_cache_store_accounting(report, cache)
        if obs is not None:
            self._check_cache_layer_conservation(report, obs, cache)
        if obs is not None and result.acquisition is not None:
            self._check_round_trip_conservation(report, obs, result)
        if result.acquisition is not None:
            self._check_stopwatch_accounting(report, result)
        if degradation is not None:
            self._check_fault_fate_conservation(report, degradation)
            self._check_budget_conservation(report, result, obs)
        if obs is not None and degradation is not None:
            self._check_retry_conservation(report, obs, degradation,
                                           trace_calls)
        if trace_calls:
            self._check_trace_metrics_consistency(report, obs)
        provenance = obs.provenance if obs is not None else None
        if provenance is not None:
            self._check_lineage_conservation(report, provenance, result)
            self._check_prune_conservation(report, provenance)
            self._check_match_conservation(report, provenance, result)
        checkpoint = getattr(result, "checkpoint", None)
        if checkpoint is not None and result.acquisition is not None:
            self._check_checkpoint_spend_conservation(report, checkpoint,
                                                      result)
            self._check_checkpoint_replay_isolation(report, checkpoint)
        supervisor = getattr(result, "supervisor", None)
        if supervisor is not None and checkpoint is not None:
            self._check_restart_spend_conservation(report, supervisor,
                                                   checkpoint)
            if result.acquisition is not None:
                self._check_quarantine_accounting(report, supervisor,
                                                  checkpoint, result)
        registry = getattr(result, "registry", None)
        if registry is not None:
            self._check_registry_blocking_conservation(report, registry)
            self._check_registry_batch_equivalence(report, registry, result)
        return report

    # ------------------------------------------------------------ the laws
    def _check_trace_well_formed(self, report: InvariantReport,
                                 obs: Observability) -> None:
        name = "trace-well-formed"
        report.checked.append(name)
        if not obs.tracer.all_closed:
            open_spans = [s.name for s in obs.tracer.iter_spans()
                          if not s.closed]
            self._fail(report, name, f"unclosed spans: {open_spans}")
            return
        roots = [span.name for span in obs.tracer.roots]
        if roots != ["run"]:
            self._fail(report, name, f"expected a single 'run' root, got {roots}")
        seqs = []
        for span in obs.tracer.iter_spans():
            seqs.extend([span.seq_start, span.seq_end])
            seqs.extend(event.seq for event in span.events)
        seqs.extend(event.seq for event in obs.tracer.orphan_events)
        if sorted(seqs) != list(range(len(seqs))):
            self._fail(report, name, "sequence numbers are not gap-free")

    def _check_phase_spans(self, report: InvariantReport, obs: Observability,
                           result) -> None:
        name = "phase-spans"
        report.checked.append(name)
        config = result.config
        expected = []
        if result.acquisition is not None:
            if config.enable_surface:
                expected.append("surface")
            if config.enable_attr_deep:
                expected.append("attr_deep")
            if config.enable_attr_surface:
                expected.append("attr_surface")
        expected.append("matching")
        for phase in expected:
            spans = list(obs.tracer.iter_spans(phase))
            if len(spans) != 1:
                self._fail(
                    report, name,
                    f"expected exactly one '{phase}' span, found {len(spans)}",
                )

    def _check_profile_time_conservation(self, report: InvariantReport,
                                         obs: Observability) -> None:
        """The span tree's time attribution is sound: every span closed,
        no span's children cumulatively exceed it (self time ≥ 0 within
        float epsilon), and summed self times reproduce the root spans'
        cumulative time exactly — so the profiler's flame graph neither
        invents nor loses a single simulated second."""
        name = "profile-time-conservation"
        report.checked.append(name)
        # Imported here: profile sits above instrument in the module
        # graph, and the checker is imported by the obs package root.
        from repro.obs.profile import span_time_violations

        for message in span_time_violations(obs.tracer):
            self._fail(
                report, name,
                message.replace("profile-time-conservation: ", ""),
            )

    def _check_cache_store_accounting(self, report: InvariantReport,
                                      cache) -> None:
        name = "cache-store-accounting"
        report.checked.append(name)
        self._equal(
            report, name,
            cache.stores + cache.uncacheable, cache.misses,
            "stores + uncacheable", "misses",
        )

    def _check_cache_layer_conservation(self, report: InvariantReport,
                                        obs: Observability, cache) -> None:
        entry_calls = obs.metrics.sum_counters(
            "web.calls", layer=LAYER_ENTRY, substrate="engine")
        transport_calls = obs.metrics.sum_counters(
            "web.calls", layer=LAYER_TRANSPORT, substrate="engine")
        if cache is not None:
            name = "cache-entry-conservation"
            report.checked.append(name)
            self._equal(
                report, name, entry_calls, cache.hits + cache.misses,
                "entry-layer engine calls", "cache hits + misses",
            )
            name = "cache-miss-passthrough"
            report.checked.append(name)
            self._equal(
                report, name, transport_calls, cache.misses,
                "transport-layer engine calls", "cache misses",
            )
            name = "cache-metrics-consistency"
            report.checked.append(name)
            self._equal(
                report, name,
                obs.metrics.sum_counters("cache.lookups", outcome="hit"),
                cache.hits, "cache.lookups{hit}", "CacheStats.hits",
            )
            self._equal(
                report, name,
                obs.metrics.sum_counters("cache.lookups", outcome="miss"),
                cache.misses, "cache.lookups{miss}", "CacheStats.misses",
            )
        else:
            name = "uncached-passthrough"
            report.checked.append(name)
            self._equal(
                report, name, entry_calls, transport_calls,
                "entry-layer engine calls", "transport-layer engine calls",
            )

    def _check_round_trip_conservation(self, report: InvariantReport,
                                       obs: Observability, result) -> None:
        name = "round-trip-conservation"
        report.checked.append(name)
        stopwatch = result.stopwatch
        for component, substrate in (
            ("surface", "engine"),
            ("attr_surface", "engine"),
            ("attr_deep", "source"),
        ):
            traced = obs.metrics.sum_counters(
                "web.round_trips", layer=LAYER_TRANSPORT,
                substrate=substrate, component=component,
            )
            self._equal(
                report, name, traced, stopwatch.queries(component),
                f"traced {component} round trips",
                f"stopwatch queries[{component}]",
            )
        stray = obs.metrics.sum_counters(
            "web.round_trips", layer=LAYER_TRANSPORT,
            component=DEFAULT_COMPONENT,
        )
        if stray:
            self._fail(
                report, name,
                f"{stray} transport round trips outside any component scope",
            )

    def _check_stopwatch_accounting(self, report: InvariantReport,
                                    result) -> None:
        name = "stopwatch-acquisition-accounting"
        report.checked.append(name)
        acquisition = result.acquisition
        stopwatch = result.stopwatch
        for component, reported in (
            ("surface", acquisition.surface_queries),
            ("attr_surface", acquisition.attr_surface_queries),
            ("attr_deep", acquisition.attr_deep_probes),
        ):
            self._equal(
                report, name, stopwatch.queries(component), reported,
                f"stopwatch queries[{component}]",
                f"acquisition report {component} count",
            )

    def _check_fault_fate_conservation(self, report: InvariantReport,
                                       degradation) -> None:
        name = "fault-fate-conservation"
        report.checked.append(name)
        raised = degradation.total_faults - degradation.faults_by_kind.get(
            _SILENT_FAULT_KIND, 0)
        caught = sum(degradation.faults_by_component.values())
        self._equal(
            report, name, raised, caught,
            "injected raising faults", "faults caught in the retry loop",
        )
        fates = (
            degradation.total_retries
            + sum(degradation.giveups_by_component.values())
            + sum(degradation.breaker_trips.values())
        )
        self._equal(
            report, name, caught, fates,
            "faults caught in the retry loop",
            "retries + give-ups + breaker trips",
        )

    def _check_budget_conservation(self, report: InvariantReport, result,
                                   obs: Optional[Observability]) -> None:
        name = "budget-conservation"
        report.checked.append(name)
        degradation = result.degradation
        stopwatch = result.stopwatch
        spent = degradation.budget_spent_by_component
        components = sorted(
            set(spent)
            | {c for c in COMPONENTS if stopwatch.queries(c) > 0}
        )
        for component in components:
            self._equal(
                report, name, spent.get(component, 0),
                stopwatch.queries(component),
                f"budget spend[{component}]",
                f"stopwatch queries[{component}]",
            )
        if obs is not None:
            traced_probes = obs.metrics.sum_counters(
                "web.round_trips", layer=LAYER_TRANSPORT,
                substrate="source", component="attr_deep",
            )
            self._equal(
                report, name, traced_probes, spent.get("attr_deep", 0),
                "traced probes", "attr_deep budget spend",
            )

    def _check_retry_conservation(self, report: InvariantReport,
                                  obs: Observability, degradation,
                                  trace_calls: bool) -> None:
        name = "retry-conservation"
        report.checked.append(name)
        counted = obs.metrics.sum_counters("resilience.retries")
        self._equal(
            report, name, counted, degradation.total_retries,
            "retry counter", "degradation retries",
        )
        for component, retries in sorted(
            degradation.retries_by_component.items()
        ):
            self._equal(
                report, name,
                obs.metrics.sum_counters(
                    "resilience.retries", component=component),
                retries,
                f"retry counter[{component}]",
                f"degradation retries[{component}]",
            )
        if trace_calls:
            self._equal(
                report, name, obs.tracer.count_events("retry"),
                degradation.total_retries,
                "traced retry events", "degradation retries",
            )
            self._equal(
                report, name, obs.tracer.count_events("fault"),
                sum(degradation.faults_by_component.values()),
                "traced fault events", "degradation faults caught",
            )
            self._equal(
                report, name, obs.tracer.count_events("giveup"),
                sum(degradation.giveups_by_component.values()),
                "traced give-up events", "degradation give-ups",
            )
            self._equal(
                report, name, obs.tracer.count_events("breaker_trip"),
                sum(degradation.breaker_trips.values()),
                "traced breaker trips", "degradation breaker trips",
            )

    def _check_trace_metrics_consistency(self, report: InvariantReport,
                                         obs: Observability) -> None:
        name = "trace-metrics-consistency"
        report.checked.append(name)
        for layer in (LAYER_ENTRY, LAYER_TRANSPORT):
            for substrate in ("engine", "source"):
                events = obs.tracer.count_events(
                    "web_call", layer=layer, substrate=substrate)
                calls = obs.metrics.sum_counters(
                    "web.calls", layer=layer, substrate=substrate)
                self._equal(
                    report, name, events, calls,
                    f"web_call events[{layer}/{substrate}]",
                    f"web.calls counter[{layer}/{substrate}]",
                )
                traced_rt = obs.tracer.sum_event_attr(
                    "round_trips", "web_call",
                    layer=layer, substrate=substrate)
                counted_rt = obs.metrics.sum_counters(
                    "web.round_trips", layer=layer, substrate=substrate)
                self._equal(
                    report, name, traced_rt, counted_rt,
                    f"traced round trips[{layer}/{substrate}]",
                    f"web.round_trips counter[{layer}/{substrate}]",
                )

    def _check_lineage_conservation(self, report: InvariantReport,
                                    provenance: ProvenanceRecorder,
                                    result) -> None:
        """Every acquired instance has exactly one lineage record."""
        name = "provenance-lineage-conservation"
        report.checked.append(name)
        acquisition = result.acquisition
        acquired_total = (
            sum(r.n_after_borrow for r in acquisition.records)
            if acquisition is not None
            else 0
        )
        recorded = len(provenance.lineage) + provenance.dropped.get(
            "lineage", 0)
        self._equal(
            report, name, recorded, acquired_total,
            "lineage records (incl. dropped)", "instances acquired",
        )
        if provenance.dropped.get("lineage", 0) or acquisition is None:
            return
        by_key = Counter(record.key for record in provenance.lineage)
        for record in acquisition.records:
            key = (record.interface_id, record.attribute)
            self._equal(
                report, name, by_key.get(key, 0), record.n_after_borrow,
                f"lineage records for {key}",
                f"acquired instances for {key}",
            )

    def _check_prune_conservation(self, report: InvariantReport,
                                  provenance: ProvenanceRecorder) -> None:
        """Every discovered candidate is either kept or pruned exactly once."""
        name = "provenance-prune-conservation"
        report.checked.append(name)
        for event in provenance.prunes:
            if event.stage not in PRUNE_STAGES:
                self._fail(
                    report, name,
                    f"unknown prune stage {event.stage!r} for "
                    f"{(event.interface_id, event.attribute)}",
                )
        if provenance.dropped.get("prunes", 0) or provenance.dropped.get(
            "discoveries", 0
        ):
            return
        prunes_by_key = Counter(
            (event.interface_id, event.attribute)
            for event in provenance.prunes
        )
        for summary in provenance.discoveries:
            key = (summary.interface_id, summary.attribute)
            self._equal(
                report, name, prunes_by_key.get(key, 0),
                summary.discovered - summary.kept,
                f"prune events for {key}",
                f"discovered - kept for {key}",
            )

    def _check_match_conservation(self, report: InvariantReport,
                                  provenance: ProvenanceRecorder,
                                  result) -> None:
        """Explanations cover every pairwise evaluation and recompute
        float-exactly; committed merges beat the threshold."""
        name = "provenance-match-conservation"
        report.checked.append(name)
        match_result = result.match_result
        recorded = len(provenance.explanations) + provenance.dropped.get(
            "explanations", 0)
        self._equal(
            report, name, recorded, match_result.similarity_evaluations,
            "match explanations (incl. dropped)",
            "pairwise similarity evaluations",
        )
        for e in provenance.explanations:
            blend = e.alpha * e.label_sim + e.beta * e.dom_sim
            if blend != e.sim:
                self._fail(
                    report, name,
                    f"explanation for ({e.a}, {e.b}) does not recompute: "
                    f"{e.alpha}*{e.label_sim} + {e.beta}*{e.dom_sim} = "
                    f"{blend} != {e.sim}",
                )
        for merge in provenance.merges:
            if not merge.linkage_value > merge.threshold:
                self._fail(
                    report, name,
                    f"merge step {merge.step} committed at linkage "
                    f"{merge.linkage_value} <= threshold {merge.threshold}",
                )

    def _check_checkpoint_spend_conservation(self, report: InvariantReport,
                                             checkpoint, result) -> None:
        """Replayed + fresh spend per component equals the stopwatch's.

        The checkpoint layer accounts each unit's round trips exactly
        once — either from the journal (replayed) or from live substrate
        counters (fresh). Their per-component sum must land on the same
        totals the stopwatch charged; a gap means a unit was journaled
        with the wrong cost or double-consumed on replay.
        """
        name = "checkpoint-spend-conservation"
        report.checked.append(name)
        stopwatch = result.stopwatch
        for component in COMPONENTS:
            replayed = checkpoint.replayed_queries_by_component.get(
                component, 0)
            fresh = checkpoint.fresh_queries_by_component.get(component, 0)
            self._equal(
                report, name, replayed + fresh, stopwatch.queries(component),
                f"checkpoint replayed+fresh[{component}]",
                f"stopwatch queries[{component}]",
            )

    def _check_checkpoint_replay_isolation(self, report: InvariantReport,
                                           checkpoint) -> None:
        """Replayed units consume zero transport calls.

        The raw substrate counters see only what *this* process sent over
        the wire — which must be exactly the fresh units' spend. Any
        excess means a replayed unit leaked a real engine query or source
        probe, breaking the zero-respend guarantee of resume.
        """
        name = "checkpoint-replay-isolation"
        report.checked.append(name)
        fresh = checkpoint.fresh_queries_by_component
        self._equal(
            report, name, checkpoint.engine_round_trips,
            fresh.get("surface", 0) + fresh.get("attr_surface", 0),
            "raw engine round trips", "fresh surface + attr_surface spend",
        )
        self._equal(
            report, name, checkpoint.source_round_trips,
            fresh.get("attr_deep", 0),
            "raw source round trips", "fresh attr_deep spend",
        )

    def _check_restart_spend_conservation(self, report: InvariantReport,
                                          supervisor, checkpoint) -> None:
        """Every round trip of every attempt is accounted exactly once.

        The supervisor's raw spend across all attempts must decompose
        into the final run's journal (replayed + fresh), the spend failed
        attempts paid but never journaled (``wasted_round_trips`` — lost
        to the unit in flight), and journaled spend that salvage/chaos
        trimmed back out (``salvage_trimmed_round_trips``, re-paid by a
        later attempt and so counted on both sides). A gap means an
        attempt's traffic escaped the ledger — restarts would be
        silently re-billing (or comping) Web round trips.
        """
        name = "restart-spend-conservation"
        report.checked.append(name)
        self._equal(
            report, name,
            supervisor.total_round_trips,
            checkpoint.replayed_round_trips + checkpoint.fresh_round_trips
            + supervisor.wasted_round_trips
            + supervisor.salvage_trimmed_round_trips,
            "raw round trips across all attempts",
            "journaled (replayed+fresh) + wasted + salvage-trimmed",
        )

    def _check_quarantine_accounting(self, report: InvariantReport,
                                     supervisor, checkpoint, result) -> None:
        """Attempted units == completed + quarantined, with agreement on
        *which* units: the journal's quarantine skips must be exactly the
        units the supervisor reports as quarantined, and together with
        the completed units they must cover every unit the acquisition
        policy attempts for this configuration — a quarantined unit may
        be skipped, never silently dropped from the run's shape.
        """
        name = "quarantine-accounting"
        report.checked.append(name)
        config = result.config
        attempted = 0
        for record in result.acquisition.records:
            if record.had_instances:
                attempted += 1 if config.enable_attr_surface else 0
            else:
                attempted += 1 if config.enable_surface else 0
                attempted += 1 if config.enable_attr_deep else 0
        self._equal(
            report, name, checkpoint.boundaries, attempted,
            "journal boundaries", "attempted units (from acquisition shape)",
        )
        skipped = sorted(tuple(unit) for unit in checkpoint.quarantine_skips)
        reported = sorted(tuple(q.unit) for q in supervisor.quarantined_units)
        if skipped != reported:
            self._fail(
                report, name,
                f"journal quarantine skips {skipped} != supervisor-reported "
                f"quarantined units {reported}",
            )
        completed = checkpoint.boundaries - len(checkpoint.quarantine_skips)
        self._equal(
            report, name, completed + len(reported), attempted,
            "completed + quarantined units", "attempted units",
        )

    # ------------------------------------------------------------ plumbing
    def _check_registry_blocking_conservation(self, report: InvariantReport,
                                              registry) -> None:
        """Every cross pair an assimilation was accountable for was either
        fully evaluated or charged to the blocking ledger — per add,
        ``evaluated + blocked == new_views · existing_views`` — and the
        registry's totals are exactly the ledger's column sums."""
        name = "registry-blocking-conservation"
        report.checked.append(name)
        for record in registry.adds:
            self._equal(
                report, name,
                record.evaluated + record.blocked,
                record.new_views * record.existing_views,
                f"add[{record.interface_id}] evaluated+blocked",
                "new_views*existing_views",
            )
            if record.evaluated < 0 or record.blocked < 0:
                self._fail(
                    report, name,
                    f"add[{record.interface_id}] has a negative ledger "
                    f"line (evaluated={record.evaluated}, "
                    f"blocked={record.blocked})",
                )
        self._equal(
            report, name,
            registry.evaluated + registry.blocked,
            registry.pairs_considered,
            "registry evaluated+blocked", "registry pairs_considered",
        )
        expected_views = sum(
            record.new_views for record in registry.adds)
        self._equal(
            report, name, registry.n_views, expected_views,
            "registry views", "sum of assimilated views",
        )

    def _check_registry_batch_equivalence(self, report: InvariantReport,
                                          registry, result) -> None:
        """The registry's induced matching (built incrementally, under
        blocking) must equal the run's batch IceQ clusters exactly —
        same clusters, same order, same members."""
        name = "registry-batch-equivalence"
        report.checked.append(name)
        batch = tuple(
            tuple(sorted(cluster.keys))
            for cluster in result.match_result.clusters
        )
        if registry.induced != batch:
            induced_only = set(registry.induced) - set(batch)
            batch_only = set(batch) - set(registry.induced)
            self._fail(
                report, name,
                f"registry induced matching diverged from batch IceQ: "
                f"{len(induced_only)} cluster(s) only in registry, "
                f"{len(batch_only)} only in batch "
                f"(first registry-only: "
                f"{sorted(induced_only)[:1]!r}, first batch-only: "
                f"{sorted(batch_only)[:1]!r})",
            )
        self._equal(
            report, name, registry.n_entries, len(batch),
            "registry entries", "batch clusters",
        )

    def _fail(self, report: InvariantReport, invariant: str,
              message: str) -> None:
        report.violations.append(
            InvariantViolation(invariant, self._context + message)
        )

    def _equal(self, report: InvariantReport, invariant: str,
               actual: Any, expected: Any,
               actual_label: str, expected_label: str) -> None:
        if actual != expected:
            self._fail(
                report, invariant,
                f"{actual_label} ({actual}) != {expected_label} ({expected})",
            )


def check_run(result) -> InvariantReport:
    """Convenience wrapper: audit one run result."""
    return InvariantChecker().check(result)
