"""A labelled metrics registry: counters, gauges, histograms.

The :class:`MetricsRegistry` is the numeric half of :mod:`repro.obs` — the
trace says *what happened in which order*, the registry says *how many and
how much*. Instruments are identified by a name plus a frozen label set
(``counter("web.calls", layer="transport", component="surface")``),
mirroring how deployed metric systems key time series; the invariant
checker then aggregates over label dimensions to cross-check the trace,
the cache statistics, the degradation report and the stopwatch against
each other.

Everything is deterministic and JSON-exportable: instruments export sorted
by ``(name, labels)``, so two identical runs produce byte-identical
payloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_SAMPLE_CAP",
    "MetricsRegistry",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


@dataclass
class Gauge:
    """A last-write-wins numeric value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Raw samples a :class:`Histogram` retains before decimating. Below the
#: cap percentiles are exact; above it they are nearest-rank over a
#: deterministic 1-in-``stride`` subsample (see :meth:`Histogram.observe`).
HISTOGRAM_SAMPLE_CAP = 4096


@dataclass
class Histogram:
    """Summary of an observed distribution.

    Retains raw samples — bounded by :data:`HISTOGRAM_SAMPLE_CAP` — so
    :meth:`percentile` can answer; the JSON export stays summary-only
    (count/total/min/max) so payload size never grows with sample count.

    Retention is a *deterministic capped reservoir*: observation ``i``
    (0-based) is kept iff ``i % stride == 0``. Whenever the retained list
    would exceed the cap, every second retained sample is dropped
    (``samples[::2]``) and ``stride`` doubles — the kept indices remain
    exactly the multiples of the new stride, so which samples survive
    depends only on the observation sequence, never on randomness.
    Below the cap ``stride == 1`` and percentiles are exact; above it
    they are nearest-rank over the strided subsample (documented,
    deterministic approximation). ``count``/``total``/``min``/``max``
    are always exact regardless of decimation.
    """

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    samples: List[float] = field(default_factory=list)
    #: 1 while under the cap; doubles on every decimation.
    stride: int = 1

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if (self.count - 1) % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) > HISTOGRAM_SAMPLE_CAP:
                self.samples = self.samples[::2]
                self.stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def exact(self) -> bool:
        """True while every observation is still retained."""
        return self.stride == 1

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile of the retained samples.

        ``q`` is in ``[0, 100]``. Returns ``None`` when nothing has been
        observed; a single sample is every percentile of itself. Exact
        below :data:`HISTOGRAM_SAMPLE_CAP` observations; above it,
        nearest-rank over the deterministic strided subsample.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q!r}")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]


class MetricsRegistry:
    """Creates-on-first-use registry of labelled instruments."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ---------------------------------------------------------- instruments
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        if key not in self._histograms:
            self._histograms[key] = Histogram()
        return self._histograms[key]

    # -------------------------------------------------------------- queries
    def counter_value(self, name: str, **labels: Any) -> int:
        """Exact-label counter read; 0 when never incremented."""
        counter = self._counters.get((name, _label_key(labels)))
        return counter.value if counter is not None else 0

    def sum_counters(self, name: str, **label_filter: Any) -> int:
        """Sum a counter over every label set matching ``label_filter``
        (filter keys must match exactly; unfiltered dimensions aggregate)."""
        wanted = {k: str(v) for k, v in label_filter.items()}
        total = 0
        for (counter_name, labels), counter in self._counters.items():
            if counter_name != name:
                continue
            label_map = dict(labels)
            if all(label_map.get(k) == v for k, v in wanted.items()):
                total += counter.value
        return total

    def counter_labels(self, name: str) -> Iterator[Dict[str, str]]:
        """The label sets under which ``name`` has been incremented."""
        for (counter_name, labels) in self._counters:
            if counter_name == name:
                yield dict(labels)

    # --------------------------------------------------------------- export
    def export(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot, sorted for byte-stable output."""
        def rows(table, render) -> List[Dict[str, Any]]:
            return [
                {"name": name, "labels": dict(labels), **render(instrument)}
                for (name, labels), instrument in sorted(
                    table.items(), key=lambda item: item[0]
                )
            ]

        return {
            "counters": rows(self._counters, lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(
                self._histograms,
                lambda h: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                },
            ),
        }

    def summary(self) -> str:
        """One CLI-ready line, mirroring the other layers' summaries."""
        n_counters = len(self._counters)
        total = sum(c.value for c in self._counters.values())
        return (
            f"metrics: {n_counters} counters (sum {total}), "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms"
        )
