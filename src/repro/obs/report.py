"""Run reports and run diffing over provenance-bearing results.

:func:`build_run_report` condenses one or more pipeline runs into a
:class:`RunReport`: per-domain accuracy against the gold clustering,
per-phase acquisition yield, cache and resilience rollups, and the top-k
*hardest decisions* — the pairwise match evaluations whose blended
similarity landed closest to the threshold τ, exactly the calls a human
auditor should double-check first. Reports render deterministically (no
wall-clock anywhere), both as text and as JSON, so two reports of the
same run are byte-identical.

:func:`diff_runs` compares two *exported* run payloads (the dicts
:func:`repro.io.run_result_to_dict` produces and
:func:`repro.io.load_run_result` reads back) and classifies the drift:

- ``accuracy`` — precision/recall/F1 moved (a drop in F1 is flagged as a
  regression);
- ``overhead`` — the query/probe/latency accounts grew;
- ``provenance`` — the decision streams diverge; the drift names the
  first diverging decision so a bisecting investigation starts at the
  right record rather than at "the run is different".

The benchmarks assert cached-vs-uncached and fault-0-vs-clean runs show
**no provenance divergence**: those layers must change the accounting,
never the decisions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # import cycle: pipeline imports the obs package
    from repro.core.pipeline import WebIQRunResult

__all__ = [
    "HardDecision",
    "DomainReport",
    "RunReport",
    "build_run_report",
    "Drift",
    "RunDiff",
    "diff_runs",
    "NO_PROVENANCE_DIVERGENCE",
]

#: The exact phrase :meth:`RunDiff.summary` emits when the decision
#: streams of the two runs are identical (benchmarks grep for it).
NO_PROVENANCE_DIVERGENCE = "no provenance divergence"

#: Ordered provenance streams compared record by record.
_PROVENANCE_STREAMS = ("lineage", "prunes", "explanations", "merges")


@dataclass(frozen=True)
class HardDecision:
    """One match evaluation that landed close to the threshold."""

    a: Tuple[str, str]
    b: Tuple[str, str]
    sim: float
    threshold: float
    margin: float
    exceeds_threshold: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": list(self.a),
            "b": list(self.b),
            "sim": self.sim,
            "threshold": self.threshold,
            "margin": self.margin,
            "exceeds_threshold": self.exceeds_threshold,
        }


@dataclass
class DomainReport:
    """One domain's section of a run report."""

    domain: str
    seed: Optional[int]
    precision: float
    recall: float
    f1: float
    #: instances entering the final result, by acquisition phase
    phase_yield: Dict[str, int] = field(default_factory=dict)
    surface_success_rate: Optional[float] = None
    final_success_rate: Optional[float] = None
    #: search queries / probes by stopwatch account
    queries_by_account: Dict[str, int] = field(default_factory=dict)
    cache_hit_rate: Optional[float] = None
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    degraded: Optional[bool] = None
    faults_injected: Optional[int] = None
    retries: Optional[int] = None
    #: match evaluations closest to τ, hardest first
    hardest_decisions: List[HardDecision] = field(default_factory=list)
    provenance_summary: Optional[str] = None
    provenance_dropped: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "domain": self.domain,
            "seed": self.seed,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "phase_yield": dict(sorted(self.phase_yield.items())),
            "surface_success_rate": self.surface_success_rate,
            "final_success_rate": self.final_success_rate,
            "queries_by_account": dict(
                sorted(self.queries_by_account.items())
            ),
            "cache_hit_rate": self.cache_hit_rate,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "degraded": self.degraded,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "hardest_decisions": [
                d.to_dict() for d in self.hardest_decisions
            ],
            "provenance_summary": self.provenance_summary,
            "provenance_dropped": self.provenance_dropped,
        }


@dataclass
class RunReport:
    """A deterministic digest of one or more pipeline runs."""

    domains: List[DomainReport] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"domains": [d.to_dict() for d in self.domains]}

    def render(self) -> str:
        """Human-readable text form; deterministic line for line."""
        lines: List[str] = []
        for section in self.domains:
            seed = "?" if section.seed is None else section.seed
            lines.append(f"== {section.domain} (seed {seed}) ==")
            lines.append(
                f"  accuracy: P={section.precision:.3f} "
                f"R={section.recall:.3f} F1={section.f1:.3f}"
            )
            if section.phase_yield:
                yields = ", ".join(
                    f"{phase}={count}"
                    for phase, count in sorted(section.phase_yield.items())
                )
                lines.append(f"  acquisition yield: {yields}")
            if section.final_success_rate is not None:
                lines.append(
                    f"  success rate: surface "
                    f"{section.surface_success_rate:.1f}% -> final "
                    f"{section.final_success_rate:.1f}%"
                )
            if section.queries_by_account:
                spend = ", ".join(
                    f"{account}={count}"
                    for account, count in sorted(
                        section.queries_by_account.items()
                    )
                )
                lines.append(f"  web spend: {spend}")
            if section.cache_hit_rate is not None:
                lines.append(
                    f"  cache: {section.cache_hits} hits / "
                    f"{section.cache_misses} misses "
                    f"({100.0 * section.cache_hit_rate:.1f}% hit rate)"
                )
            if section.degraded is not None:
                lines.append(
                    f"  resilience: degraded={section.degraded}, "
                    f"{section.faults_injected} faults, "
                    f"{section.retries} retries"
                )
            if section.provenance_summary is not None:
                lines.append(f"  {section.provenance_summary}")
                if section.provenance_dropped:
                    lines.append(
                        "  warning: provenance dropped "
                        f"{section.provenance_dropped} records at capacity"
                    )
            if section.hardest_decisions:
                lines.append("  hardest decisions (|Sim - tau| ascending):")
                for decision in section.hardest_decisions:
                    verdict = (
                        "match" if decision.exceeds_threshold else "no-match"
                    )
                    lines.append(
                        f"    {_key_text(decision.a)} ~ "
                        f"{_key_text(decision.b)}: sim={decision.sim:.4f} "
                        f"tau={decision.threshold:.2f} "
                        f"margin={decision.margin:.4f} -> {verdict}"
                    )
        return "\n".join(lines) + "\n"


def _key_text(key: Sequence[str]) -> str:
    return f"{key[0]}.{key[1]}"


def build_run_report(
    results: Sequence["WebIQRunResult"],
    top_k_hardest: int = 5,
) -> RunReport:
    """Digest ``results`` (one per domain/config) into a :class:`RunReport`."""
    report = RunReport()
    for result in results:
        section = DomainReport(
            domain=result.domain,
            seed=result.seed,
            precision=result.metrics.precision,
            recall=result.metrics.recall,
            f1=result.metrics.f1,
            queries_by_account=dict(result.stopwatch.queries_by_account),
        )
        if result.acquisition is not None:
            section.surface_success_rate = (
                result.acquisition.surface_success_rate
            )
            section.final_success_rate = (
                result.acquisition.final_success_rate
            )
        if result.cache is not None:
            section.cache_hit_rate = result.cache.hit_rate
            section.cache_hits = result.cache.hits
            section.cache_misses = result.cache.misses
        if result.degradation is not None:
            section.degraded = result.degradation.degraded
            section.faults_injected = sum(
                result.degradation.faults_by_kind.values()
            )
            section.retries = sum(
                result.degradation.retries_by_component.values()
            )
        provenance = (
            result.obs.provenance if result.obs is not None else None
        )
        if provenance is not None:
            section.phase_yield = dict(
                Counter(record.phase for record in provenance.lineage)
            )
            section.provenance_summary = provenance.summary()
            section.provenance_dropped = provenance.total_dropped
            ranked = sorted(
                provenance.explanations,
                key=lambda e: (e.margin, e.a, e.b),
            )
            section.hardest_decisions = [
                HardDecision(
                    a=e.a,
                    b=e.b,
                    sim=e.sim,
                    threshold=e.threshold,
                    margin=e.margin,
                    exceeds_threshold=e.exceeds_threshold,
                )
                for e in ranked[:top_k_hardest]
            ]
        elif result.acquisition is not None:
            # Fallback yield accounting when the run kept no provenance:
            # phase attribution is coarser (surface vs borrowed) but the
            # report still says where the instances came from.
            surface = sum(
                r.n_after_surface for r in result.acquisition.records
            )
            borrowed = sum(
                max(0, r.n_after_borrow - r.n_after_surface)
                for r in result.acquisition.records
            )
            section.phase_yield = {"surface": surface, "borrowed": borrowed}
        report.domains.append(section)
    return report


# ---------------------------------------------------------------------------
# Run diffing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Drift:
    """One classified difference between two exported runs."""

    #: ``accuracy`` | ``overhead`` | ``provenance`` | ``config``
    kind: str
    #: is the change a regression (worse in the newer run)?
    regression: bool
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "regression": self.regression,
            "detail": self.detail,
        }


@dataclass
class RunDiff:
    """Outcome of :func:`diff_runs`."""

    drifts: List[Drift] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.drifts

    @property
    def has_regression(self) -> bool:
        return any(d.regression for d in self.drifts)

    def drifts_of(self, kind: str) -> List[Drift]:
        return [d for d in self.drifts if d.kind == kind]

    @property
    def provenance_diverged(self) -> bool:
        return bool(self.drifts_of("provenance"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "identical": self.identical,
            "drifts": [d.to_dict() for d in self.drifts],
        }

    def summary(self) -> str:
        """Deterministic text digest; benchmarks grep its phrasing."""
        lines: List[str] = []
        if self.identical:
            lines.append("runs are equivalent: zero drift")
        for drift in self.drifts:
            marker = "REGRESSION" if drift.regression else "drift"
            lines.append(f"{marker} [{drift.kind}] {drift.detail}")
        if not self.provenance_diverged:
            lines.append(NO_PROVENANCE_DIVERGENCE)
        return "\n".join(lines) + "\n"


def diff_runs(a: Dict[str, Any], b: Dict[str, Any]) -> RunDiff:
    """Classify the drift between two exported run payloads.

    ``a`` is the reference (older) run, ``b`` the candidate (newer) one;
    both are the plain dicts of :func:`repro.io.run_result_to_dict` or
    :func:`repro.io.load_run_result`. Equal payloads yield a diff with
    ``identical == True`` and zero drifts.
    """
    diff = RunDiff()
    _diff_config(a, b, diff)
    _diff_accuracy(a, b, diff)
    _diff_overhead(a, b, diff)
    _diff_provenance(a, b, diff)
    return diff


def _diff_config(a: Dict[str, Any], b: Dict[str, Any], diff: RunDiff) -> None:
    if a.get("domain") != b.get("domain"):
        diff.drifts.append(Drift(
            "config", False,
            f"different domains: {a.get('domain')!r} vs {b.get('domain')!r}",
        ))
    if a.get("seed") != b.get("seed"):
        diff.drifts.append(Drift(
            "config", False,
            f"different seeds: {a.get('seed')!r} vs {b.get('seed')!r}",
        ))
    if a.get("config") != b.get("config"):
        diff.drifts.append(Drift(
            "config", False,
            f"different configs: {a.get('config')!r} vs {b.get('config')!r}",
        ))


def _diff_accuracy(a: Dict[str, Any], b: Dict[str, Any],
                   diff: RunDiff) -> None:
    metrics_a = a.get("metrics") or {}
    metrics_b = b.get("metrics") or {}
    for name in ("precision", "recall", "f1"):
        old = metrics_a.get(name)
        new = metrics_b.get(name)
        if old == new:
            continue
        regression = (
            old is not None and new is not None and new < old
        )
        diff.drifts.append(Drift(
            "accuracy", regression,
            f"{name} moved {old} -> {new}",
        ))


def _diff_overhead(a: Dict[str, Any], b: Dict[str, Any],
                   diff: RunDiff) -> None:
    for key, unit in (
        ("overhead_queries", "calls"),
        ("overhead_seconds", "seconds"),
    ):
        accounts_a = a.get(key) or {}
        accounts_b = b.get(key) or {}
        for account in sorted(set(accounts_a) | set(accounts_b)):
            old = accounts_a.get(account, 0)
            new = accounts_b.get(account, 0)
            if old == new:
                continue
            diff.drifts.append(Drift(
                "overhead", new > old,
                f"{key}[{account}] moved {old} -> {new} {unit}",
            ))


def _diff_provenance(a: Dict[str, Any], b: Dict[str, Any],
                     diff: RunDiff) -> None:
    prov_a = a.get("provenance")
    prov_b = b.get("provenance")
    if prov_a is None and prov_b is None:
        return
    if prov_a is None or prov_b is None:
        present = "first" if prov_b is None else "second"
        diff.drifts.append(Drift(
            "provenance", False,
            f"only the {present} run recorded provenance — decision "
            "streams cannot be compared",
        ))
        return
    for stream in _PROVENANCE_STREAMS:
        records_a = prov_a.get(stream) or []
        records_b = prov_b.get(stream) or []
        divergence = _first_divergence(records_a, records_b)
        if divergence is None:
            continue
        index, record_a, record_b = divergence
        diff.drifts.append(Drift(
            "provenance", True,
            f"{stream} diverge at decision #{index}: "
            f"{_record_text(record_a)} vs {_record_text(record_b)}",
        ))


def _first_divergence(
    records_a: List[Any], records_b: List[Any]
) -> Optional[Tuple[int, Any, Any]]:
    for index, (record_a, record_b) in enumerate(zip(records_a, records_b)):
        if record_a != record_b:
            return index, record_a, record_b
    if len(records_a) != len(records_b):
        index = min(len(records_a), len(records_b))
        longer = records_a if len(records_a) > len(records_b) else records_b
        extra = longer[index]
        if len(records_a) > len(records_b):
            return index, extra, None
        return index, None, extra
    return None


def _record_text(record: Any) -> str:
    if record is None:
        return "<absent>"
    if isinstance(record, dict):
        keys = ("interface_id", "attribute", "value", "stage", "a", "b",
                "step", "sim")
        parts = [
            f"{key}={record[key]!r}" for key in keys if key in record
        ]
        if parts:
            return "{" + ", ".join(parts) + "}"
    return repr(record)
