"""Structured run tracing: hierarchical spans and typed events.

A :class:`Tracer` records what one pipeline run *did* — which phases ran,
which Web calls each phase issued, what the resilience layer decided — as
a tree of :class:`Span` objects carrying :class:`TraceEvent` leaves. Two
properties make the trace a test oracle rather than a debugging aid:

- **Determinism.** Timestamps come from the run's
  :class:`~repro.util.clock.SimulatedClock` (simulated seconds) plus a
  monotonically increasing sequence number — never from the host's wall
  clock. Two runs with the same seed and configuration export
  byte-identical traces; any divergence is a real behavioural change.
- **Closure discipline.** Spans are context managers; the exporter and the
  :mod:`~repro.obs.invariants` checker treat an unclosed span as a defect.

The export format is plain JSON-serialisable dicts (``version``, ``spans``,
``events``), written with sorted keys by :mod:`repro.io` so byte equality
is meaningful across processes.

The tracer is **not** thread-safe and does not need to be: under the
parallel executor (:mod:`repro.exec`) every span and event is emitted
from the serial commit thread — speculative workers run against clone
worlds built *without* an observability layer, so nothing they do can
reach a tracer. That discipline, not locking, is what keeps ``seq``
gap-free and traces byte-identical across worker counts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Span", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One instantaneous typed occurrence inside a span."""

    name: str
    #: position in the run's total event/span order (0-based, gap-free
    #: across spans and events together)
    seq: int
    #: simulated seconds charged to the run's clock when the event fired
    t: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seq": self.seq,
            "t": self.t,
            "attrs": dict(self.attrs),
        }


@dataclass
class Span:
    """One timed region of the run (the whole run, a phase, ...)."""

    name: str
    seq_start: int
    t_start: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[TraceEvent] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)
    seq_end: Optional[int] = None
    t_end: Optional[float] = None
    #: host wall-clock bounds (``time.perf_counter``), captured for the
    #: profiler's advisory section only. Deliberately **excluded** from
    #: :meth:`to_dict`: wall time varies run to run, and the trace export
    #: must stay byte-identical for equal seeds/configs.
    wall_start: float = 0.0
    wall_end: Optional[float] = None

    @property
    def closed(self) -> bool:
        return self.seq_end is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seq_start": self.seq_start,
            "t_start": self.t_start,
            "seq_end": self.seq_end,
            "t_end": self.t_end,
            "attrs": dict(self.attrs),
            "events": [event.to_dict() for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Collects spans and events for one pipeline run.

    ``clock_seconds`` is a zero-argument callable returning the current
    simulated time (pass the run's
    :meth:`SimulatedClock.now_seconds <repro.util.clock.SimulatedClock>`
    accessor); ``None`` stamps every record at ``t=0.0``, which keeps
    standalone unit use trivial.
    """

    def __init__(self, clock_seconds=None) -> None:
        self._clock_seconds = clock_seconds
        self._seq = 0
        self.roots: List[Span] = []
        #: events emitted outside any span (discouraged, but never lost)
        self.orphan_events: List[TraceEvent] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------ recording
    def _now(self) -> float:
        return float(self._clock_seconds()) if self._clock_seconds else 0.0

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span; it closes (even on exception) when the block exits."""
        span = Span(
            name=name,
            seq_start=self._next_seq(),
            t_start=self._now(),
            attrs=attrs,
            wall_start=time.perf_counter(),
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.seq_end = self._next_seq()
            span.t_end = self._now()
            span.wall_end = time.perf_counter()

    def event(self, name: str, **attrs: Any) -> TraceEvent:
        """Record a typed event on the innermost open span."""
        event = TraceEvent(
            name=name, seq=self._next_seq(), t=self._now(), attrs=attrs
        )
        if self._stack:
            self._stack[-1].events.append(event)
        else:
            self.orphan_events.append(event)
        return event

    # -------------------------------------------------------------- queries
    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def iter_spans(self, name: Optional[str] = None) -> Iterator[Span]:
        """All spans, depth-first; optionally filtered by name."""
        def walk(span: Span) -> Iterator[Span]:
            yield span
            for child in span.children:
                yield from walk(child)

        for root in self.roots:
            for span in walk(root):
                if name is None or span.name == name:
                    yield span

    def iter_events(self, name: Optional[str] = None, **attr_filter: Any
                    ) -> Iterator[TraceEvent]:
        """All events (span-attached and orphans), in seq order per span,
        optionally filtered by name and exact attribute values."""
        def matches(event: TraceEvent) -> bool:
            if name is not None and event.name != name:
                return False
            return all(
                event.attrs.get(key) == value
                for key, value in attr_filter.items()
            )

        for span in self.iter_spans():
            for event in span.events:
                if matches(event):
                    yield event
        for event in self.orphan_events:
            if matches(event):
                yield event

    def count_events(self, name: Optional[str] = None, **attr_filter: Any) -> int:
        return sum(1 for _ in self.iter_events(name, **attr_filter))

    def sum_event_attr(self, attr: str, name: Optional[str] = None,
                       **attr_filter: Any):
        """Sum a numeric attribute over matching events (missing → 0)."""
        return sum(
            event.attrs.get(attr, 0)
            for event in self.iter_events(name, **attr_filter)
        )

    @property
    def n_spans(self) -> int:
        return sum(1 for _ in self.iter_spans())

    @property
    def n_events(self) -> int:
        return self.count_events()

    @property
    def all_closed(self) -> bool:
        return not self._stack and all(
            span.closed for span in self.iter_spans()
        )

    # --------------------------------------------------------------- export
    def export(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of the whole trace."""
        return {
            "version": 1,
            "n_spans": self.n_spans,
            "n_events": self.n_events,
            "spans": [root.to_dict() for root in self.roots],
            "events": [event.to_dict() for event in self.orphan_events],
        }
