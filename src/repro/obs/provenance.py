"""Decision provenance: why every instance and every match exists.

The trace (:mod:`repro.obs.trace`) records what the pipeline *did* at the
transport layer — calls, round trips, retries. This module records what it
*decided* and why, which is the evidence the paper's evaluation reasons
about (Figures 6–8, Table 1) and the substance an operator needs to audit
a match:

- an :class:`InstanceLineage` for every instance that enters the final
  result — which phase produced it (Surface / Attr-Deep / Attr-Surface),
  the extraction query and snippet that surfaced it, the donor attribute
  it was borrowed from, the PMI validation vector or naive-Bayes posterior
  that admitted it, or the Deep-Web probe verdict that vouched for it;
- a :class:`PruneEvent` for every candidate the pipeline rejected, naming
  the stage and — for discordancy outliers — the test statistic that
  drove the rejection;
- a :class:`MatchExplanation` for every pairwise similarity evaluation
  the matcher performed: the LabelSim and DomSim component scores, the
  α/β blend, and the threshold τ the blend was compared against;
- a :class:`MergeStep` for every cluster merge the matcher committed, so
  the step that put two attributes in the same cluster can be replayed.

Every record is an immutable dataclass; the recorder is a bounded ring
buffer (:data:`DEFAULT_PROVENANCE_CAPACITY` records per category) so an
arbitrarily large run cannot exhaust memory — overflow drops the oldest
records and counts the drops, and the
:class:`~repro.obs.invariants.InvariantChecker` only asserts the exact
per-attribute conservation laws while nothing has been dropped.

Recording is strictly read-only: every score a record carries is either
the value the pipeline already computed or a recomputation through the
same memoised caches (zero extra search-engine traffic), so a run with
provenance enabled is payload-bit-identical to one without.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "DEFAULT_PROVENANCE_CAPACITY",
    "ValidationEvidence",
    "ProbeVerdict",
    "InstanceLineage",
    "PruneEvent",
    "DiscoverySummary",
    "MatchExplanation",
    "MergeStep",
    "ThresholdSearchRecord",
    "ProvenanceRecorder",
]

#: Ring-buffer bound per record category. Generous: a 20-interface domain
#: produces a few thousand lineage/prune records and ~13k explanations,
#: an order of magnitude under the cap — but a runaway workload hits the
#: cap instead of exhausting memory.
DEFAULT_PROVENANCE_CAPACITY = 200_000

#: Phase labels carried by lineage records.
PHASE_SURFACE = "surface"
PHASE_ATTR_DEEP = "attr_deep"
PHASE_ATTR_SURFACE = "attr_surface"

#: Prune stages of the Surface pipeline, in execution order.
PRUNE_STAGES = ("type_filter", "outlier", "cap", "validation", "top_k")

AttrKey = Tuple[str, str]


@dataclass(frozen=True)
class ValidationEvidence:
    """The PMI feature vector that scored one candidate.

    ``scores[i]`` is the candidate's PMI against ``phrases[i]``; ``score``
    is the aggregate (mean PMI for Surface validation, the naive-Bayes
    posterior for Attr-Surface).
    """

    phrases: Tuple[str, ...]
    scores: Tuple[float, ...]
    score: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phrases": list(self.phrases),
            "scores": list(self.scores),
            "score": self.score,
        }


@dataclass(frozen=True)
class ProbeVerdict:
    """Outcome of the Deep-Web probing that admitted a borrowed set."""

    successes: int
    sampled: int
    probes_issued: int
    accept_ratio: float
    accepted: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "successes": self.successes,
            "sampled": self.sampled,
            "probes_issued": self.probes_issued,
            "accept_ratio": self.accept_ratio,
            "accepted": self.accepted,
        }


@dataclass(frozen=True)
class InstanceLineage:
    """Full lineage of one instance that entered the final result."""

    interface_id: str
    attribute: str
    value: str
    #: which acquisition phase produced the instance
    phase: str
    #: Surface only: the extraction pattern/query/snippet that first
    #: surfaced the candidate
    extraction_pattern: Optional[str] = None
    extraction_query: Optional[str] = None
    snippet_id: Optional[int] = None
    #: Surface: the mean-PMI validation evidence; Attr-Surface: the PMI
    #: vector the classifier thresholded
    validation: Optional[ValidationEvidence] = None
    #: Attr-Surface only: thresholded boolean features and the posterior
    features: Optional[Tuple[int, ...]] = None
    posterior: Optional[float] = None
    #: borrowing phases only: the attribute the value was borrowed from
    donor: Optional[AttrKey] = None
    #: Attr-Deep only: the probing verdict that admitted the donor's set
    probe: Optional[ProbeVerdict] = None

    @property
    def key(self) -> AttrKey:
        return (self.interface_id, self.attribute)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interface_id": self.interface_id,
            "attribute": self.attribute,
            "value": self.value,
            "phase": self.phase,
            "extraction_pattern": self.extraction_pattern,
            "extraction_query": self.extraction_query,
            "snippet_id": self.snippet_id,
            "validation": (
                self.validation.to_dict()
                if self.validation is not None else None
            ),
            "features": (
                list(self.features) if self.features is not None else None
            ),
            "posterior": self.posterior,
            "donor": list(self.donor) if self.donor is not None else None,
            "probe": self.probe.to_dict() if self.probe is not None else None,
        }


@dataclass(frozen=True)
class PruneEvent:
    """One candidate the Surface pipeline rejected, and why."""

    interface_id: str
    attribute: str
    value: str
    #: one of :data:`PRUNE_STAGES`
    stage: str
    #: discordancy outliers: the test statistic that drove the rejection
    statistic: Optional[str] = None
    #: how many standard deviations from the candidate-set mean
    deviation_sigmas: Optional[float] = None
    #: validation/top-k prunes: the score that fell short
    score: Optional[float] = None

    @property
    def key(self) -> AttrKey:
        return (self.interface_id, self.attribute)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interface_id": self.interface_id,
            "attribute": self.attribute,
            "value": self.value,
            "stage": self.stage,
            "statistic": self.statistic,
            "deviation_sigmas": self.deviation_sigmas,
            "score": self.score,
        }


@dataclass(frozen=True)
class DiscoverySummary:
    """Surface discovery totals for one attribute (the prune-law anchor)."""

    interface_id: str
    attribute: str
    #: distinct candidates extraction surfaced
    discovered: int
    #: instances that survived every pruning stage
    kept: int
    numeric_domain: bool

    @property
    def key(self) -> AttrKey:
        return (self.interface_id, self.attribute)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interface_id": self.interface_id,
            "attribute": self.attribute,
            "discovered": self.discovered,
            "kept": self.kept,
            "numeric_domain": self.numeric_domain,
        }


@dataclass(frozen=True)
class MatchExplanation:
    """One pairwise similarity evaluation, decomposed.

    ``sim`` is exactly ``alpha * label_sim + beta * dom_sim`` — the
    acceptance tests recompute the blend and require float equality.
    """

    a: AttrKey
    b: AttrKey
    label_sim: float
    dom_sim: float
    alpha: float
    beta: float
    sim: float
    #: the clustering threshold τ the run compared ``sim`` against
    threshold: float

    @property
    def exceeds_threshold(self) -> bool:
        """May this pair (as singletons) ever merge at the run's τ?"""
        return self.sim > self.threshold

    @property
    def margin(self) -> float:
        """Distance from the threshold — small means a hard decision."""
        return abs(self.sim - self.threshold)

    def involves(self, key: AttrKey) -> bool:
        return key in (self.a, self.b)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": list(self.a),
            "b": list(self.b),
            "label_sim": self.label_sim,
            "dom_sim": self.dom_sim,
            "alpha": self.alpha,
            "beta": self.beta,
            "sim": self.sim,
            "threshold": self.threshold,
            "exceeds_threshold": self.exceeds_threshold,
        }


@dataclass(frozen=True)
class MergeStep:
    """One committed cluster merge, with membership at merge time."""

    step: int
    linkage_value: float
    threshold: float
    cluster_a: Tuple[AttrKey, ...]
    cluster_b: Tuple[AttrKey, ...]

    def commits(self, x: AttrKey, y: AttrKey) -> bool:
        """Did this step first put ``x`` and ``y`` in the same cluster?"""
        return (x in self.cluster_a and y in self.cluster_b) or (
            y in self.cluster_a and x in self.cluster_b
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "linkage_value": self.linkage_value,
            "threshold": self.threshold,
            "cluster_a": sorted(list(k) for k in self.cluster_a),
            "cluster_b": sorted(list(k) for k in self.cluster_b),
        }


@dataclass(frozen=True)
class ThresholdSearchRecord:
    """Outcome of one automatic τ grid search (:mod:`repro.matching.threshold`)."""

    grid: Tuple[float, ...]
    f1_by_threshold: Tuple[float, ...]
    chosen: float
    best_f1: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "grid": list(self.grid),
            "f1_by_threshold": list(self.f1_by_threshold),
            "chosen": self.chosen,
            "best_f1": self.best_f1,
        }


class _RingBuffer:
    """Append-only deque that counts what the capacity bound dropped."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("provenance capacity must be at least 1")
        self._items: Deque[Any] = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, item: Any) -> None:
        if len(self._items) == self._items.maxlen:
            self.dropped += 1
        self._items.append(item)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


class ProvenanceRecorder:
    """Collects one run's decision records into bounded ring buffers.

    The *subject scope* mirrors :meth:`Observability.component
    <repro.obs.instrument.Observability.component>`: the acquirer enters
    ``subject(interface_id, attribute)`` around each component call, so
    the Surface discoverer can record without threading identity through
    every internal method. Recording while suspended (see
    :meth:`suspended`) is a no-op — the automatic threshold search uses
    this so its grid of exploratory matching runs does not flood the
    explanation buffer that the invariant laws tie to the *final* match.
    """

    def __init__(self, capacity: int = DEFAULT_PROVENANCE_CAPACITY) -> None:
        self.capacity = capacity
        self._lineage = _RingBuffer(capacity)
        self._prunes = _RingBuffer(capacity)
        self._explanations = _RingBuffer(capacity)
        self._merges = _RingBuffer(capacity)
        self._discoveries = _RingBuffer(capacity)
        self._threshold_searches: List[ThresholdSearchRecord] = []
        self._subjects: List[AttrKey] = []
        self._suspended = 0

    # ------------------------------------------------------------- scoping
    @contextmanager
    def subject(self, interface_id: str, attribute: str) -> Iterator[None]:
        """Attribute records made inside the block to one attribute."""
        self._subjects.append((interface_id, attribute))
        try:
            yield
        finally:
            self._subjects.pop()

    @property
    def active_subject(self) -> AttrKey:
        return self._subjects[-1] if self._subjects else ("", "")

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Drop every record made inside the block (exploratory work)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    @property
    def recording(self) -> bool:
        return self._suspended == 0

    # ----------------------------------------------------------- recording
    def record_lineage(self, lineage: InstanceLineage) -> None:
        if self.recording:
            self._lineage.append(lineage)

    def record_prune(self, prune: PruneEvent) -> None:
        if self.recording:
            self._prunes.append(prune)

    def record_discovery(self, summary: DiscoverySummary) -> None:
        if self.recording:
            self._discoveries.append(summary)

    def record_explanation(self, explanation: MatchExplanation) -> None:
        if self.recording:
            self._explanations.append(explanation)

    def record_merge(self, merge: MergeStep) -> None:
        if self.recording:
            self._merges.append(merge)

    def record_threshold_search(self, record: ThresholdSearchRecord) -> None:
        if self.recording:
            self._threshold_searches.append(record)

    # ------------------------------------------------------------- queries
    @property
    def lineage(self) -> List[InstanceLineage]:
        return list(self._lineage)

    @property
    def prunes(self) -> List[PruneEvent]:
        return list(self._prunes)

    @property
    def discoveries(self) -> List[DiscoverySummary]:
        return list(self._discoveries)

    @property
    def explanations(self) -> List[MatchExplanation]:
        return list(self._explanations)

    @property
    def merges(self) -> List[MergeStep]:
        return list(self._merges)

    @property
    def threshold_searches(self) -> List[ThresholdSearchRecord]:
        return list(self._threshold_searches)

    @property
    def dropped(self) -> Dict[str, int]:
        """Records each ring buffer's bound discarded (all 0 normally)."""
        return {
            "lineage": self._lineage.dropped,
            "prunes": self._prunes.dropped,
            "discoveries": self._discoveries.dropped,
            "explanations": self._explanations.dropped,
            "merges": self._merges.dropped,
        }

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def lineage_for(self, interface_id: str,
                    attribute: Optional[str] = None) -> List[InstanceLineage]:
        """Lineage records of one interface (optionally one attribute)."""
        return [
            record for record in self._lineage
            if record.interface_id == interface_id
            and (attribute is None or record.attribute == attribute)
        ]

    def prunes_for(self, interface_id: str,
                   attribute: Optional[str] = None) -> List[PruneEvent]:
        return [
            record for record in self._prunes
            if record.interface_id == interface_id
            and (attribute is None or record.attribute == attribute)
        ]

    def explanation_for(self, a: AttrKey, b: AttrKey
                        ) -> Optional[MatchExplanation]:
        """The evaluation record of one unordered attribute pair."""
        wanted = frozenset((a, b))
        for explanation in self._explanations:
            if frozenset((explanation.a, explanation.b)) == wanted:
                return explanation
        return None

    def explanations_involving(self, needle: str) -> List[MatchExplanation]:
        """Explanations touching any attribute whose name contains ``needle``
        (case-insensitive; matches the attribute name or interface id)."""
        low = needle.lower()

        def hit(key: AttrKey) -> bool:
            return low in key[0].lower() or low in key[1].lower()

        return [
            explanation for explanation in self._explanations
            if hit(explanation.a) or hit(explanation.b)
        ]

    def committing_merge(self, a: AttrKey, b: AttrKey) -> Optional[MergeStep]:
        """The merge step that first put ``a`` and ``b`` together."""
        for merge in self._merges:
            if merge.commits(a, b):
                return merge
        return None

    # -------------------------------------------------------------- export
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (insertion order, deterministic)."""
        return {
            "version": 1,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "lineage": [record.to_dict() for record in self._lineage],
            "prunes": [record.to_dict() for record in self._prunes],
            "discoveries": [
                record.to_dict() for record in self._discoveries
            ],
            "explanations": [
                record.to_dict() for record in self._explanations
            ],
            "merges": [record.to_dict() for record in self._merges],
            "threshold_searches": [
                record.to_dict() for record in self._threshold_searches
            ],
        }

    def summary(self) -> str:
        """One CLI-ready line, mirroring the other layers' summaries."""
        line = (
            f"provenance: {len(self._lineage)} lineage, "
            f"{len(self._prunes)} prunes, "
            f"{len(self._explanations)} explanations, "
            f"{len(self._merges)} merges"
        )
        if self.total_dropped:
            line += f" ({self.total_dropped} dropped at capacity)"
        return line
