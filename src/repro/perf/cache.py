"""Shared query-result caching for the Web substrates.

Search-engine round trips dominate WebIQ's cost model (paper §5, Figure 8),
and the same queries recur constantly: every interface with an "Author"
attribute issues the same eight extraction queries, every classifier
trained for a concept re-scores the same popular instances, and the
Attr-Surface train/predict passes re-ask the marginals the Surface phase
already asked. This module makes that redundancy free:

- :class:`CachingSearchEngine` — a transparent wrapper memoising
  ``search`` / ``num_hits`` / ``num_hits_proximity`` by normalised query
  key in a bounded LRU, with hit/miss/eviction accounting
  (:class:`CacheStats`);
- :class:`ValidationCache` — the run-wide memo of marginal and joint hit
  counts that every :class:`~repro.core.surface.WebValidator` of one
  pipeline run shares, so phrase/candidate/joint counts are reused across
  attributes, interfaces, and classifier training vs. prediction;
- :class:`CacheConfig` — the pipeline-facing knobs.

**Layering.** The cache sits *above* the resilience layer::

    CachingSearchEngine -> ResilientSearchEngine -> FlakySearchEngine -> engine

A cache hit therefore never reaches :class:`~repro.resilience.ResilientClient`:
it consumes no query budget, charges no retry or backoff accounting, and
adds nothing to Figure 8's overhead — exactly the behaviour of a real
system answering from its own cache instead of the network.

**Only successful answers are cached.** A degraded answer (retries
exhausted, breaker open, budget spent — the resilient proxy's neutral
``[]``/``0``) and a garbled answer (truncated payload that slipped through
as a "success") describe the Web's mood, not the query's answer; caching
one would pin a transient failure for the rest of the run. The wrapper
detects both through the resilient proxy's ``last_degraded`` flag and the
flaky wrapper's ``garbled_count``, and simply declines to store.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.surfaceweb.engine import DEFAULT_PROXIMITY_WINDOW, SearchResult

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "CacheConfig",
    "CachePreload",
    "CacheStats",
    "LRUCache",
    "CachingSearchEngine",
    "ValidationCache",
    "normalize_query",
]

#: Default LRU capacity: comfortably holds every distinct query of a
#: 20-interface domain run while still bounding a long-lived service.
DEFAULT_CACHE_ENTRIES = 65536


def normalize_query(query: str) -> str:
    """Canonical cache-key form of a query string.

    Case and surrounding/internal whitespace runs are insignificant to the
    engine (the parser and tokenizer lower-case every term), so queries
    differing only there share one cache entry.
    """
    return " ".join(query.split()).lower()


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache's lifetime."""

    max_entries: int = DEFAULT_CACHE_ENTRIES
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    #: answers seen but not stored (degraded / garbled — see module docs)
    uncacheable: int = 0
    #: per-query-kind hit/miss split ("search", "num_hits", "proximity")
    hits_by_kind: Dict[str, int] = field(default_factory=dict)
    misses_by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def note_hit(self, kind: str) -> None:
        self.hits += 1
        self.hits_by_kind[kind] = self.hits_by_kind.get(kind, 0) + 1

    def note_miss(self, kind: str) -> None:
        self.misses += 1
        self.misses_by_kind[kind] = self.misses_by_kind.get(kind, 0) + 1

    def summary(self) -> str:
        """One CLI-ready line, mirroring the degradation report's tone."""
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.evictions} evictions, "
            f"{self.uncacheable} uncacheable"
        )

    # --------------------------------------------------- checkpoint support
    def state_payload(self) -> Dict[str, Any]:
        """The counters as of now, JSON-ready (``max_entries`` is config,
        not state — it travels with the run, not the journal)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "hits_by_kind": dict(self.hits_by_kind),
            "misses_by_kind": dict(self.misses_by_kind),
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        """Inverse of :meth:`state_payload`."""
        self.hits = payload["hits"]
        self.misses = payload["misses"]
        self.evictions = payload["evictions"]
        self.stores = payload["stores"]
        self.uncacheable = payload["uncacheable"]
        self.hits_by_kind = dict(payload["hits_by_kind"])
        self.misses_by_kind = dict(payload["misses_by_kind"])


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    Reads refresh recency; writes beyond ``max_entries`` evict from the
    cold end. Eviction counts flow into the attached :class:`CacheStats`.
    """

    def __init__(self, max_entries: int, stats: Optional[CacheStats] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.stats = stats if stats is not None else CacheStats(max_entries)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key not in self._data:
            return default
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        self.stats.stores += 1
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def keys(self) -> List[Hashable]:
        """Keys from least- to most-recently used (for tests/inspection)."""
        return list(self._data)

    def items(self) -> List[Tuple[Hashable, Any]]:
        """Entries from least- to most-recently used (snapshot support)."""
        return list(self._data.items())

    # --------------------------------------------------- checkpoint support
    def touch(self, key: Hashable) -> None:
        """Replay a historical hit: refresh recency without stats.

        The counters were already accounted when the hit happened in the
        killed process (and come back via the journaled stats snapshot);
        replay must only reproduce the recency ordering.
        """
        if key not in self._data:
            raise KeyError(key)
        self._data.move_to_end(key)

    def seed(self, key: Hashable, value: Any) -> None:
        """Replay a historical store: insert (evicting if full), no stats."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)


@dataclass(frozen=True)
class CacheConfig:
    """Pipeline-facing cache knobs (attach to ``WebIQConfig.cache``)."""

    max_entries: int = DEFAULT_CACHE_ENTRIES

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be at least 1")


class CachingSearchEngine:
    """Memoising drop-in wrapper for anything engine-shaped.

    Wraps the raw :class:`~repro.surfaceweb.engine.SearchEngine` or the
    resilient proxy; components keep calling ``search`` / ``num_hits`` /
    ``num_hits_proximity`` exactly as before. ``query_count`` delegates to
    the wrapped engine, so it keeps counting *real* round trips only —
    cache hits are free by construction, which is what keeps Figure 8's
    overhead model honest.
    """

    def __init__(
        self,
        inner,
        max_entries: int = DEFAULT_CACHE_ENTRIES,
        stats: Optional[CacheStats] = None,
        obs=None,
    ) -> None:
        """``obs``, when given, is a :class:`~repro.obs.Observability`
        bundle; every lookup outcome then also bumps its
        ``cache.lookups``/``cache.stores`` counters so the invariant
        checker can reconcile them against :class:`CacheStats`. Purely
        observational — the cache behaves identically without it."""
        self.inner = inner
        self.stats = stats if stats is not None else CacheStats(max_entries)
        self._cache = LRUCache(max_entries, self.stats)
        self.obs = obs
        #: optional callable receiving one op per cache mutation or
        #: recency touch — ``("h", key)`` for a hit, ``("s", key, value)``
        #: for a store. The checkpoint layer records these per unit so a
        #: resumed run can rebuild the exact LRU content *and ordering*
        #: without re-fetching. Purely observational.
        self.oplog: Optional[Any] = None

    # ------------------------------------------------------- engine facade
    @property
    def query_count(self) -> int:
        return self.inner.query_count

    def reset_query_count(self) -> None:
        self.inner.reset_query_count()

    @property
    def n_documents(self) -> int:
        return self.inner.n_documents

    def search(self, query: str, max_results: int = 10) -> List[SearchResult]:
        key = ("search", normalize_query(query), max_results)
        return self._lookup("search", key, lambda: self.inner.search(query, max_results))

    def num_hits(self, query: str) -> int:
        key = ("num_hits", normalize_query(query))
        return self._lookup("num_hits", key, lambda: self.inner.num_hits(query))

    def num_hits_proximity(
        self,
        phrase_a: str,
        phrase_b: str,
        window: int = DEFAULT_PROXIMITY_WINDOW,
    ) -> int:
        key = (
            "proximity",
            normalize_query(phrase_a),
            normalize_query(phrase_b),
            window,
        )
        return self._lookup(
            "proximity",
            key,
            lambda: self.inner.num_hits_proximity(phrase_a, phrase_b, window),
        )

    # ---------------------------------------------------------- internals
    def _lookup(self, kind: str, key: Tuple, fetch) -> Any:
        sentinel = object()
        value = self._cache.get(key, sentinel)
        if value is not sentinel:
            self.stats.note_hit(kind)
            self._note_obs("lookups", kind, "hit")
            if self.oplog is not None:
                self.oplog(("h", key))
            return value
        self.stats.note_miss(kind)
        self._note_obs("lookups", kind, "miss")
        garbled_before = self._garbled_count()
        value = fetch()
        if self._answer_is_clean(garbled_before):
            self._cache.put(key, value)
            self._note_obs("stores", kind, "stored")
            if self.oplog is not None:
                self.oplog(("s", key, value))
        else:
            self.stats.uncacheable += 1
            self._note_obs("stores", kind, "refused")
        return value

    # ----------------------------------------- checkpoint/snapshot support
    def snapshot_entries(self) -> List[Tuple[Tuple, Any]]:
        """The cache's content in recency order (cold to hot).

        The speculative executor copies this into each worker's isolated
        cache clone so a speculation predicts the same hit/miss pattern —
        and therefore the same raw round trips — as the upcoming commit.
        """
        return self._cache.items()

    def replay_hit(self, key: Tuple) -> None:
        """Re-apply a journaled hit: recency only, no stats, no oplog."""
        self._cache.touch(key)

    def replay_store(self, key: Tuple, value: Any) -> None:
        """Re-apply a journaled store: content only, no stats, no oplog."""
        self._cache.seed(key, value)

    def _note_obs(self, counter: str, kind: str, outcome: str) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(
                f"cache.{counter}", kind=kind, outcome=outcome
            ).inc()

    def _answer_is_clean(self, garbled_before: int) -> bool:
        """Was the answer a real one (not degraded, not garbled)?"""
        if getattr(self.inner, "last_degraded", False):
            return False
        return self._garbled_count() == garbled_before

    def _garbled_count(self) -> int:
        """Total garbled faults injected below us (0 on pristine stacks)."""
        layer = self.inner
        while layer is not None:
            count = getattr(layer, "garbled_count", None)
            if count is not None:
                return count
            layer = getattr(layer, "inner", None)
        return 0


class ValidationCache:
    """Run-wide memo of validation hit counts.

    One instance is shared by every :class:`~repro.core.surface.WebValidator`
    of a pipeline run (the Surface discoverer's and the Attr-Surface
    classifier's), replacing the per-validator dicts that used to silo the
    counts: a phrase marginal asked during Surface validation is now free
    when Attr-Surface training asks it again. Keys are lower-cased; joints
    key on ``(phrase, candidate, proximity)`` because the adjacency and
    windowed queries answer different questions.
    """

    def __init__(self) -> None:
        self.phrase_hits: Dict[str, int] = {}
        self.candidate_hits: Dict[str, int] = {}
        self.joint_hits: Dict[Tuple[str, str, int], int] = {}

    def __len__(self) -> int:
        return (
            len(self.phrase_hits)
            + len(self.candidate_hits)
            + len(self.joint_hits)
        )

    def clone(self) -> "ValidationCache":
        """An independent copy (snapshot isolation for speculative runs)."""
        copy = ValidationCache()
        copy.phrase_hits = dict(self.phrase_hits)
        copy.candidate_hits = dict(self.candidate_hits)
        copy.joint_hits = dict(self.joint_hits)
        return copy

    # --------------------------------------------------- checkpoint support
    #
    # Entries are memo-style (written once, never overwritten), so the
    # counts added by one unit of work are exactly the insertion-order
    # tail of each dict past a pre-unit length mark. The checkpoint layer
    # journals that tail and merges it back on replay.

    def mark(self) -> Tuple[int, int, int]:
        """Position marker: the three dict lengths as of now."""
        return (
            len(self.phrase_hits),
            len(self.candidate_hits),
            len(self.joint_hits),
        )

    def delta_since(self, mark: Tuple[int, int, int]) -> Dict[str, list]:
        """Entries added after ``mark``, JSON-ready (joint keys as lists)."""
        p, c, j = mark
        return {
            "phrase_hits": [
                [k, v] for k, v in list(self.phrase_hits.items())[p:]
            ],
            "candidate_hits": [
                [k, v] for k, v in list(self.candidate_hits.items())[c:]
            ],
            "joint_hits": [
                [list(k), v] for k, v in list(self.joint_hits.items())[j:]
            ],
        }

    def merge_delta(self, payload: Dict[str, list]) -> None:
        """Inverse of :func:`delta_since`: re-insert a journaled tail."""
        for key, value in payload["phrase_hits"]:
            self.phrase_hits[key] = value
        for key, value in payload["candidate_hits"]:
            self.candidate_hits[key] = value
        for (phrase, candidate, window), value in payload["joint_hits"]:
            self.joint_hits[(phrase, candidate, window)] = value


class CachePreload:
    """A first-class warm-start input: one run's cache content, portable.

    Captured from a finished run's :class:`CachingSearchEngine` and
    :class:`ValidationCache`, and applied to a fresh run *before* any unit
    executes — the warm run then sees cache hits exactly where the donor
    run would have, spending no round trips on answers already paid for.
    This is the unit of state the matching service's copy-on-write epochs
    hand from one request to the next, and it is deliberately symmetric:
    a service request and a standalone :meth:`WebIQMatcher.run
    <repro.core.pipeline.WebIQMatcher.run>` given the same preload follow
    the same code path, which is what makes their exports byte-identical
    by construction.

    The snapshot is value-isolated from its donor (entry lists are
    copied), so a later run can never mutate a published epoch through
    it. ``fingerprint()`` gives a stable identity that enters the journal
    meta of warm runs: resuming a warm journal with a *different* preload
    is refused, because the replayed hit pattern would not match.
    """

    def __init__(self, engine_entries=None, validation=None) -> None:
        #: cache entries in recency order (cold to hot), as ``(key, value)``
        self.engine_entries: List[Tuple[Tuple, Any]] = [
            (key, list(value) if isinstance(value, list) else value)
            for key, value in (engine_entries or [])
        ]
        #: the donor run's validation memo (marginal/joint hit counts)
        self.validation: ValidationCache = (
            validation.clone() if validation is not None else ValidationCache()
        )

    @classmethod
    def capture(
        cls,
        cache_engine: "CachingSearchEngine",
        validation_cache: Optional[ValidationCache] = None,
    ) -> "CachePreload":
        """Snapshot a run's cache content (recency order preserved)."""
        return cls(
            engine_entries=cache_engine.snapshot_entries(),
            validation=validation_cache,
        )

    def apply(
        self,
        cache_engine: "CachingSearchEngine",
        validation_cache: Optional[ValidationCache] = None,
    ) -> None:
        """Seed a fresh run's caches with this snapshot.

        Seeding uses the replay path (content and recency only, no
        stats): the warm run's :class:`CacheStats` start at zero and then
        count *its own* hits against the preloaded content, exactly as a
        long-lived cache would.
        """
        for key, value in self.engine_entries:
            cache_engine.replay_store(
                key, list(value) if isinstance(value, list) else value
            )
        if validation_cache is not None:
            validation_cache.phrase_hits.update(self.validation.phrase_hits)
            validation_cache.candidate_hits.update(
                self.validation.candidate_hits
            )
            validation_cache.joint_hits.update(self.validation.joint_hits)

    @property
    def n_entries(self) -> int:
        return len(self.engine_entries)

    @property
    def is_empty(self) -> bool:
        return not self.engine_entries and not len(self.validation)

    def fingerprint(self) -> int:
        """Stable identity of the snapshot (CRC over its canonical repr).

        Enters the journal meta of warm runs, so a journal written under
        one preload refuses to resume under another.
        """
        canon = repr((
            [(key, value) for key, value in self.engine_entries],
            sorted(self.validation.phrase_hits.items()),
            sorted(self.validation.candidate_hits.items()),
            sorted(self.validation.joint_hits.items()),
        ))
        return zlib.crc32(canon.encode("utf-8"))
