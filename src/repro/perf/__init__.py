"""repro.perf — hot-path performance layers for the Web substrates.

Currently: transparent query-result caching (:mod:`repro.perf.cache`).
The layering contract is documented there; the short version is that the
cache composes *above* the resilience layer, caches only successful
answers, and keeps ``query_count``/budget/latency accounting charging
real round trips only.
"""

from repro.perf.cache import (
    DEFAULT_CACHE_ENTRIES,
    CacheConfig,
    CachePreload,
    CacheStats,
    CachingSearchEngine,
    LRUCache,
    ValidationCache,
    normalize_query,
)

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "CacheConfig",
    "CachePreload",
    "CacheStats",
    "CachingSearchEngine",
    "LRUCache",
    "ValidationCache",
    "normalize_query",
]
