"""Match error analysis: where did a matching run go wrong, and why?

Evaluation metrics say *how much* went wrong; integration work needs to
know *what*. This module diffs a matching result against expert truth and
aggregates the errors by label pair — the unit a person debugging a
matcher actually thinks in ("`Departure city` keeps merging with
`Departure date`").

Example::

    from repro.analysis import analyze_errors

    report = analyze_errors(run.match_result, dataset)
    for error in report.top_missed(5):
        print(error)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.datasets.dataset import DomainDataset
from repro.matching.clustering import MatchResult
from repro.matching.metrics import MatchMetrics, evaluate_matches

__all__ = ["LabelPairErrors", "ErrorReport", "analyze_errors"]

AttrKey = Tuple[str, str]
Pair = FrozenSet[AttrKey]


@dataclass(frozen=True)
class LabelPairErrors:
    """All errors between one unordered pair of labels."""

    labels: Tuple[str, str]
    count: int
    kind: str  # "missed" or "wrong"
    #: example attribute pairs (capped), for drilling down
    examples: Tuple[Tuple[AttrKey, AttrKey], ...]

    def __str__(self) -> str:
        a, b = self.labels
        verb = "missed" if self.kind == "missed" else "wrongly merged"
        return f"{verb} {self.count}x: {a!r} <-> {b!r}"


@dataclass
class ErrorReport:
    """The full diff of one matching run against the ground truth."""

    metrics: MatchMetrics
    missed: List[LabelPairErrors]
    wrong: List[LabelPairErrors]
    #: missed pairs where at least one side has no instances at all — the
    #: paper's core failure mode, and the share WebIQ is meant to erase
    missed_involving_no_instances: int

    def top_missed(self, n: int = 10) -> List[LabelPairErrors]:
        return self.missed[:n]

    def top_wrong(self, n: int = 10) -> List[LabelPairErrors]:
        return self.wrong[:n]

    @property
    def total_missed(self) -> int:
        return sum(e.count for e in self.missed)

    @property
    def total_wrong(self) -> int:
        return sum(e.count for e in self.wrong)


def analyze_errors(
    match_result: MatchResult,
    dataset: DomainDataset,
    max_examples: int = 3,
) -> ErrorReport:
    """Diff ``match_result`` against ``dataset``'s ground truth."""
    truth = dataset.ground_truth.match_pairs()
    predicted = match_result.match_pairs()

    labels: Dict[AttrKey, str] = {}
    instance_counts: Dict[AttrKey, int] = {}
    for interface in dataset.interfaces:
        for attribute in interface.attributes:
            key = (interface.interface_id, attribute.name)
            labels[key] = attribute.label
            instance_counts[key] = len(attribute.all_instances())

    missed_pairs = truth - predicted
    wrong_pairs = predicted - truth

    missed_no_inst = sum(
        1 for pair in missed_pairs
        if any(instance_counts.get(key, 0) == 0 for key in pair)
    )

    return ErrorReport(
        metrics=evaluate_matches(predicted, truth),
        missed=_group(missed_pairs, labels, "missed", max_examples),
        wrong=_group(wrong_pairs, labels, "wrong", max_examples),
        missed_involving_no_instances=missed_no_inst,
    )


def _group(
    pairs: Set[Pair],
    labels: Dict[AttrKey, str],
    kind: str,
    max_examples: int,
) -> List[LabelPairErrors]:
    counts: Counter = Counter()
    examples: Dict[Tuple[str, str], List[Tuple[AttrKey, AttrKey]]] = {}
    for pair in pairs:
        a, b = sorted(pair)
        label_pair = tuple(sorted((labels.get(a, "?"), labels.get(b, "?"))))
        counts[label_pair] += 1
        bucket = examples.setdefault(label_pair, [])
        if len(bucket) < max_examples:
            bucket.append((a, b))
    grouped = [
        LabelPairErrors(
            labels=label_pair,
            count=count,
            kind=kind,
            examples=tuple(examples[label_pair]),
        )
        for label_pair, count in counts.items()
    ]
    grouped.sort(key=lambda e: (-e.count, e.labels))
    return grouped
