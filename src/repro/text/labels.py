"""Attribute-label syntax analysis (paper §2.1, "Analyze Label Syntax").

Given an attribute label, determine its syntactic form — noun phrase,
prepositional phrase (preposition + NP), noun-phrase conjunction, verb
phrase, or other — and extract the noun phrase(s) that extraction queries
will be built from:

- for a prepositional phrase, "the noun phrase after the preposition is
  obtained" (``From city`` -> ``city``);
- for a conjunction, "all noun phrases in the conjunction are obtained"
  (``First name or last name`` -> ``first name``, ``last name``);
- if the label contains no noun phrase (e.g. a bare preposition ``From`` or
  verb phrase ``Depart from``), extraction terminates with no instances.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.text.chunker import chunk_tags, noun_phrase_at, split_conjunction
from repro.text.morphology import pluralize_phrase
from repro.text.postag import BrillTagger, TaggedToken, default_tagger

__all__ = ["LabelForm", "NounPhrase", "LabelAnalysis", "analyze_label", "clean_label"]


class LabelForm(enum.Enum):
    """Syntactic form of an attribute label."""

    NOUN_PHRASE = "noun_phrase"
    PREPOSITIONAL_PHRASE = "prepositional_phrase"
    NP_CONJUNCTION = "np_conjunction"
    VERB_PHRASE = "verb_phrase"
    OTHER = "other"
    EMPTY = "empty"


@dataclass(frozen=True)
class NounPhrase:
    """A noun phrase extracted from a label, ready for query formulation.

    ``text`` is the phrase without determiners, lower-cased; ``head_index``
    locates the head noun within ``text``'s words so the plural form inflects
    the right word ("class of service" -> "classes of service").
    """

    text: str
    head_index: int

    @property
    def head(self) -> str:
        return self.text.split()[self.head_index]

    @property
    def plural(self) -> str:
        return pluralize_phrase(self.text, self.head_index)


@dataclass(frozen=True)
class LabelAnalysis:
    """Result of analysing one attribute label."""

    label: str
    form: LabelForm
    noun_phrases: Tuple[NounPhrase, ...]

    @property
    def has_noun_phrase(self) -> bool:
        return bool(self.noun_phrases)


_DECORATION_RE = re.compile(r"[:*?!()\[\]{}\"]|\.{2,}")


def clean_label(label: str) -> str:
    """Strip form decoration (colons, asterisks, parentheses) from a label.

    >>> clean_label("Departure City:*")
    'Departure City'
    """
    return " ".join(_DECORATION_RE.sub(" ", label).split())


def _np_from_chunk(tokens: Sequence[TaggedToken], start: int, end: int,
                   head: int) -> NounPhrase:
    """Build a :class:`NounPhrase`, dropping any leading determiner."""
    span = list(tokens[start:end])
    offset = start
    if span and span[0].tag in ("DT", "PRP$"):
        span = span[1:]
        offset += 1
    text = " ".join(t.word.lower() for t in span)
    return NounPhrase(text=text, head_index=head - offset)


def analyze_label(label: str, tagger: Optional[BrillTagger] = None) -> LabelAnalysis:
    """Analyse an attribute label's syntax (paper §2.1).

    >>> analyze_label("Departure city").form
    <LabelForm.NOUN_PHRASE: 'noun_phrase'>
    >>> analyze_label("From city").noun_phrases[0].text
    'city'
    >>> analyze_label("From").has_noun_phrase
    False
    >>> [np.text for np in analyze_label("First name or last name").noun_phrases]
    ['first name', 'last name']
    """
    tagger = tagger or default_tagger()
    cleaned = clean_label(label)
    if not cleaned:
        return LabelAnalysis(label, LabelForm.EMPTY, ())
    tokens = tagger.tag(cleaned)
    word_tokens = [t for t in tokens if t.tag != "PUNCT" or t.word == ","]

    conj = split_conjunction(word_tokens)
    if conj is not None:
        nps = tuple(
            _np_from_chunk(word_tokens, c.start, c.end, c.head) for c in conj
        )
        return LabelAnalysis(label, LabelForm.NP_CONJUNCTION, nps)

    # Whole label is a noun phrase?
    np = noun_phrase_at(word_tokens, 0)
    if np is not None and np.end == len(word_tokens):
        return LabelAnalysis(
            label, LabelForm.NOUN_PHRASE,
            (_np_from_chunk(word_tokens, np.start, np.end, np.head),),
        )

    first_tag = word_tokens[0].tag
    if first_tag in ("IN", "TO"):
        inner = noun_phrase_at(word_tokens, 1)
        nps = (
            (_np_from_chunk(word_tokens, inner.start, inner.end, inner.head),)
            if inner is not None and inner.end == len(word_tokens)
            else ()
        )
        return LabelAnalysis(label, LabelForm.PREPOSITIONAL_PHRASE, nps)

    if first_tag.startswith("VB") or first_tag == "MD":
        # Verb phrase: "Depart from", "Departing from city". A trailing NP
        # (after an optional preposition) is usable for extraction.
        i = 1
        if i < len(word_tokens) and word_tokens[i].tag in ("IN", "TO"):
            i += 1
        inner = noun_phrase_at(word_tokens, i)
        nps = (
            (_np_from_chunk(word_tokens, inner.start, inner.end, inner.head),)
            if inner is not None and inner.end == len(word_tokens)
            else ()
        )
        return LabelAnalysis(label, LabelForm.VERB_PHRASE, nps)

    # Fall back: scan for any NP inside an otherwise unclassified label.
    for chunk in chunk_tags(word_tokens):
        if chunk.kind == "NP":
            return LabelAnalysis(
                label, LabelForm.OTHER,
                (_np_from_chunk(word_tokens, chunk.start, chunk.end, chunk.head),),
            )
    return LabelAnalysis(label, LabelForm.OTHER, ())
