"""POS-pattern chunking: noun phrases, prepositional phrases, conjunctions.

Implements the paper's shallow pattern-matching stage (§2.1): "the pattern
for noun phrases is: optional determiner + optional modifiers
(adjectives/noun-adjectives) + noun + optional post-modifier (e.g.,
prepositional phrase)". Such pattern matching over POS tags "has been shown
to be more accurate in many applications than more sophisticated syntactic
parsing" [17], and it is all WebIQ needs for short attribute labels and
snippet completions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.text.postag import TaggedToken

__all__ = ["Chunk", "chunk_tags", "find_noun_phrases", "noun_phrase_at"]

_NOUN_TAGS = frozenset({"NN", "NNS", "NNP", "NNPS"})
_MODIFIER_TAGS = frozenset({"JJ", "JJR", "JJS", "CD", "VBG", "VBN"}) | _NOUN_TAGS
_DET_TAGS = frozenset({"DT", "PRP$"})


@dataclass(frozen=True)
class Chunk:
    """A labelled span over a tagged token sequence.

    ``kind`` is one of ``"NP"``, ``"PP"``, ``"VP"``; ``start``/``end`` are
    token indices (end exclusive); ``head`` is the index of the head noun for
    NP/PP chunks (the noun before any post-modifier).
    """

    kind: str
    start: int
    end: int
    head: Optional[int] = None

    def text(self, tokens: Sequence[TaggedToken]) -> str:
        return " ".join(t.word for t in tokens[self.start:self.end])

    def head_word(self, tokens: Sequence[TaggedToken]) -> Optional[str]:
        return tokens[self.head].word if self.head is not None else None


def noun_phrase_at(tokens: Sequence[TaggedToken], start: int,
                   allow_postmodifier: bool = True) -> Optional[Chunk]:
    """Match the paper's NP pattern beginning exactly at ``start``.

    Pattern: optional determiner, zero or more modifiers (adjectives /
    noun-adjectives / participles), a head noun, then optionally a
    prepositional post-modifier ``IN + NP`` (without further recursion).
    Returns ``None`` if no NP starts at ``start``.
    """
    i = start
    n = len(tokens)
    if i < n and tokens[i].tag in _DET_TAGS:
        i += 1
    # Greedily absorb modifier+noun runs; the head is the last noun in the run.
    head = None
    cd_head = None
    while i < n and tokens[i].tag in _MODIFIER_TAGS:
        if tokens[i].tag in _NOUN_TAGS:
            head = i
        elif tokens[i].tag == "CD":
            cd_head = i
        i += 1
    if head is None:
        # Bare numbers act as NPs in completions ("prices such as $5,000,
        # $10,000"; "years such as 1994").
        if cd_head is None:
            return None
        return Chunk("NP", start, cd_head + 1, head=cd_head)
    end = head + 1
    # Absorb trailing numbers into the NP ("Jan 15", "Boeing 747").
    while end < n and tokens[end].tag == "CD":
        end += 1
    # Trailing modifiers after the last noun are not part of this NP; back up.
    i = end
    if allow_postmodifier and i < n and tokens[i].tag == "IN":
        inner = noun_phrase_at(tokens, i + 1, allow_postmodifier=False)
        if inner is not None:
            end = inner.end
    return Chunk("NP", start, end, head=head)


def chunk_tags(tokens: Sequence[TaggedToken]) -> List[Chunk]:
    """Greedy left-to-right chunking of a tagged sequence into NP/PP/VP.

    Prepositional phrases are recognised as ``IN + NP``; verb phrases as a
    verb optionally followed by a preposition and/or NP. Tokens that fit no
    chunk are skipped.
    """
    chunks: List[Chunk] = []
    i = 0
    n = len(tokens)
    while i < n:
        tag = tokens[i].tag
        if tag == "IN" or tag == "TO":
            inner = noun_phrase_at(tokens, i + 1)
            if inner is not None:
                chunks.append(Chunk("PP", i, inner.end, head=inner.head))
                i = inner.end
                continue
            # Bare preposition ("From") — still a PP span of one token.
            chunks.append(Chunk("PP", i, i + 1, head=None))
            i += 1
            continue
        if tag.startswith("VB") or tag == "MD":
            end = i + 1
            head = None
            if end < n and tokens[end].tag in ("IN", "TO"):
                end += 1
            inner = noun_phrase_at(tokens, end)
            if inner is not None:
                end = inner.end
                head = inner.head
            chunks.append(Chunk("VP", i, end, head=head))
            i = end
            continue
        np = noun_phrase_at(tokens, i)
        if np is not None:
            chunks.append(np)
            i = np.end
            continue
        i += 1
    return chunks


def find_noun_phrases(tokens: Sequence[TaggedToken],
                      max_phrases: Optional[int] = None) -> List[Chunk]:
    """All maximal noun phrases in ``tokens``, left to right.

    Used by the snippet extractor to read off the NP list that completes a
    cue phrase ("... such as Boston, Chicago, and LAX").
    """
    phrases = [c for c in chunk_tags(tokens) if c.kind == "NP"]
    return phrases if max_phrases is None else phrases[:max_phrases]


def split_conjunction(tokens: Sequence[TaggedToken]) -> Optional[List[Chunk]]:
    """Recognise a noun-phrase conjunction: ``NP (CC NP)+``.

    Returns the component NPs when the *entire* sequence is a conjunction of
    noun phrases joined by coordinating conjunctions (optionally with commas),
    else ``None``. Example: "First name or last name".
    """
    parts: List[Chunk] = []
    i = 0
    n = len(tokens)
    saw_cc = False
    while i < n:
        np = noun_phrase_at(tokens, i, allow_postmodifier=False)
        if np is None:
            return None
        parts.append(np)
        i = np.end
        if i == n:
            break
        # separator: comma and/or CC
        if tokens[i].tag == "PUNCT" and tokens[i].word == ",":
            i += 1
        if i < n and tokens[i].tag == "CC":
            saw_cc = True
            i += 1
        elif i < n:
            return None
    return parts if saw_cc and len(parts) >= 2 else None
