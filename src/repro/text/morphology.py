"""English noun pluralisation and singularisation.

Extraction patterns such as ``s1: Ls such as NP1, ..., NPn`` (paper Figure 4)
require the *plural form* of an attribute label: ``departure city`` becomes
``departure cities``, ``class of service`` becomes ``classes of service``.
Only the head noun of a phrase is inflected; for prepositional post-modifiers
the head is the noun *before* the preposition.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["pluralize", "singularize", "pluralize_phrase"]

# Irregular plural forms that no suffix rule covers. Maps singular -> plural.
_IRREGULAR: Dict[str, str] = {
    "child": "children",
    "person": "people",
    "man": "men",
    "woman": "women",
    "foot": "feet",
    "tooth": "teeth",
    "mouse": "mice",
    "goose": "geese",
    "datum": "data",
    "criterion": "criteria",
    "analysis": "analyses",
    "basis": "bases",
    "index": "indexes",  # database usage, not "indices"
    "salesperson": "salespeople",
}
_IRREGULAR_REVERSED: Dict[str, str] = {v: k for k, v in _IRREGULAR.items()}

# Words that are identical in singular and plural.
_UNCHANGED = frozenset({"series", "species", "aircraft", "information", "news"})

_VOWELS = frozenset("aeiou")

# Singular words ending in "s" that must not be mistaken for plurals.
_SINGULAR_S_WORDS = frozenset({
    "class", "business", "address", "status", "process", "bus", "gas",
    "basis", "analysis", "lens", "campus", "census", "bonus", "radius",
    "is", "this", "us", "plus", "species", "series", "access", "express",
})


def _looks_plural(low: str) -> bool:
    """Heuristic: is the lower-cased word already a regular plural?

    English singulars ending in a bare "s" mostly end in "ss"/"us"/"is";
    anything else ending in "s" ("adults", "keywords", "stops") is treated
    as already plural and left unchanged by :func:`pluralize`.
    """
    if low in _SINGULAR_S_WORDS:
        return False
    return (
        len(low) > 2
        and low.endswith("s")
        and not low.endswith(("ss", "us", "is"))
    )


def _match_case(template: str, produced: str) -> str:
    """Give ``produced`` the capitalisation style of ``template``."""
    if template.isupper():
        return produced.upper()
    if template[:1].isupper():
        return produced[:1].upper() + produced[1:]
    return produced


def pluralize(noun: str) -> str:
    """Return the plural of a singular English noun.

    >>> pluralize("city")
    'cities'
    >>> pluralize("class")
    'classes'
    >>> pluralize("make")
    'makes'
    >>> pluralize("Child")
    'Children'
    """
    if not noun:
        return noun
    low = noun.lower()
    if low in _UNCHANGED:
        return noun
    if low in _IRREGULAR:
        return _match_case(noun, _IRREGULAR[low])
    if low in _IRREGULAR_REVERSED or _looks_plural(low):
        return noun  # already plural ("feet", "adults", "keywords")
    if low.endswith(("s", "x", "z", "ch", "sh")):
        return noun + "es"
    if low.endswith("y") and len(low) > 1 and low[-2] not in _VOWELS:
        return noun[:-1] + "ies"
    if low.endswith("fe"):
        return noun[:-2] + "ves"
    if low.endswith("f") and not low.endswith(("ff", "oof", "ief")):
        return noun[:-1] + "ves"
    if low.endswith("o") and len(low) > 1 and low[-2] not in _VOWELS:
        return noun + "es"
    return noun + "s"


def singularize(noun: str) -> str:
    """Return the singular of a plural English noun (best effort).

    Designed so that ``singularize(pluralize(w)) == w`` for the regular nouns
    appearing in interface labels (verified by property-based tests).

    >>> singularize("cities")
    'city'
    >>> singularize("classes")
    'class'
    >>> singularize("makes")
    'make'
    """
    if not noun:
        return noun
    low = noun.lower()
    if low in _UNCHANGED:
        return noun
    if low in _IRREGULAR_REVERSED:
        return _match_case(noun, _IRREGULAR_REVERSED[low])
    if low.endswith("ies") and len(low) > 3:
        return noun[:-3] + "y"
    if low.endswith("ves") and len(low) > 3:
        stem = noun[:-3]
        # "wives" -> "wife"; "leaves" -> "leaf". Prefer "fe" after a vowel+l? —
        # the labels we meet (lives, knives) all take "fe".
        if low[-4] in "il":
            return stem + "fe"
        return stem + "f"
    if low.endswith(("ses", "xes", "zes", "ches", "shes")) and len(low) > 3:
        return noun[:-2]
    if low.endswith("oes") and len(low) > 3:
        return noun[:-2]
    if low.endswith("s") and not low.endswith("ss"):
        return noun[:-1]
    return noun


def pluralize_phrase(phrase: str, head_index: int = -1) -> str:
    """Pluralise the head word of a multi-word phrase.

    ``head_index`` is the position of the head noun among the phrase's
    whitespace-separated words; by default the last word is the head, which is
    correct for plain noun phrases ("departure city" -> "departure cities").
    For phrases with prepositional post-modifiers, pass the head's position
    ("class of service", head 0 -> "classes of service").

    >>> pluralize_phrase("departure city")
    'departure cities'
    >>> pluralize_phrase("class of service", head_index=0)
    'classes of service'
    """
    parts = phrase.split()
    if not parts:
        return phrase
    if head_index < 0:
        head_index += len(parts)
    if not 0 <= head_index < len(parts):
        raise ValueError(f"head_index {head_index} out of range for {phrase!r}")
    parts[head_index] = pluralize(parts[head_index])
    return " ".join(parts)
