"""Tokenisation for labels, snippets and synthetic Surface-Web pages.

The tokeniser is deliberately simple and transparent: WebIQ only ever deals
with short attribute labels ("Departure city") and search-result snippets, so
a regular-expression word tokeniser with an explicit sentence splitter covers
the whole input distribution while staying easy to reason about in tests.
"""

from __future__ import annotations

import re
from typing import List

from repro.util import counters as work

__all__ = ["tokenize", "words", "sentences", "normalize"]

# A token is a run of word characters (letters/digits, allowing internal
# apostrophes, hyphens, periods in abbreviations like "U.S."), a currency
# amount, or a single punctuation character.
_TOKEN_RE = re.compile(
    r"""
    \$?\d{1,3}(?:,\d{3})+(?:\.\d+)?   # grouped numbers: $15,200 / 1,200.50
  | \$\d+(?:\.\d+)?           # plain monetary values: $9.99
  | \d+(?:st|nd|rd|th)\b      # ordinals: 1st, 2nd, 15th
  | \d+(?:\.\d+)?             # plain numbers: 1994 or 3.5
  | (?:[A-Za-z]\.){2,}        # dotted abbreviations: J.K., U.S.
  | [A-Za-z]{2,3}\.(?=\s+[A-Z0-9])  # short abbreviations: "St." before a capital
  | [A-Za-z](?:[A-Za-z'\-]*[A-Za-z])?   # words, incl. hyphenated/apostrophes
  | [^\sA-Za-z0-9]            # any single punctuation mark
    """,
    re.VERBOSE,
)

_SENTENCE_END_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z\"$\d])")


def tokenize(text: str) -> List[str]:
    """Split ``text`` into word and punctuation tokens.

    >>> tokenize("Makes such as Honda, Toyota.")
    ['Makes', 'such', 'as', 'Honda', ',', 'Toyota', '.']
    >>> tokenize("price is $15,200")
    ['price', 'is', '$15,200']
    """
    if work.ACTIVE is not None:
        work.ACTIVE.bump("tokenizer.calls")
    return _TOKEN_RE.findall(text)


def words(text: str) -> List[str]:
    """Like :func:`tokenize` but keeping only word/number tokens.

    >>> words("From: city, please!")
    ['From', 'city', 'please']
    """
    return [t for t in tokenize(text) if t[0].isalnum() or t.startswith("$")]


def sentences(text: str) -> List[str]:
    """Split ``text`` into sentences on terminal punctuation.

    Splitting only before a capital letter, digit, quote or currency sign
    avoids breaking abbreviations mid-sentence in most snippet text.

    >>> sentences("Fly cheap. Airlines such as Delta serve Boston.")
    ['Fly cheap.', 'Airlines such as Delta serve Boston.']
    """
    parts = _SENTENCE_END_RE.split(text.strip())
    return [p for p in (part.strip() for part in parts) if p]


def normalize(text: str) -> str:
    """Lower-case and collapse whitespace — the index's term normal form."""
    return " ".join(text.lower().split())
