"""Shallow natural-language processing substrate.

WebIQ's extraction phase (paper §2.1) performs a *shallow syntactic analysis*
of attribute labels: part-of-speech tagging with Brill's rule-based tagger
followed by pattern matching that recognises noun phrases, prepositional
phrases, verb phrases and noun-phrase conjunctions. This package implements
that substrate from scratch:

- :mod:`repro.text.tokenizer` — word/sentence tokenisation,
- :mod:`repro.text.morphology` — pluralisation and singularisation,
- :mod:`repro.text.postag` — a Brill-style POS tagger (lexicon + unknown-word
  guessing + contextual transformation rules),
- :mod:`repro.text.chunker` — POS-pattern chunking,
- :mod:`repro.text.labels` — attribute-label syntax analysis used by the
  Surface component to decide how to formulate extraction queries.
"""

from repro.text.tokenizer import tokenize, sentences, words
from repro.text.morphology import pluralize, singularize
from repro.text.postag import BrillTagger, TaggedToken, default_tagger
from repro.text.chunker import Chunk, chunk_tags, find_noun_phrases
from repro.text.labels import LabelAnalysis, LabelForm, analyze_label

__all__ = [
    "tokenize",
    "sentences",
    "words",
    "pluralize",
    "singularize",
    "BrillTagger",
    "TaggedToken",
    "default_tagger",
    "Chunk",
    "chunk_tags",
    "find_noun_phrases",
    "LabelAnalysis",
    "LabelForm",
    "analyze_label",
]
