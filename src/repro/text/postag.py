"""A Brill-style rule-based part-of-speech tagger.

The paper tags attribute labels with Brill's tagger [5] before pattern
matching. Brill's tagger works in two stages: an initial-state annotator
assigns each word its most likely tag (from a lexicon, falling back to
suffix/shape heuristics for unknown words), then an ordered list of
*contextual transformation rules* rewrites tags based on neighbouring tags
and words. We implement the same architecture with a hand-built lexicon and
rule list sized for the tagger's actual job here: 1-6 word interface labels
and short snippet sentences.

Tags are a Penn-Treebank subset::

    DT determiner        NN/NNS common noun sg/pl   NNP/NNPS proper noun
    JJ adjective         IN preposition             CC coordinating conj.
    TO "to"              VB/VBZ/VBP/VBD/VBG/VBN verb forms
    MD modal             CD number                  RB adverb
    PRP/PRP$ pronoun     WDT/WP wh-word             PUNCT punctuation
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.text.tokenizer import tokenize

__all__ = ["TaggedToken", "BrillTagger", "default_tagger"]


@dataclass(frozen=True)
class TaggedToken:
    """A token paired with its part-of-speech tag."""

    word: str
    tag: str

    def __iter__(self):
        # Allow ``for word, tag in tagged`` unpacking.
        return iter((self.word, self.tag))


# ---------------------------------------------------------------------------
# Lexicon: most-likely tag per word (lower-cased), Brill's initial state.
# ---------------------------------------------------------------------------

_LEXICON: Dict[str, str] = {
    # determiners
    "the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
    "these": "DT", "those": "DT", "any": "DT", "all": "DT", "each": "DT",
    "no": "DT", "some": "DT", "every": "DT", "other": "JJ",
    # prepositions
    "of": "IN", "in": "IN", "on": "IN", "at": "IN", "by": "IN", "for": "IN",
    "from": "IN", "with": "IN", "within": "IN", "without": "IN", "about": "IN",
    "under": "IN", "over": "IN", "between": "IN", "near": "IN", "per": "IN",
    "after": "IN", "before": "IN", "during": "IN", "into": "IN", "through": "IN",
    "as": "IN", "than": "IN", "via": "IN", "until": "IN", "since": "IN",
    "up": "IN", "down": "IN", "off": "IN", "above": "IN", "below": "IN",
    # conjunctions
    "and": "CC", "or": "CC", "but": "CC", "nor": "CC", "plus": "CC",
    # to
    "to": "TO",
    # modals / auxiliaries
    "can": "MD", "could": "MD", "will": "MD", "would": "MD", "may": "MD",
    "must": "MD", "should": "MD", "shall": "MD", "might": "MD",
    "is": "VBZ", "are": "VBP", "was": "VBD", "were": "VBD", "be": "VB",
    "been": "VBN", "being": "VBG", "am": "VBP",
    "has": "VBZ", "have": "VBP", "had": "VBD", "having": "VBG",
    "do": "VBP", "does": "VBZ", "did": "VBD",
    # pronouns
    "i": "PRP", "you": "PRP", "he": "PRP", "she": "PRP", "it": "PRP",
    "we": "PRP", "they": "PRP", "them": "PRP", "him": "PRP", "her": "PRP$",
    "my": "PRP$", "your": "PRP$", "his": "PRP$", "its": "PRP$",
    "our": "PRP$", "their": "PRP$",
    # wh words
    "which": "WDT", "what": "WP", "who": "WP", "where": "WRB", "when": "WRB",
    "how": "WRB", "why": "WRB",
    # adverbs
    "not": "RB", "also": "RB", "only": "RB", "very": "RB", "too": "RB",
    "now": "RB", "here": "RB", "there": "EX", "most": "RBS", "more": "RBR",
    "right": "RB", "today": "RB", "online": "RB", "away": "RB",
    "such": "JJ", "including": "IN",
    # common verbs in interface labels and snippet text
    "search": "VB", "find": "VB", "select": "VB", "choose": "VB",
    "enter": "VB", "depart": "VB", "departing": "VBG", "departs": "VBZ",
    "arrive": "VB", "arriving": "VBG", "arrives": "VBZ",
    "return": "VB", "returning": "VBG", "leave": "VB", "leaving": "VBG",
    "travel": "VB", "fly": "VB", "flying": "VBG", "flies": "VBZ",
    "go": "VB", "going": "VBG", "pick": "VB", "drop": "VB",
    "buy": "VB", "sell": "VB", "rent": "VB", "browse": "VB", "show": "VB",
    "list": "VB", "sort": "VB", "contains": "VBZ", "contain": "VB",
    "located": "VBN", "offered": "VBN", "published": "VBN", "written": "VBN",
    "posted": "VBN", "include": "VB", "serve": "VB", "serves": "VBZ",
    "offers": "VBZ", "offer": "VB", "want": "VB", "looking": "VBG",
    "appear": "VB", "appears": "VBZ", "happen": "VB", "begin": "VB",
    "wrote": "VBD", "found": "VBD", "sold": "VBD", "bought": "VBD",
    "made": "VBD", "said": "VBD", "got": "VBD", "took": "VBD",
    "gave": "VBD", "went": "VBD", "came": "VBD", "knew": "VBD",
    "saw": "VBD", "paid": "VBD", "sent": "VBD", "held": "VBD",
    "kept": "VBD", "met": "VBD", "ran": "VBD", "grew": "VBD",
    "book": "NN",  # noun sense dominates in our domains (book title, bookstore)
    # adjectives common in labels
    "new": "JJ", "used": "JJ", "first": "JJ", "last": "JJ", "full": "JJ",
    "min": "JJ", "max": "JJ", "minimum": "JJ", "maximum": "JJ",
    "low": "JJ", "high": "JJ", "lowest": "JJS", "highest": "JJS",
    "round": "JJ", "one-way": "JJ", "nonstop": "JJ", "cheap": "JJ",
    "available": "JJ", "preferred": "JJ", "exact": "JJ", "many": "JJ",
    "several": "JJ", "popular": "JJ", "major": "JJ", "great": "JJ",
    "good": "JJ", "best": "JJS", "local": "JJ", "annual": "JJ",
    # common nouns seen in interface labels (a representative sample; unknown
    # words default to NN anyway, so this list mainly fixes ambiguous words)
    "city": "NN", "cities": "NNS", "state": "NN", "date": "NN",
    "time": "NN", "type": "NN", "name": "NN", "price": "NN", "year": "NN",
    "make": "NN",  # automobile make — the noun sense is what labels use
    "model": "NN", "color": "NN", "zip": "NN", "code": "NN", "number": "NN",
    "class": "NN", "service": "NN", "airline": "NN", "carrier": "NN",
    "airport": "NN", "passenger": "NN", "passengers": "NNS", "adult": "NN",
    "adults": "NNS", "child": "NN", "children": "NNS", "trip": "NN",
    "title": "NN", "author": "NN", "publisher": "NN", "keyword": "NN",
    "keywords": "NNS", "subject": "NN", "category": "NN", "format": "NN",
    "isbn": "NN", "edition": "NN", "company": "NN", "job": "NN",
    "binding": "NN", "genre": "NN", "style": "NN", "town": "NN",
    "salary": "NN", "industry": "NN", "location": "NN", "position": "NN",
    "experience": "NN", "degree": "NN", "skill": "NN", "skills": "NNS",
    "bedroom": "NN", "bedrooms": "NNS", "bathroom": "NN", "bathrooms": "NNS",
    "property": "NN", "home": "NN", "house": "NN", "mileage": "NN",
    "engine": "NN", "transmission": "NN", "doors": "NNS", "door": "NN",
    "seller": "NN", "dealer": "NN", "condition": "NN", "body": "NN",
    "style": "NN", "area": "NN", "county": "NN", "country": "NN",
    "region": "NN", "address": "NN", "email": "NN", "phone": "NN",
    "departure": "NN", "arrival": "NN", "destination": "NN", "origin": "NN",
    "stop": "NN", "stops": "NNS", "cabin": "NN", "fare": "NN",
    "flight": "NN", "seat": "NN", "seats": "NNS",
    "feet": "NNS", "foot": "NN", "square": "JJ", "acreage": "NN",
    "acre": "NN", "acres": "NNS", "lot": "NN", "size": "NN",
    "age": "NN", "range": "NN", "level": "NN", "field": "NN",
    "description": "NN", "summary": "NN", "status": "NN", "term": "NN",
    "rate": "NN", "amount": "NN", "value": "NN", "unit": "NN",
}

# ---------------------------------------------------------------------------
# Unknown-word guessing (Brill's lexical rules, condensed to suffix/shape).
# ---------------------------------------------------------------------------

_NUMBER_RE = re.compile(r"^\$?\d[\d,]*(?:\.\d+)?$")
_ORDINAL_RE = re.compile(r"^\d+(st|nd|rd|th)$", re.IGNORECASE)

_SUFFIX_TAGS: Sequence[Tuple[str, str]] = (
    ("ies", "NNS"), ("sses", "NNS"), ("xes", "NNS"), ("ches", "NNS"),
    ("shes", "NNS"),
    ("ing", "VBG"), ("ed", "VBN"),
    ("tion", "NN"), ("sion", "NN"), ("ment", "NN"), ("ness", "NN"),
    ("ity", "NN"), ("ship", "NN"), ("ance", "NN"), ("ence", "NN"),
    ("er", "NN"), ("or", "NN"), ("ist", "NN"), ("ism", "NN"),
    ("ly", "RB"),
    ("ous", "JJ"), ("ful", "JJ"), ("able", "JJ"), ("ible", "JJ"),
    ("ive", "JJ"), ("al", "JJ"), ("ic", "JJ"), ("less", "JJ"),
)


def _guess_tag(word: str, sentence_initial: bool) -> str:
    """Initial-state tag for a word absent from the lexicon."""
    if _NUMBER_RE.match(word):
        return "CD"
    if _ORDINAL_RE.match(word):
        return "JJ"
    if not word[0].isalnum():
        return "PUNCT"
    low = word.lower()
    # Capitalised mid-sentence => proper noun (city names, airlines, makes).
    if word[0].isupper() and not sentence_initial:
        return "NNPS" if low.endswith("s") and not low.endswith("ss") else "NNP"
    for suffix, tag in _SUFFIX_TAGS:
        if low.endswith(suffix) and len(low) > len(suffix) + 1:
            return tag
    if low.endswith("s") and not low.endswith("ss"):
        return "NNS"
    return "NN"


# ---------------------------------------------------------------------------
# Contextual transformation rules (Brill's second stage).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ContextRule:
    """Rewrite ``from_tag`` to ``to_tag`` when ``condition`` holds.

    ``condition(tags, words, i)`` inspects the current tag sequence around
    position ``i``; rules are applied in order, left to right, one pass each,
    exactly as in Brill's tagger.
    """

    from_tag: str
    to_tag: str
    condition: Callable[[List[str], List[str], int], bool]
    name: str


def _prev_tag(tags: List[str], i: int) -> Optional[str]:
    return tags[i - 1] if i > 0 else None


def _next_tag(tags: List[str], i: int) -> Optional[str]:
    return tags[i + 1] if i + 1 < len(tags) else None


_DEFAULT_RULES: Sequence[ContextRule] = (
    # "to book a flight" — base verb after TO, but only when a determiner
    # follows: interface labels like "To city" keep their noun reading.
    ContextRule("NN", "VB",
                lambda t, w, i: _prev_tag(t, i) == "TO"
                and _next_tag(t, i) == "DT",
                "NN->VB after TO before DT"),
    # "the search" — noun after a determiner even if lexicon says verb.
    ContextRule("VB", "NN", lambda t, w, i: _prev_tag(t, i) in ("DT", "PRP$", "JJ"),
                "VB->NN after DT/JJ"),
    ContextRule("VBP", "NN", lambda t, w, i: _prev_tag(t, i) in ("DT", "PRP$"),
                "VBP->NN after DT"),
    # "used car" — past participle directly before a noun acts adjectivally.
    ContextRule("VBN", "JJ", lambda t, w, i: _next_tag(t, i) in ("NN", "NNS"),
                "VBN->JJ before noun"),
    # "departing city" — gerund before a noun is a modifier.
    ContextRule("VBG", "JJ", lambda t, w, i: _next_tag(t, i) in ("NN", "NNS"),
                "VBG->JJ before noun"),
    # sentence-initial capitalised word followed by another proper noun is
    # itself proper ("Air Canada" at sentence start).
    ContextRule("NN", "NNP",
                lambda t, w, i: i == 0 and w[i][:1].isupper()
                and _next_tag(t, i) in ("NNP", "NNPS"),
                "NN->NNP initial before NNP"),
    # "is" + VBN stays VBN; but NN after VBZ that looks like a participle —
    # keep simple: no rule needed.
)


class BrillTagger:
    """Two-stage rule-based tagger: lexicon lookup + contextual rewrites."""

    def __init__(
        self,
        lexicon: Optional[Dict[str, str]] = None,
        rules: Optional[Sequence[ContextRule]] = None,
    ) -> None:
        self.lexicon = dict(_LEXICON if lexicon is None else lexicon)
        self.rules = tuple(_DEFAULT_RULES if rules is None else rules)

    def add_lexicon_entries(self, entries: Dict[str, str]) -> None:
        """Extend the lexicon (e.g. with domain-specific vocabulary)."""
        self.lexicon.update((k.lower(), v) for k, v in entries.items())

    def tag(self, text_or_tokens) -> List[TaggedToken]:
        """Tag raw text or a pre-tokenised word list.

        >>> [t.tag for t in default_tagger().tag("departure city")]
        ['NN', 'NN']
        >>> [t.tag for t in default_tagger().tag("from city")]
        ['IN', 'NN']
        """
        tokens = (
            tokenize(text_or_tokens)
            if isinstance(text_or_tokens, str)
            else list(text_or_tokens)
        )
        tags: List[str] = []
        for i, tok in enumerate(tokens):
            known = self.lexicon.get(tok.lower())
            if known is not None:
                # A capitalised mid-sentence word keeps proper-noun status even
                # if its lower-case form is a common noun ("Delta", "Virgin").
                if tok[:1].isupper() and i > 0 and known in ("NN", "NNS"):
                    tags.append("NNP" if known == "NN" else "NNPS")
                else:
                    tags.append(known)
            else:
                tags.append(_guess_tag(tok, sentence_initial=i == 0))
        for rule in self.rules:
            for i, tag in enumerate(tags):
                if tag == rule.from_tag and rule.condition(tags, tokens, i):
                    tags[i] = rule.to_tag
        return [TaggedToken(w, t) for w, t in zip(tokens, tags)]


_DEFAULT_TAGGER: Optional[BrillTagger] = None


def default_tagger() -> BrillTagger:
    """Return the shared default tagger instance (lazily constructed)."""
    global _DEFAULT_TAGGER
    if _DEFAULT_TAGGER is None:
        _DEFAULT_TAGGER = BrillTagger()
    return _DEFAULT_TAGGER
