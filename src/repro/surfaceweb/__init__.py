"""A simulated Surface Web: corpus, inverted index and search engine.

WebIQ consumes exactly three observables of a Web search engine:

1. **result snippets** for extraction queries (to harvest instance
   candidates from Hearst-pattern sentences),
2. **hit counts** for validation queries (to compute PMI scores), and
3. Google's query syntax — double-quoted phrases plus ``+keyword``
   required-term filters.

This package provides those observables over an in-memory corpus, replacing
the Google Web API of the paper's experiments. Pages are plain
:class:`~repro.surfaceweb.document.Document` objects; the
:class:`~repro.surfaceweb.engine.SearchEngine` answers phrase/term queries
from an inverted index with positional postings, generates snippets around
phrase matches, and counts hits and proximity co-occurrences for PMI.
"""

from repro.surfaceweb.document import Document
from repro.surfaceweb.index import InvertedIndex
from repro.surfaceweb.query import ParsedQuery, QueryParser
from repro.surfaceweb.engine import SearchEngine, SearchResult

__all__ = [
    "Document",
    "InvertedIndex",
    "ParsedQuery",
    "QueryParser",
    "SearchEngine",
    "SearchResult",
]
