"""Surface-Web page model.

A :class:`Document` stores its raw text alongside two token views used by
the index and the snippet generator: the full token sequence (words and
punctuation, as produced by :func:`repro.text.tokenizer.tokenize`) and the
word-only sequence that phrase matching runs over. Keeping both lets phrase
queries ignore punctuation ("Make: Honda" matches the proximity query
``make honda``) while snippets still render the original punctuation that
the extraction rules rely on (comma-separated instance lists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.text.tokenizer import tokenize

__all__ = ["Document"]


@dataclass
class Document:
    """One page of the simulated Surface Web."""

    doc_id: int
    url: str
    title: str
    text: str
    #: full token list (words + punctuation), computed on construction
    tokens: List[str] = field(init=False, repr=False)
    #: lower-cased word tokens, the sequence phrase matching runs over
    words: List[str] = field(init=False, repr=False)
    #: for each word position, its index in :attr:`tokens`
    word_token_index: List[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.tokens = tokenize(self.text)
        self.words = []
        self.word_token_index = []
        for i, tok in enumerate(self.tokens):
            if tok[0].isalnum() or tok.startswith("$"):
                self.words.append(tok.lower())
                self.word_token_index.append(i)

    def snippet_around(self, word_pos: int, width: int = 12) -> str:
        """Render a snippet of the original tokens around ``word_pos``.

        ``word_pos`` indexes :attr:`words`; the snippet spans ``width`` full
        tokens on each side so that trailing instance lists (commas included)
        survive into the snippet, as they do in real search results.
        """
        if not 0 <= word_pos < len(self.words):
            raise IndexError(f"word position {word_pos} out of range")
        center = self.word_token_index[word_pos]
        lo = max(0, center - width)
        hi = min(len(self.tokens), center + width + 1)
        return _join_tokens(self.tokens[lo:hi])


def _join_tokens(tokens: List[str]) -> str:
    """Join tokens with spaces, attaching punctuation to the previous token."""
    parts: List[str] = []
    for tok in tokens:
        if parts and not (tok[0].isalnum() or tok.startswith("$")):
            parts[-1] += tok
        else:
            parts.append(tok)
    return " ".join(parts)
