"""The simulated search engine (the reproduction's "Google").

Provides the three observables WebIQ needs:

- :meth:`SearchEngine.search` — top-k results with snippets for a
  Google-dialect query (quoted phrases, ``+required`` keywords);
- :meth:`SearchEngine.num_hits` — hit counts for validation queries, feeding
  the PMI computation;
- :meth:`SearchEngine.num_hits_proximity` — hit counts for the paper's
  proximity validation pattern "L x", where the label and the candidate
  must co-occur within a small window rather than as one exact phrase.

Every call increments :attr:`SearchEngine.query_count`; the WebIQ pipeline
reads that counter to charge simulated latency for Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.surfaceweb.document import Document
from repro.surfaceweb.index import InvertedIndex
from repro.surfaceweb.query import ParsedQuery, QueryParser
from repro.text.tokenizer import words as word_tokens
from repro.util import counters as work

__all__ = ["SearchEngine", "SearchResult"]

#: Word-distance used by proximity hit counting; small, as the paper's
#: proximity pattern "simply considers the proximity of L and x".
DEFAULT_PROXIMITY_WINDOW = 4


@dataclass(frozen=True)
class SearchResult:
    """One search hit: the page's identity plus a text snippet."""

    doc_id: int
    url: str
    title: str
    snippet: str


class SearchEngine:
    """Conjunctive phrase/term search with snippets and hit counts."""

    def __init__(self, documents: Optional[Iterable[Document]] = None) -> None:
        self.index = InvertedIndex()
        self._parser = QueryParser()
        self.query_count = 0
        if documents is not None:
            self.index.add_all(documents)

    def add_documents(self, documents: Iterable[Document]) -> None:
        self.index.add_all(documents)

    @property
    def n_documents(self) -> int:
        return self.index.n_documents

    def reset_query_count(self) -> None:
        self.query_count = 0

    # ------------------------------------------------------------------ API
    def search(self, query: str, max_results: int = 10) -> List[SearchResult]:
        """Top-``max_results`` hits for a Google-dialect query string.

        Results are relevance-ranked: documents with more occurrences of
        the query's phrases and terms come first (our corpus has no link
        graph, so term evidence is the whole signal); ties break on doc_id
        for determinism. The snippet is centred just past the first
        occurrence of the query's first phrase so that cue-phrase
        completions are visible to the extractor.
        """
        self.query_count += 1
        if work.ACTIVE is not None:
            work.ACTIVE.bump("engine.round_trips")
        parsed = self._parser.parse(query)
        ranked = sorted(
            self._matching_docs(parsed),
            key=lambda doc_id: (-self._relevance(doc_id, parsed), doc_id),
        )[:max_results]
        results = []
        for doc_id in ranked:
            doc = self.index.document(doc_id)
            results.append(
                SearchResult(doc_id, doc.url, doc.title, self._snippet(doc, parsed))
            )
        return results

    def _relevance(self, doc_id: int, parsed: ParsedQuery) -> int:
        """Occurrence-count relevance of one matching document."""
        score = 0
        for phrase in parsed.phrases:
            score += 3 * len(self.index.phrase_positions(list(phrase), doc_id))
        for term in parsed.required_terms + parsed.plain_terms:
            score += len(self.index.phrase_positions([term], doc_id))
        return score

    def num_hits(self, query: str) -> int:
        """Number of documents matching ``query`` (the "NumHits" oracle)."""
        self.query_count += 1
        if work.ACTIVE is not None:
            work.ACTIVE.bump("engine.round_trips")
        return len(self._matching_docs(self._parser.parse(query)))

    def num_hits_proximity(
        self,
        phrase_a: str,
        phrase_b: str,
        window: int = DEFAULT_PROXIMITY_WINDOW,
    ) -> int:
        """Documents where two phrases co-occur within ``window`` words.

        Implements the proximity validation pattern "L x": the label and the
        candidate need not be adjacent, only near each other.
        """
        self.query_count += 1
        if work.ACTIVE is not None:
            work.ACTIVE.bump("engine.round_trips")
        a = word_tokens(phrase_a.lower())
        b = word_tokens(phrase_b.lower())
        if not a or not b:
            return 0
        return len(self.index.cooccurrence_docs(a, b, window))

    # ------------------------------------------------------------- internals
    def _matching_docs(self, parsed: ParsedQuery) -> Set[int]:
        candidates: Optional[Set[int]] = None

        def narrow(docs: Set[int]) -> Set[int]:
            nonlocal candidates
            if candidates is None:
                candidates = docs
            else:
                if work.ACTIVE is not None:
                    work.ACTIVE.bump("index.intersections")
                candidates = candidates & docs
            return candidates

        for phrase in parsed.phrases:
            if not narrow(self.index.documents_with_phrase(phrase)):
                return set()
        for term in parsed.required_terms + parsed.plain_terms:
            if not narrow(self.index.documents_with_term(term)):
                return set()
        return candidates or set()

    def _snippet(self, doc: Document, parsed: ParsedQuery) -> str:
        if parsed.phrases:
            positions = self.index.phrase_positions(parsed.phrases[0], doc.doc_id)
            if positions:
                # Centre the snippet window just past the cue phrase so the
                # completion list that follows it is fully visible.
                anchor = min(
                    positions[0] + len(parsed.phrases[0]), len(doc.words) - 1
                )
                return doc.snippet_around(anchor, width=14)
        for term in parsed.required_terms + parsed.plain_terms:
            if self.index.term_in_document(term, doc.doc_id):
                pos = self.index.phrase_positions([term], doc.doc_id)
                if pos:
                    return doc.snippet_around(pos[0], width=14)
        return doc.snippet_around(0, width=14) if doc.words else ""
