"""Positional inverted index over :class:`~repro.surfaceweb.document.Document`.

The index maps each term to postings ``{doc_id: [word positions]}``.
Positions allow exact phrase matching (consecutive positions) and proximity
co-occurrence tests, both of which the search engine needs: phrase matching
for extraction/validation queries and proximity for the paper's
"L x" proximity validation pattern.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.surfaceweb.document import Document
from repro.util import counters as work

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """In-memory positional inverted index."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[int, List[int]]] = {}
        self._documents: Dict[int, Document] = {}

    # ------------------------------------------------------------------ build
    def add(self, document: Document) -> None:
        """Index one document; re-adding a doc_id raises ``ValueError``."""
        if document.doc_id in self._documents:
            raise ValueError(f"duplicate doc_id {document.doc_id}")
        self._documents[document.doc_id] = document
        for pos, word in enumerate(document.words):
            self._postings.setdefault(word, {}).setdefault(
                document.doc_id, []
            ).append(pos)

    def add_all(self, documents: Iterable[Document]) -> None:
        for document in documents:
            self.add(document)

    # ------------------------------------------------------------------ reads
    @property
    def n_documents(self) -> int:
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def document(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def documents_with_term(self, term: str) -> Set[int]:
        """Doc-ids containing ``term`` (lower-cased exact match)."""
        return set(self._postings.get(term.lower(), ()))

    def term_in_document(self, term: str, doc_id: int) -> bool:
        """Does ``term`` occur in ``doc_id``? Direct postings lookup —
        unlike :meth:`documents_with_term`, no postings set is materialised,
        so membership tests on the search hot path stay O(1)."""
        return doc_id in self._postings.get(term.lower(), ())

    def term_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` across the corpus."""
        return sum(len(v) for v in self._postings.get(term.lower(), {}).values())

    def phrase_positions(self, phrase: Sequence[str], doc_id: int) -> List[int]:
        """Start word-positions of exact occurrences of ``phrase`` in a doc."""
        phrase = [w.lower() for w in phrase]
        if not phrase:
            return []
        first = self._postings.get(phrase[0], {}).get(doc_id)
        if first is None:
            return []
        rest = []
        for offset, word in enumerate(phrase[1:], start=1):
            positions = self._postings.get(word, {}).get(doc_id)
            if positions is None:
                return []
            rest.append((offset, set(positions)))
        return [
            p for p in first
            if all(p + off in positions for off, positions in rest)
        ]

    def documents_with_phrase(self, phrase: Sequence[str]) -> Set[int]:
        """Doc-ids containing ``phrase`` as consecutive words."""
        phrase = [w.lower() for w in phrase]
        if not phrase:
            return set()
        if len(phrase) == 1:
            return self.documents_with_term(phrase[0])
        candidates: Optional[Set[int]] = None
        for word in phrase:
            docs = set(self._postings.get(word, ()))
            if candidates is None:
                candidates = docs
            else:
                if work.ACTIVE is not None:
                    work.ACTIVE.bump("index.intersections")
                candidates = candidates & docs
            if not candidates:
                return set()
        assert candidates is not None
        return {d for d in candidates if self.phrase_positions(phrase, d)}

    def cooccurrence_docs(
        self,
        phrase_a: Sequence[str],
        phrase_b: Sequence[str],
        window: int,
    ) -> Set[int]:
        """Doc-ids where both phrases occur within ``window`` words.

        The distance is measured between the end of one phrase and the start
        of the other (order-insensitive); ``window=0`` means adjacency. The
        two occurrences must not overlap: a phrase nested inside the other
        (e.g. "city" within "new york city") is one mention, not two
        co-occurring ones.
        """
        docs_a = self.documents_with_phrase(phrase_a)
        docs_b = self.documents_with_phrase(phrase_b)
        result: Set[int] = set()
        len_a, len_b = len(list(phrase_a)), len(list(phrase_b))
        if work.ACTIVE is not None:
            work.ACTIVE.bump("index.intersections")
        for doc_id in docs_a & docs_b:
            pos_a = self.phrase_positions(phrase_a, doc_id)
            pos_b = self.phrase_positions(phrase_b, doc_id)
            if work.ACTIVE is not None:
                work.ACTIVE.bump("index.window_checks")
            if _within_window(pos_a, len_a, pos_b, len_b, window):
                result.add(doc_id)
        return result


def _within_window(
    pos_a: List[int], len_a: int, pos_b: List[int], len_b: int, window: int
) -> bool:
    """True if some *non-overlapping* occurrence pair is within ``window``.

    The gap is the number of words strictly between the two spans; a
    negative gap means the spans overlap and the pair is not a
    co-occurrence at all (counting it would let a label match inside the
    candidate itself and inflate PMI proximity counts).
    """
    for a in pos_a:
        end_a = a + len_a - 1
        for b in pos_b:
            end_b = b + len_b - 1
            gap = max(a - end_b, b - end_a) - 1
            if 0 <= gap <= window:
                return True
    return False
