"""Google-style query parsing.

WebIQ formats its extraction queries "according to the query syntax of
search engines", e.g.::

    "authors such as" +book +title +isbn

"double quotes enclose a phrase, while '+' signs request Google to ensure
that the results contain the specified keywords" (paper §2.1). The parser
understands exactly that dialect: quoted phrases, ``+required`` terms, and
bare terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.text.tokenizer import words as word_tokens
from repro.util.errors import QuerySyntaxError

__all__ = ["ParsedQuery", "QueryParser"]


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed search query.

    ``phrases`` are tuples of lower-cased words that must occur consecutively;
    ``required_terms`` and ``plain_terms`` are single lower-cased words that
    must occur anywhere in the document (our engine is conjunctive for both,
    which matches how WebIQ uses them).
    """

    phrases: Tuple[Tuple[str, ...], ...] = ()
    required_terms: Tuple[str, ...] = ()
    plain_terms: Tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.phrases or self.required_terms or self.plain_terms)

    def all_terms(self) -> Tuple[str, ...]:
        """Every individual term the query mentions (for index pre-filtering)."""
        terms: List[str] = []
        for phrase in self.phrases:
            terms.extend(phrase)
        terms.extend(self.required_terms)
        terms.extend(self.plain_terms)
        return tuple(terms)


class QueryParser:
    """Parse Google-dialect query strings into :class:`ParsedQuery`."""

    def parse(self, query: str) -> ParsedQuery:
        """Parse ``query``; raises :class:`QuerySyntaxError` on malformed input.

        >>> QueryParser().parse('"authors such as" +book isbn').phrases
        (('authors', 'such', 'as'),)
        """
        if query.count('"') % 2 != 0:
            raise QuerySyntaxError(f"unbalanced quotes in {query!r}")
        phrases: List[Tuple[str, ...]] = []
        required: List[str] = []
        plain: List[str] = []

        rest: List[str] = []
        inside = False
        for i, chunk in enumerate(query.split('"')):
            if inside:
                phrase = tuple(w.lower() for w in word_tokens(chunk))
                if phrase:
                    phrases.append(phrase)
            else:
                rest.append(chunk)
            inside = not inside

        for piece in " ".join(rest).split():
            if piece.startswith("+"):
                terms = [w.lower() for w in word_tokens(piece[1:])]
                if not terms:
                    raise QuerySyntaxError(f"bare '+' in {query!r}")
                required.extend(terms)
            else:
                plain.extend(w.lower() for w in word_tokens(piece))

        parsed = ParsedQuery(tuple(phrases), tuple(required), tuple(plain))
        if parsed.is_empty:
            raise QuerySyntaxError(f"empty query: {query!r}")
        return parsed
