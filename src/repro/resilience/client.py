"""Retry, circuit breaking, budgets and graceful degradation.

:class:`ResilientClient` is the policy engine between WebIQ's components
and the (possibly flaky) Web substrates:

- **retry with exponential backoff + jitter** (:class:`RetryPolicy`) for
  the recoverable :class:`~repro.util.errors.WebAccessError` family, with
  rate-limit rejections backed off harder than ordinary transients;
- **per-source circuit breakers** (:class:`CircuitBreaker`,
  closed → open → half-open) so a dead Deep-Web source stops consuming the
  probe budget after a few consecutive failures;
- **per-component budgets** (:class:`Budget`) bounding the total round
  trips each of ``surface`` / ``attr_surface`` / ``attr_deep`` may spend;
- **degradation accounting** (:class:`DegradationReport`): every fault,
  retry, backoff second, breaker trip, exhausted budget and skipped
  attribute is recorded, so a run that survived a hostile Web can say
  exactly what it paid and what it gave up.

Backoff delays are *simulated* seconds: the client never sleeps. The
pipeline charges them to the :class:`~repro.util.clock.SimulatedClock`
under ``<component>_retry`` accounts, keeping Figure 8's overhead model
honest about what resilience costs.

:class:`ResilientSearchEngine` and :class:`ResilientDeepWebSource` are the
drop-in proxies components talk to. When a call is abandoned — retries
exhausted, breaker open, or budget spent — they degrade instead of raising:
empty search results, zero hit counts, or an "unavailable" error page that
the §4 response heuristics classify as a failed probe. The pipeline
therefore never crashes; it yields partial results and reports the damage.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from repro.deepweb.source import ResponsePage
from repro.surfaceweb.engine import DEFAULT_PROXIMITY_WINDOW, SearchResult
from repro.util.errors import (
    BudgetExhaustedError,
    CircuitOpenError,
    RateLimitError,
    WebAccessError,
)
from repro.util.rng import derive_rng

from repro.exec.context import UnitKey, current_unit
from repro.resilience.faults import FaultKind, FaultProfile

__all__ = [
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "Budget",
    "DegradationReport",
    "ResilienceConfig",
    "ResilientClient",
    "ResilientSearchEngine",
    "ResilientDeepWebSource",
]

T = TypeVar("T")

#: Component name used when a call happens outside any declared component.
DEFAULT_COMPONENT = "web"

#: Retry-loop event name -> metrics counter suffix (``resilience.<suffix>``).
_PLURALS = {
    "retry": "retries",
    "fault": "faults",
    "giveup": "giveups",
    "breaker_trip": "breaker_trips",
    "breaker_reject": "breaker_rejections",
    "budget_exhausted": "budgets_exhausted",
}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter.

    The delay before retry ``attempt`` (0-based) is
    ``base_delay * multiplier**attempt``, clamped to ``max_delay``, then
    scaled by a jitter factor uniform in ``[1-jitter, 1+jitter]``.
    Rate-limit rejections multiply the delay by ``rate_limit_factor``
    first — hammering a throttling endpoint only digs the hole deeper.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25
    rate_limit_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")

    def delay(self, attempt: int, rng, rate_limited: bool = False) -> float:
        seconds = self.base_delay * (self.multiplier ** attempt)
        if rate_limited:
            seconds *= self.rate_limit_factor
        seconds = min(seconds, self.max_delay)
        if self.jitter:
            seconds *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return seconds


@dataclass(frozen=True)
class BreakerPolicy:
    """When a per-source circuit breaker opens and how long it rests.

    Time is counted in *calls*, not seconds: after ``failure_threshold``
    consecutive failures the breaker opens and fast-fails the next
    ``cooldown_rejections`` calls, then half-opens to let one trial probe
    through. Call-counted cooldowns keep the state machine deterministic
    without tying it to any clock.
    """

    failure_threshold: int = 3
    cooldown_rejections: int = 5

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_rejections < 0:
            raise ValueError("cooldown_rejections must be non-negative")


class CircuitBreaker:
    """The classic closed → open → half-open state machine, call-counted."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, policy: BreakerPolicy = BreakerPolicy()) -> None:
        self.policy = policy
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.times_opened = 0
        self.rejections = 0
        self._cooldown_left = 0

    def allow(self) -> bool:
        """May the next call proceed? (Open breakers count down cooldown.)"""
        if self.state == self.OPEN:
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                self.rejections += 1
                return False
            self.state = self.HALF_OPEN
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self) -> bool:
        """Note a failure; returns True when this one tripped the breaker."""
        self.consecutive_failures += 1
        trip = (
            self.state == self.HALF_OPEN
            or self.consecutive_failures >= self.policy.failure_threshold
        )
        if trip:
            self.state = self.OPEN
            self.times_opened += 1
            self.consecutive_failures = 0
            self._cooldown_left = self.policy.cooldown_rejections
        return trip

    # --------------------------------------------------- checkpoint support
    def state_payload(self) -> Dict[str, object]:
        """The full state-machine position, JSON-ready (for the journal)."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "times_opened": self.times_opened,
            "rejections": self.rejections,
            "cooldown_left": self._cooldown_left,
        }

    def restore_state(self, payload: Mapping[str, object]) -> None:
        """Inverse of :meth:`state_payload` (policy comes from config)."""
        self.state = payload["state"]
        self.consecutive_failures = payload["consecutive_failures"]
        self.times_opened = payload["times_opened"]
        self.rejections = payload["rejections"]
        self._cooldown_left = payload["cooldown_left"]


@dataclass
class Budget:
    """A bounded pool of remote round trips for one component."""

    limit: Optional[int] = None
    spent: int = 0

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit

    def charge(self, count: int = 1) -> None:
        self.spent += count


@dataclass
class DegradationReport:
    """What a run paid to survive faults, and what it gave up.

    Attached to :class:`~repro.core.pipeline.WebIQRunResult` when a
    resilience configuration is active; ``degraded`` distinguishes "some
    calls needed retries but everything completed" from "results are
    partial" (give-ups, tripped breakers, exhausted budgets, skipped
    attributes).
    """

    #: fault kind value -> injections (e.g. ``{"timeout": 12}``); fed by the
    #: flaky wrappers' ``on_fault`` hook, so silent ``garbled`` faults count
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    #: component -> raised faults observed while it was active
    faults_by_component: Dict[str, int] = field(default_factory=dict)
    #: component -> retries issued (a call retried twice counts two)
    retries_by_component: Dict[str, int] = field(default_factory=dict)
    #: component -> simulated seconds spent waiting in backoff
    backoff_seconds_by_component: Dict[str, float] = field(default_factory=dict)
    #: component -> calls abandoned after the last retry failed
    giveups_by_component: Dict[str, int] = field(default_factory=dict)
    #: source id -> times its breaker tripped open
    breaker_trips: Dict[str, int] = field(default_factory=dict)
    #: source id -> calls fast-failed while its breaker was open
    breaker_rejections: Dict[str, int] = field(default_factory=dict)
    #: components whose budget ran dry, in the order it happened
    budgets_exhausted: List[str] = field(default_factory=list)
    #: (interface_id, attribute) pairs skipped once a budget was gone
    attributes_skipped: List[Tuple[str, str]] = field(default_factory=list)
    #: component -> budgeted round trips charged (tracked even when the
    #: budget is unbounded, so observability invariants can reconcile it
    #: against the stopwatch's per-account query counts)
    budget_spent_by_component: Dict[str, int] = field(default_factory=dict)
    #: units the supervisor quarantined after repeated crashes, with full
    #: provenance (:class:`repro.supervisor.QuarantinedUnit`). Mirrored
    #: here by :class:`repro.supervisor.RunSupervisor` *after* the run
    #: completes; deliberately in-memory only — the JSON export keeps its
    #: quarantine provenance in the ``supervisor`` section so the
    #: ``degradation`` section stays byte-identical to an unsupervised
    #: reference run.
    quarantined_units: List[Any] = field(default_factory=list)

    # ------------------------------------------------------------ queries
    @property
    def total_faults(self) -> int:
        return sum(self.faults_by_kind.values())

    @property
    def total_retries(self) -> int:
        return sum(self.retries_by_component.values())

    @property
    def total_backoff_seconds(self) -> float:
        return sum(self.backoff_seconds_by_component.values())

    @property
    def degraded(self) -> bool:
        """Did the run give anything up (as opposed to merely retrying)?"""
        return bool(
            self.giveups_by_component
            or self.breaker_trips
            or self.budgets_exhausted
            or self.attributes_skipped
        )

    @property
    def empty(self) -> bool:
        return (
            self.total_faults == 0
            and self.total_retries == 0
            and not self.faults_by_component
            and not self.degraded
        )

    def summary(self) -> str:
        """Human-readable multi-line account, for the CLI."""
        lines = ["degradation report:"]
        kinds = ", ".join(
            f"{kind} {count}"
            for kind, count in sorted(self.faults_by_kind.items())
        )
        lines.append(
            f"  faults seen: {self.total_faults}"
            + (f" ({kinds})" if kinds else "")
        )
        for component in sorted(self.retries_by_component):
            lines.append(
                f"  retries[{component}]: "
                f"{self.retries_by_component[component]} "
                f"(backoff "
                f"{self.backoff_seconds_by_component.get(component, 0.0):.1f}s)"
            )
        for component in sorted(self.giveups_by_component):
            lines.append(
                f"  gave up[{component}]: {self.giveups_by_component[component]}"
            )
        for source_id in sorted(self.breaker_trips):
            lines.append(
                f"  breaker[{source_id}]: "
                f"{self.breaker_trips[source_id]} trips, "
                f"{self.breaker_rejections.get(source_id, 0)} fast-fails"
            )
        if self.budgets_exhausted:
            lines.append(
                "  budgets exhausted: " + ", ".join(self.budgets_exhausted)
            )
        if self.attributes_skipped:
            lines.append(
                f"  attributes skipped: {len(self.attributes_skipped)}"
            )
        for unit in self.quarantined_units:
            lines.append(
                f"  quarantined[{'/'.join(unit.unit)}]: "
                f"{unit.crashes} crashes "
                f"(restarts {list(unit.restart_indices)})"
            )
        if self.empty:
            lines.append("  (no faults observed)")
        return "\n".join(lines)


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the resilience layer needs for one pipeline run."""

    profile: FaultProfile = field(default_factory=FaultProfile)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: per-component round-trip budgets; ``None`` means unbounded
    surface_query_budget: Optional[int] = None
    attr_surface_query_budget: Optional[int] = None
    attr_deep_probe_budget: Optional[int] = None

    def budgets(self) -> Dict[str, Budget]:
        return {
            "surface": Budget(self.surface_query_budget),
            "attr_surface": Budget(self.attr_surface_query_budget),
            "attr_deep": Budget(self.attr_deep_probe_budget),
        }


class ResilientClient:
    """Shared retry/breaker/budget engine for one pipeline run."""

    def __init__(self, config: ResilienceConfig = ResilienceConfig(),
                 obs=None) -> None:
        self.config = config
        self.report = DegradationReport()
        self._budgets = config.budgets()
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: legacy shared jitter stream, used only for calls made outside
        #: any unit scope (direct client use); pipeline draws come from
        #: per-unit streams (see :meth:`_backoff_rng`).
        self._rng = derive_rng(config.profile.seed, "resilience", "backoff")
        #: per-unit jitter streams, derived lazily from the unit key so a
        #: unit's draws are identical however the run is scheduled/resumed
        self._unit_rngs: Dict[UnitKey, Any] = {}
        #: backoff delays computed so far (an accounting counter; per-unit
        #: streams need no fast-forward on resume)
        self.backoff_draws = 0
        #: per-thread mutable call state (active component, in-flight
        #: attempt index). Thread-local so concurrent units — e.g. the
        #: parallel executor's speculative workers — cannot race each
        #: other's ambient state.
        self._local = threading.local()
        #: optional :class:`~repro.obs.Observability` bundle; when attached,
        #: every retry-loop decision is traced and counted. Strictly
        #: observational: attaching it changes no behaviour.
        self.obs = obs

    # ------------------------------------------------------------- context
    @contextmanager
    def component(self, name: str) -> Iterator[None]:
        """Attribute calls (budgets, accounting) to component ``name``."""
        previous = getattr(self._local, "component", None)
        self._local.component = name
        try:
            yield
        finally:
            self._local.component = previous

    @property
    def active_component(self) -> str:
        return getattr(self._local, "component", None) or DEFAULT_COMPONENT

    @property
    def current_attempt(self) -> int:
        """0-based attempt index of this *thread's* in-flight :meth:`call`.

        Flaky wrappers read it (via ``attempt_provider``) to key
        per-attempt fault fates, so a retry re-rolls where a re-issue
        replays. Thread-local: one worker's retry loop must never leak its
        attempt index into the fault fates another thread is rolling.
        """
        return getattr(self._local, "attempt", 0)

    @current_attempt.setter
    def current_attempt(self, value: int) -> None:
        self._local.attempt = value

    def budget_exhausted(self, component: str) -> bool:
        budget = self._budgets.get(component)
        return budget is not None and budget.exhausted

    def breaker_for(self, source_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(source_id)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker)
            self._breakers[source_id] = breaker
        return breaker

    def skip_attribute(self, interface_id: str, attribute: str) -> None:
        """Record that an attribute was skipped outright (budget gone)."""
        self.report.attributes_skipped.append((interface_id, attribute))

    def note_injected_fault(self, kind: FaultKind) -> None:
        """Hook for the flaky wrappers' ``on_fault`` callback."""
        self._bump(self.report.faults_by_kind, kind.value)

    # --------------------------------------------------- checkpoint support
    def state_payload(self) -> Dict[str, object]:
        """Everything a resumed process must restore to continue this
        client's policy decisions bit-identically: the degradation
        report, per-component budget spend, per-source breaker positions
        and the backoff draw counter. JSON-ready."""
        r = self.report
        return {
            "report": {
                "faults_by_kind": dict(r.faults_by_kind),
                "faults_by_component": dict(r.faults_by_component),
                "retries_by_component": dict(r.retries_by_component),
                "backoff_seconds_by_component": dict(
                    r.backoff_seconds_by_component
                ),
                "giveups_by_component": dict(r.giveups_by_component),
                "breaker_trips": dict(r.breaker_trips),
                "breaker_rejections": dict(r.breaker_rejections),
                "budgets_exhausted": list(r.budgets_exhausted),
                "attributes_skipped": [
                    list(pair) for pair in r.attributes_skipped
                ],
                "budget_spent_by_component": dict(
                    r.budget_spent_by_component
                ),
            },
            "budgets": {
                name: budget.spent
                for name, budget in sorted(self._budgets.items())
            },
            "breakers": {
                source_id: breaker.state_payload()
                for source_id, breaker in sorted(self._breakers.items())
            },
            "backoff_draws": self.backoff_draws,
        }

    def restore_state(self, payload: Mapping[str, object]) -> None:
        """Inverse of :meth:`state_payload`, on a freshly-built client.

        Backoff jitter streams are keyed per unit and start at position 0
        whenever their unit runs, so nothing needs fast-forwarding: fresh
        units after the replayed prefix derive exactly the streams the
        uninterrupted run would have. Only the draw *counter* is restored,
        for accounting.
        """
        if self.backoff_draws:
            raise ValueError(
                "restore_state needs a fresh client "
                f"(already drew {self.backoff_draws} backoffs)"
            )
        snapshot = payload["report"]
        r = self.report
        r.faults_by_kind = dict(snapshot["faults_by_kind"])
        r.faults_by_component = dict(snapshot["faults_by_component"])
        r.retries_by_component = dict(snapshot["retries_by_component"])
        r.backoff_seconds_by_component = dict(
            snapshot["backoff_seconds_by_component"]
        )
        r.giveups_by_component = dict(snapshot["giveups_by_component"])
        r.breaker_trips = dict(snapshot["breaker_trips"])
        r.breaker_rejections = dict(snapshot["breaker_rejections"])
        r.budgets_exhausted = list(snapshot["budgets_exhausted"])
        r.attributes_skipped = [
            tuple(pair) for pair in snapshot["attributes_skipped"]
        ]
        r.budget_spent_by_component = dict(
            snapshot["budget_spent_by_component"]
        )
        for name, spent in payload["budgets"].items():
            if name not in self._budgets:
                self._budgets[name] = Budget()
            self._budgets[name].spent = spent
        for source_id, state in payload["breakers"].items():
            self.breaker_for(source_id).restore_state(state)
        self.backoff_draws = payload["backoff_draws"]

    # ----------------------------------------------------------- the loop
    def call(
        self,
        fn: Callable[[], T],
        source_id: Optional[str] = None,
    ) -> T:
        """Run ``fn`` under retry/breaker/budget policy.

        Raises :class:`CircuitOpenError` when the source's breaker rejects
        the call, :class:`BudgetExhaustedError` when the component's budget
        is spent, or the last :class:`WebAccessError` once retries are
        exhausted. Anything else ``fn`` raises (e.g. a ``KeyError``
        programming error) propagates untouched.
        """
        component = self.active_component
        budget = self._budgets.get(component)
        breaker = self.breaker_for(source_id) if source_id else None

        if breaker is not None and not breaker.allow():
            self._bump(self.report.breaker_rejections, source_id)
            self._observe("breaker_reject", source=source_id,
                          component=component)
            raise CircuitOpenError(f"breaker open for source {source_id}")

        retry = self.config.retry
        for attempt in range(retry.max_attempts):
            if budget is not None and budget.exhausted:
                if component not in self.report.budgets_exhausted:
                    self.report.budgets_exhausted.append(component)
                    self._observe("budget_exhausted", component=component,
                                  limit=budget.limit)
                raise BudgetExhaustedError(
                    f"{component} budget of {budget.limit} round trips spent"
                )
            if budget is not None:
                budget.charge()
                self._bump(self.report.budget_spent_by_component, component)
            self.current_attempt = attempt
            try:
                result = fn()
            except WebAccessError as exc:
                self._note_fault(component, exc)
                if breaker is not None and breaker.record_failure():
                    self._bump(self.report.breaker_trips, source_id)
                    self._observe("breaker_trip", source=source_id,
                                  component=component)
                    raise CircuitOpenError(
                        f"breaker tripped for source {source_id}"
                    ) from exc
                if attempt + 1 >= retry.max_attempts:
                    self._bump(self.report.giveups_by_component, component)
                    self._observe("giveup", component=component,
                                  attempts=retry.max_attempts)
                    raise
                self.backoff_draws += 1
                seconds = retry.delay(
                    attempt, self._backoff_rng(),
                    rate_limited=isinstance(exc, RateLimitError),
                )
                self._bump(self.report.retries_by_component, component)
                self.report.backoff_seconds_by_component[component] = (
                    self.report.backoff_seconds_by_component.get(component, 0.0)
                    + seconds
                )
                self._observe("retry", component=component, attempt=attempt,
                              backoff_seconds=seconds)
                continue
            if breaker is not None:
                breaker.record_success()
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    # ---------------------------------------------------------- internals
    def _backoff_rng(self):
        """The jitter stream for this thread's unit (legacy shared stream
        outside any unit scope). A per-unit stream starts at position 0
        whenever its unit runs, so backoff jitter is a pure function of
        ``(seed, unit, draw index within the unit)`` — independent of
        execution order, worker interleaving and resume point."""
        unit = current_unit()
        if unit is None:
            return self._rng
        rng = self._unit_rngs.get(unit)
        if rng is None:
            rng = derive_rng(
                self.config.profile.seed, "resilience", "backoff", *unit
            )
            self._unit_rngs[unit] = rng
        return rng

    def _observe(self, event: str, **attrs) -> None:
        """Trace + count one retry-loop decision (no-op without obs)."""
        if self.obs is None:
            return
        component = attrs.get("component", self.active_component)
        self.obs.metrics.counter(
            f"resilience.{_PLURALS.get(event, event + 's')}",
            component=component,
        ).inc()
        self.obs.tracer.event(event, **attrs)

    def _note_fault(self, component: str, exc: WebAccessError) -> None:
        self._bump(self.report.faults_by_component, component)
        self._observe("fault", component=component,
                      kind=type(exc).__name__)

    @staticmethod
    def _bump(counter: Dict[str, int], key: str) -> None:
        counter[key] = counter.get(key, 0) + 1


class ResilientSearchEngine:
    """Search-engine proxy that retries faults and degrades to emptiness.

    Wraps any engine-shaped object (typically a
    :class:`~repro.resilience.faults.FlakySearchEngine`). Calls the client
    cannot complete come back as the harmless neutral element of each
    query type — no results, zero hits — so Surface and Attr-Surface
    simply see an unhelpful Web rather than an exception.
    ``last_degraded`` records, per call, whether that neutral substitution
    happened; cache layers above read it to avoid memoising a degraded
    answer as if it were the query's real one.

    ``last_degraded`` is **thread-local** (the same treatment the PR-7
    audit gave ``ResilientClient.current_attempt``): one proxy may be
    shared by concurrent tenants with different budgets, and a plain
    instance attribute would let tenant B's budget-exhausted degradation
    flip the flag between tenant A's fetch and A's cleanliness check —
    the cache above then refuses to memoise A's perfectly clean answer
    and A pays for the same query twice. Each thread sees only its own
    calls' flag.
    """

    def __init__(self, inner, client: ResilientClient) -> None:
        self.inner = inner
        self.client = client
        self._local = threading.local()

    @property
    def last_degraded(self) -> bool:
        """Did *this thread's* most recent query degrade to neutral?"""
        return getattr(self._local, "last_degraded", False)

    @last_degraded.setter
    def last_degraded(self, value: bool) -> None:
        self._local.last_degraded = value

    @property
    def query_count(self) -> int:
        return self.inner.query_count

    def reset_query_count(self) -> None:
        self.inner.reset_query_count()

    @property
    def n_documents(self) -> int:
        return self.inner.n_documents

    def search(self, query: str, max_results: int = 10) -> List[SearchResult]:
        self.last_degraded = False
        try:
            return self.client.call(lambda: self.inner.search(query, max_results))
        except (WebAccessError, CircuitOpenError, BudgetExhaustedError):
            self.last_degraded = True
            return []

    def num_hits(self, query: str) -> int:
        self.last_degraded = False
        try:
            return self.client.call(lambda: self.inner.num_hits(query))
        except (WebAccessError, CircuitOpenError, BudgetExhaustedError):
            self.last_degraded = True
            return 0

    def num_hits_proximity(
        self,
        phrase_a: str,
        phrase_b: str,
        window: int = DEFAULT_PROXIMITY_WINDOW,
    ) -> int:
        self.last_degraded = False
        try:
            return self.client.call(
                lambda: self.inner.num_hits_proximity(phrase_a, phrase_b, window)
            )
        except (WebAccessError, CircuitOpenError, BudgetExhaustedError):
            self.last_degraded = True
            return 0


#: The page a resilient source serves when a probe is abandoned. Contains
#: explicit failure markers so the §4 heuristics classify it as a failed
#: submission — an unreachable source must never validate a value.
_UNAVAILABLE_TEXT = (
    "Error\n"
    "Service temporarily unavailable. No results could be retrieved.\n"
    "Please try again later."
)


class ResilientDeepWebSource:
    """Deep-Web source proxy: retries, per-source breaker, degrade-to-page.

    Abandoned probes return a synthetic "service unavailable" page instead
    of raising, mirroring how a browser user experiences a dead source —
    they still get *a* page, just not a useful one.
    """

    def __init__(self, inner, client: ResilientClient) -> None:
        self.inner = inner
        self.client = client

    @property
    def interface(self):
        return self.inner.interface

    @property
    def interface_id(self) -> str:
        return self.inner.interface.interface_id

    @property
    def probe_count(self) -> int:
        return self.inner.probe_count

    @probe_count.setter
    def probe_count(self, value: int) -> None:
        self.inner.probe_count = value

    @property
    def breaker(self) -> CircuitBreaker:
        return self.client.breaker_for(self.interface_id)

    def recognizes(self, attribute_name: str, value: str) -> bool:
        return self.inner.recognizes(attribute_name, value)

    def submit(self, values: Mapping[str, str]) -> ResponsePage:
        try:
            return self.client.call(
                lambda: self.inner.submit(values), source_id=self.interface_id
            )
        except (WebAccessError, CircuitOpenError, BudgetExhaustedError):
            return ResponsePage(
                f"deep://{self.interface_id}/unavailable", _UNAVAILABLE_TEXT
            )
