"""Fault-tolerant Web access: injection, retries, breakers, degradation.

The original WebIQ system faced the real 2006 Web; this package restores
that unreliability to the offline reproduction — deterministically — and
provides the machinery to survive it:

- :mod:`repro.resilience.faults` — :class:`FaultProfile` plus the
  :class:`FlakySearchEngine` / :class:`FlakyDeepWebSource` wrappers that
  inject timeouts, 5xx transients, rate limits and truncated pages;
- :mod:`repro.resilience.client` — :class:`ResilientClient` (retry with
  exponential backoff + jitter, per-component budgets, per-source circuit
  breakers), the drop-in :class:`ResilientSearchEngine` /
  :class:`ResilientDeepWebSource` proxies, and the
  :class:`DegradationReport` a run attaches to its result.

Enable it per run via ``WebIQConfig(resilience=ResilienceConfig(...))``;
with the default ``FaultProfile()`` (rate 0) the whole layer is an exact
pass-through.
"""

from repro.resilience.client import (
    BreakerPolicy,
    Budget,
    CircuitBreaker,
    DegradationReport,
    ResilienceConfig,
    ResilientClient,
    ResilientDeepWebSource,
    ResilientSearchEngine,
    RetryPolicy,
)
from repro.resilience.faults import (
    FaultKind,
    FaultProfile,
    FlakyDeepWebSource,
    FlakySearchEngine,
    KillSwitch,
    PreemptionPoint,
)

__all__ = [
    "FaultKind",
    "FaultProfile",
    "FlakySearchEngine",
    "FlakyDeepWebSource",
    "KillSwitch",
    "PreemptionPoint",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "Budget",
    "DegradationReport",
    "ResilienceConfig",
    "ResilientClient",
    "ResilientSearchEngine",
    "ResilientDeepWebSource",
]
