"""Deterministic fault injection for the simulated Web substrates.

The paper's WebIQ ran against the real 2006 Web: Google round trips that
time out, Deep-Web forms that error, rate-limit, or come back truncated.
The offline reproduction's substrates answer every call instantly and
perfectly, so none of the resilience the original system implicitly needed
is exercised. This module restores that hostility — deterministically.

:class:`FlakySearchEngine` and :class:`FlakyDeepWebSource` wrap the real
substrates and, driven by a :class:`FaultProfile` and
:func:`repro.util.rng.derive_rng`, convert a configurable fraction of calls
into failures:

- ``timeout``   — the call raises :class:`~repro.util.errors.WebTimeoutError`;
- ``transient`` — a 5xx-style :class:`~repro.util.errors.TransientWebError`;
- ``rate_limit``— a 429-style :class:`~repro.util.errors.RateLimitError`;
- ``garbled``   — the call *succeeds* but the payload is truncated
  mid-transfer, exercising the downstream parsing heuristics instead of the
  retry loop.

Every faulted call still increments the wrapped substrate's query/probe
counter: the round trip happened and must be charged to Figure 8's overhead
accounts, exactly as a failed Google query still cost the paper 0.1-0.5 s.

**Fault determinism.** For the search engine, a call's fate is a pure
function of ``(profile seed, scope, method, arguments, retry attempt)``:
whether a given query faults depends only on the query itself and on how
many times it has been retried within one resilient call — never on what
other queries were issued before it. Re-issuing a query replays the same
fate sequence. This keeps fault behaviour stable under call reordering and
composes with the :mod:`repro.perf` cache: answering a repeated query from
the cache cannot shift the fate of the queries that still reach the
engine, so cached and uncached runs see the same Web. Deep-Web sources
keep sequential streams (probes are stateful submissions), partitioned
per ``(source, checkpoint unit)``: inside a unit scope (see
:mod:`repro.exec.context`) the stream is derived from the unit key and
starts at position 0, so a unit's fates are independent of which units
ran before it, of worker interleaving under the parallel executor, and
of where a resumed run picks up — no fast-forwarding needed. Outside any
unit (direct use in tests) the legacy per-source sequential stream
applies unchanged. With ``fault_rate=0.0`` the wrappers are exact
pass-throughs: results, counters and downstream RNG streams are
bit-identical to the unwrapped substrates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.deepweb.source import DeepWebSource, ResponsePage
from repro.surfaceweb.engine import (
    DEFAULT_PROXIMITY_WINDOW,
    SearchEngine,
    SearchResult,
)
from repro.util.errors import (
    PreemptionError,
    RateLimitError,
    TransientWebError,
    WebAccessError,
    WebTimeoutError,
)
from repro.util.rng import derive_rng

from repro.exec.context import UnitKey, current_unit

__all__ = [
    "FaultKind",
    "FaultProfile",
    "FlakySearchEngine",
    "FlakyDeepWebSource",
    "KillSwitch",
    "PreemptionPoint",
    "error_for_fault",
    "garble_text",
]


class FaultKind(enum.Enum):
    """Failure modes a flaky substrate can inject."""

    TIMEOUT = "timeout"
    TRANSIENT = "transient"
    RATE_LIMIT = "rate_limit"
    GARBLED = "garbled"


#: Fixed draw order — iteration over the enum is insertion-ordered, but an
#: explicit tuple makes the weighted-pick order an API guarantee.
_KIND_ORDER = (
    FaultKind.TIMEOUT,
    FaultKind.TRANSIENT,
    FaultKind.RATE_LIMIT,
    FaultKind.GARBLED,
)


@dataclass(frozen=True)
class FaultProfile:
    """How often and in which ways simulated Web access fails.

    ``fault_rate`` is the probability that any single call faults; the
    ``*_weight`` fields set the relative likelihood of each
    :class:`FaultKind` among faulted calls. ``seed`` roots the per-wrapper
    fault streams (independent of the dataset seed, so enabling faults
    never perturbs corpus or interface generation).
    """

    fault_rate: float = 0.0
    timeout_weight: float = 1.0
    transient_weight: float = 1.0
    rate_limit_weight: float = 1.0
    garbled_weight: float = 1.0
    seed: int = 0
    #: deterministic process death: abort the run right after journal
    #: boundary N (requires checkpointing; see :class:`KillSwitch`).
    #: ``None`` (default) never preempts. Like fault fates, the kill point
    #: is part of the *injected hostility*, not of the run's identity —
    #: a resumed run deliberately drops it.
    preempt_at: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        weights = self._weights()
        if any(w < 0 for w in weights):
            raise ValueError("fault weights must be non-negative")
        if self.fault_rate > 0 and not sum(weights):
            raise ValueError("a positive fault_rate needs a positive weight")
        if self.preempt_at is not None and self.preempt_at < 0:
            raise ValueError("preempt_at must be non-negative")

    def kill_switch(self) -> Optional["KillSwitch"]:
        """The profile's :class:`KillSwitch`, or ``None`` if it never kills."""
        if self.preempt_at is None:
            return None
        return KillSwitch(self.preempt_at)

    def _weights(self) -> List[float]:
        return [
            self.timeout_weight,
            self.transient_weight,
            self.rate_limit_weight,
            self.garbled_weight,
        ]

    def draw(self, rng) -> Optional[FaultKind]:
        """Decide the fate of one call: ``None`` (healthy) or a fault kind."""
        if self.fault_rate <= 0.0:
            return None
        if rng.random() >= self.fault_rate:
            return None
        weights = self._weights()
        pick = rng.random() * sum(weights)
        cumulative = 0.0
        for kind, weight in zip(_KIND_ORDER, weights):
            cumulative += weight
            if pick < cumulative:
                return kind
        return _KIND_ORDER[-1]  # guard against float round-off


class KillSwitch:
    """Deterministic preemption at a chosen journal boundary.

    The checkpoint layer calls :meth:`check` with each journal record's
    index immediately *after* the record is durably on disk; when the
    index matches ``kill_at`` the switch raises
    :class:`~repro.util.errors.PreemptionError`, simulating the process
    dying at exactly that boundary — the worst-case crash the journal's
    write-ahead discipline is designed to survive. Use
    :meth:`sweep_point` to pick a boundary pseudo-randomly from a seed,
    the same derived-stream style as fault fates.
    """

    def __init__(self, kill_at: int) -> None:
        if kill_at < 0:
            raise ValueError("kill_at must be non-negative")
        self.kill_at = kill_at
        #: True once the switch has fired (a fired switch stays quiet, so
        #: a resumed run re-armed by mistake cannot kill itself twice at
        #: a boundary that no longer exists).
        self.fired = False

    @staticmethod
    def sweep_point(seed: int, n_boundaries: int) -> int:
        """A seeded kill point in ``[0, n_boundaries)`` for sweep tests."""
        if n_boundaries < 1:
            raise ValueError("n_boundaries must be at least 1")
        return derive_rng(seed, "preemption").randrange(n_boundaries)

    def check(self, boundary: int) -> None:
        """Raise :class:`PreemptionError` when ``boundary`` is the kill point."""
        if self.fired or boundary != self.kill_at:
            return
        self.fired = True
        raise PreemptionError(
            f"run preempted at journal boundary {boundary}"
        )


#: The ISSUE-facing alias: a *preemption point* is the arming side of the
#: same mechanism (where may the run die?), the kill switch the firing side.
PreemptionPoint = KillSwitch


def error_for_fault(kind: FaultKind, where: str) -> WebAccessError:
    """The exception a raising fault kind surfaces as."""
    if kind is FaultKind.TIMEOUT:
        return WebTimeoutError(f"{where}: no response within deadline")
    if kind is FaultKind.TRANSIENT:
        return TransientWebError(f"{where}: HTTP 502 bad gateway")
    if kind is FaultKind.RATE_LIMIT:
        return RateLimitError(f"{where}: HTTP 429 rate limit exceeded")
    raise ValueError(f"{kind} does not raise")  # pragma: no cover


def garble_text(text: str) -> str:
    """Simulate a connection dropped mid-transfer: keep a prefix only."""
    return text[: len(text) // 2]


class FlakySearchEngine:
    """A :class:`SearchEngine` whose round trips fail per a fault profile.

    Drop-in replacement: exposes the engine's full query API plus the
    ``query_count`` bookkeeping the pipeline reads. Faulted calls raise a
    :class:`~repro.util.errors.WebAccessError` subclass (or, for
    ``garbled``, succeed with truncated snippets / a zero hit count).

    Fates are keyed by call content and retry attempt (see module docs):
    ``attempt_provider``, when given, supplies the 0-based attempt index of
    the current resilient call (wire it to
    :attr:`~repro.resilience.client.ResilientClient.current_attempt`) so
    that retrying a faulted query re-rolls its fate while re-*issuing* the
    query later replays it. ``garbled_count`` counts silently-corrupted
    answers; cache layers read it to refuse to memoise them.
    """

    def __init__(
        self,
        inner: SearchEngine,
        profile: FaultProfile,
        scope: str = "engine",
        on_fault: Optional[Callable[[FaultKind], None]] = None,
        attempt_provider: Optional[Callable[[], int]] = None,
    ) -> None:
        self.inner = inner
        self.profile = profile
        self.on_fault = on_fault
        self.garbled_count = 0
        self._scope = scope
        self._attempt_provider = attempt_provider

    # ------------------------------------------------------- engine facade
    @property
    def query_count(self) -> int:
        return self.inner.query_count

    def reset_query_count(self) -> None:
        self.inner.reset_query_count()

    @property
    def n_documents(self) -> int:
        return self.inner.n_documents

    def search(self, query: str, max_results: int = 10) -> List[SearchResult]:
        kind = self._charge_fault("search", query, max_results)
        results = self.inner.search(query, max_results)
        if kind is FaultKind.GARBLED:
            return [
                SearchResult(r.doc_id, r.url, r.title, garble_text(r.snippet))
                for r in results
            ]
        return results

    def num_hits(self, query: str) -> int:
        kind = self._charge_fault("num_hits", query)
        hits = self.inner.num_hits(query)
        # A truncated hit-count page reads as "no evidence", not garbage.
        return 0 if kind is FaultKind.GARBLED else hits

    def num_hits_proximity(
        self,
        phrase_a: str,
        phrase_b: str,
        window: int = DEFAULT_PROXIMITY_WINDOW,
    ) -> int:
        kind = self._charge_fault("num_hits_proximity", phrase_a, phrase_b,
                                  window)
        hits = self.inner.num_hits_proximity(phrase_a, phrase_b, window)
        return 0 if kind is FaultKind.GARBLED else hits

    # ---------------------------------------------------------- internals
    def _attempt(self) -> int:
        return self._attempt_provider() if self._attempt_provider else 0

    def _charge_fault(self, where: str, *call_key: object) -> Optional[FaultKind]:
        """Draw this call's fate; raising kinds charge the trip, then raise.

        The fate RNG is derived fresh per call from the full call identity
        plus the retry attempt, making it independent of call history.
        """
        rng = derive_rng(
            self.profile.seed, "faults", self._scope, where,
            self._attempt(), *call_key,
        )
        kind = self.profile.draw(rng)
        if kind is not None and self.on_fault is not None:
            self.on_fault(kind)
        if kind is None:
            return kind
        if kind is FaultKind.GARBLED:
            self.garbled_count += 1
            return kind
        self.inner.query_count += 1  # the failed round trip still happened
        raise error_for_fault(kind, f"search engine {where}")


class FlakyDeepWebSource:
    """A :class:`DeepWebSource` whose form submissions fail per a profile.

    Each source gets an independent fault stream derived from its
    interface id, so probing order across sources does not couple their
    failures. Garbled responses return a truncated page — the §4 response
    heuristics must then make sense of half a results page, exactly the
    "analyse what came back" burden real crawlers carry.
    """

    def __init__(
        self,
        inner: DeepWebSource,
        profile: FaultProfile,
        on_fault: Optional[Callable[[FaultKind], None]] = None,
    ) -> None:
        self.inner = inner
        self.profile = profile
        self.on_fault = on_fault
        self.garbled_count = 0
        #: legacy sequential stream, used only outside any unit scope
        self._rng = derive_rng(
            profile.seed, "faults", "source", inner.interface.interface_id
        )
        #: per-unit sequential streams (see module docs): each starts at
        #: position 0 when its unit first probes this source, making fates
        #: a pure function of ``(seed, source, unit, draw index)``.
        self._unit_rngs: Dict[UnitKey, object] = {}
        #: total fate draws consumed, across all streams. Not the same as
        #: ``probe_count`` (a submission rejected for an unknown attribute
        #: name draws a fate but counts no probe); journaled as a counter
        #: for accounting — per-unit streams need no fast-forward.
        self.draws = 0

    # ------------------------------------------------------- source facade
    @property
    def interface(self):
        return self.inner.interface

    @property
    def interface_id(self) -> str:
        return self.inner.interface.interface_id

    @property
    def records(self) -> Sequence[Mapping[str, str]]:
        return self.inner.records

    @property
    def required_attributes(self):
        return self.inner.required_attributes

    @property
    def probe_count(self) -> int:
        return self.inner.probe_count

    @probe_count.setter
    def probe_count(self, value: int) -> None:
        self.inner.probe_count = value

    def recognizes(self, attribute_name: str, value: str) -> bool:
        return self.inner.recognizes(attribute_name, value)

    def fast_forward(self, draws: int) -> None:
        """Advance a fresh *legacy* stream past ``draws`` historical fates.

        Only meaningful for standalone (outside-unit-scope) use, where the
        sequential per-source stream still applies: each historical fate
        is re-drawn and discarded. Pipeline runs draw from per-unit
        streams that need no re-positioning, so resume no longer calls
        this.
        """
        if self.draws:
            raise ValueError(
                "fast_forward needs a fresh fault stream "
                f"(already drew {self.draws})"
            )
        for _ in range(draws):
            self.profile.draw(self._rng)
        self.draws = draws

    def _fate_rng(self):
        """This thread's fate stream: per-unit inside a unit scope (derived
        fresh from the unit key on first use), the legacy sequential
        per-source stream otherwise."""
        unit = current_unit()
        if unit is None:
            return self._rng
        rng = self._unit_rngs.get(unit)
        if rng is None:
            rng = derive_rng(
                self.profile.seed, "faults", "source",
                self.inner.interface.interface_id, *unit,
            )
            self._unit_rngs[unit] = rng
        return rng

    def submit(self, values: Mapping[str, str]) -> ResponsePage:
        self.draws += 1
        kind = self.profile.draw(self._fate_rng())
        if kind is not None and self.on_fault is not None:
            self.on_fault(kind)
        if kind is not None and kind is not FaultKind.GARBLED:
            self.inner.probe_count += 1  # the failed submission still counts
            raise error_for_fault(
                kind, f"source {self.interface_id} submit"
            )
        page = self.inner.submit(values)
        if kind is FaultKind.GARBLED:
            self.garbled_count += 1
            return ResponsePage(page.url, garble_text(page.text))
        return page
