"""General-purpose utilities shared by every WebIQ subsystem.

The paper's experiments depend on two kinds of infrastructure that do not
belong to any single component: deterministic pseudo-randomness (so the
synthetic Surface Web, the interface sets, and every experiment are exactly
reproducible) and a simulated clock that charges per-query latencies the way
the paper reports them ("typical retrieval time from Google for one query is
0.1-0.5 second").
"""

from repro.util.clock import SimulatedClock, StopwatchReport
from repro.util.errors import (
    ReproError,
    QuerySyntaxError,
    UnknownDomainError,
    ValidationError,
)
from repro.util.rng import derive_rng, stable_hash

__all__ = [
    "SimulatedClock",
    "StopwatchReport",
    "ReproError",
    "QuerySyntaxError",
    "UnknownDomainError",
    "ValidationError",
    "derive_rng",
    "stable_hash",
]
