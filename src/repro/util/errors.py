"""Exception hierarchy for the WebIQ reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without masking programming errors such as
``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class QuerySyntaxError(ReproError):
    """A search-engine query string could not be parsed.

    Raised by :class:`repro.surfaceweb.query.QueryParser` for malformed input
    such as unbalanced double quotes or an empty query.
    """


class UnknownDomainError(ReproError):
    """A dataset domain name is not one of the five ICQ domains."""


class ValidationError(ReproError):
    """Invalid argument or state detected inside a WebIQ component.

    Used for contract violations that are recoverable by the caller, e.g.
    asking a classifier to predict before it has been trained.
    """


class WebAccessError(ReproError):
    """A remote Web access (search query or form submission) failed.

    Base class of the fault family injected by :mod:`repro.resilience`;
    every subclass represents a failure mode that a retry may cure, which
    is why :class:`repro.resilience.ResilientClient` catches exactly this
    type in its retry loop.
    """


class TransientWebError(WebAccessError):
    """A transient server-side failure (the 5xx family: bad gateway, ...)."""


class RateLimitError(WebAccessError):
    """The remote endpoint rejected the request for quota reasons (429)."""


class WebTimeoutError(WebAccessError):
    """The remote endpoint did not answer within the deadline."""


class CircuitOpenError(ReproError):
    """A call was rejected locally because the target's circuit breaker is
    open — the source has failed repeatedly and is being rested instead of
    consuming more of the probe budget."""


class BudgetExhaustedError(ReproError):
    """A component's query/probe budget is spent; the call was not sent."""


class PreemptionError(ReproError):
    """The run was deterministically preempted at a journal boundary.

    Raised by :class:`repro.resilience.faults.KillSwitch` immediately
    *after* a journal record reached disk, simulating process death at
    that exact point. Deliberately **not** a :class:`WebAccessError`:
    preemption must never enter the retry loop — a killed process does
    not get retried, it gets resumed.
    """


class DeadlineExceededError(PreemptionError):
    """A supervised unit (or the whole run) overran its wall-clock budget.

    Charged against :class:`repro.util.clock.SimulatedClock` rates, raised
    only *after* the offending unit's journal record is durable — so a
    deadline kill, like any preemption, is resume-eligible and loses no
    paid-for work. Subclasses :class:`PreemptionError` deliberately: the
    supervisor treats both identically (journal durable, restart, resume).
    """

    def __init__(self, message: str, *, scope: str = "unit",
                 seconds: float = 0.0, deadline: float = 0.0) -> None:
        super().__init__(message)
        #: ``"unit"`` or ``"run"`` — which budget was overrun
        self.scope = scope
        #: simulated seconds actually spent when the deadline fired
        self.seconds = seconds
        #: the configured budget, in simulated seconds
        self.deadline = deadline


class InjectedCrashError(ReproError):
    """A deterministic crash injected into a unit by a test/chaos schedule.

    Raised by :class:`repro.supervisor.UnitFaultInjector` inside the unit
    bracket. Deliberately **not** a :class:`WebAccessError` — it models an
    arbitrary in-process fault (segfault stand-in), not a remote failure,
    so the resilience retry loop must never see it.
    """


class SupervisionExhaustedError(ReproError):
    """The supervisor spent its restart budget without completing the run.

    Carries the final attempt's failure as ``__cause__`` so callers see
    the real reason the run kept dying.
    """


class ExportCorruptionError(ReproError):
    """A persisted run export could not be parsed (truncated or bit-rotten).

    Wraps the raw ``json.JSONDecodeError`` from :func:`repro.io.load_run_result`
    into a typed error naming the file path and byte offset of the damage.
    """

    def __init__(self, message: str, *, path: str, offset: int) -> None:
        super().__init__(message)
        #: filesystem path of the corrupt export
        self.path = path
        #: byte offset at which decoding failed
        self.offset = offset


class JournalError(ReproError):
    """Base class for run-journal failures (:mod:`repro.checkpoint`)."""


class JournalCorruptionError(JournalError):
    """A journal record is torn, CRC-mismatched, out of sequence or
    duplicated. The message names the offending record index; resuming
    from such a journal is refused rather than risking silent divergence."""


class JournalFormatError(JournalError):
    """A journal record carries a schema version newer than this reader."""


class JournalMismatchError(JournalError):
    """The journal on disk belongs to a different run configuration, or
    its replay diverged from the unit sequence the resumed run produces."""


class ResumeError(JournalError):
    """Resume was requested in a configuration that cannot honour the
    byte-identical replay guarantee (e.g. with observability attached)."""


class ServiceError(ReproError):
    """Base class for matching-service failures (:mod:`repro.service`)."""


class AdmissionRejected(ServiceError):
    """The service declined to queue a request, with a typed reason.

    ``reason`` is one of ``"queue_full"`` (the bounded request queue is at
    capacity — overload shedding), ``"tenant_over_quota"`` (the tenant's
    cumulative spend already exceeds a :class:`repro.service.TenantQuota`
    limit) or ``"deadline_infeasible"`` (the requested deadline cannot fit
    even one round trip, so admitting it would only waste queue slots).
    Rejection happens *before* any warm state is touched: a rejected
    request costs the service nothing but this exception.
    """

    def __init__(self, message: str, *, reason: str, tenant: str) -> None:
        super().__init__(message)
        #: ``"queue_full"`` / ``"tenant_over_quota"`` / ``"deadline_infeasible"``
        self.reason = reason
        #: the tenant whose request was rejected
        self.tenant = tenant


class StaleEpochError(ServiceError):
    """An epoch publication lost the race: its parent is no longer the
    current epoch. Under the service's serial commit discipline this can
    only mean a bug (two executors over one :class:`WarmState`), so the
    publication is refused rather than silently dropping the other
    writer's epoch — the epoch-publication invariant law audits that the
    published chain has no such gaps."""


class RegistryError(ReproError):
    """Base class for attribute-registry failures (:mod:`repro.registry`)."""


class RegistryCorruptionError(RegistryError):
    """The registry store is torn, CRC-mismatched, or internally
    inconsistent (duplicate interface, duplicate cluster id, a member
    claimed by two entries, ...). The message names the damaged entry;
    loading such a store is refused rather than risking silent drift
    between the registry and the batch oracle."""


class RegistryFormatError(RegistryError):
    """The registry store carries a schema version newer than this reader."""


class RegistryMismatchError(RegistryError):
    """The registry on disk does not fit the requested operation: missing
    store, wrong domain, different similarity/threshold/linkage
    configuration, or an interface assimilated twice."""


class RegistryLockedError(RegistryError):
    """A second writer tried to open a registry directory for writing.

    Registry writes are guarded by a sentinel lock file
    (``registry.lock``); a writer finding one refuses instead of racing
    the holder into a torn store. Carries the directory and whatever
    holder identity the lock file records (``"unknown"`` when the lock
    file itself is unreadable — a torn lock still counts as held, because
    the safe reading of damage is "someone is mid-write").
    """

    def __init__(self, message: str, *, directory: str,
                 owner: str = "unknown") -> None:
        super().__init__(message)
        #: the registry directory that is locked
        self.directory = directory
        #: holder identity recorded in the lock file (best effort)
        self.owner = owner
