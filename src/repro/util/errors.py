"""Exception hierarchy for the WebIQ reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without masking programming errors such as
``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class QuerySyntaxError(ReproError):
    """A search-engine query string could not be parsed.

    Raised by :class:`repro.surfaceweb.query.QueryParser` for malformed input
    such as unbalanced double quotes or an empty query.
    """


class UnknownDomainError(ReproError):
    """A dataset domain name is not one of the five ICQ domains."""


class ValidationError(ReproError):
    """Invalid argument or state detected inside a WebIQ component.

    Used for contract violations that are recoverable by the caller, e.g.
    asking a classifier to predict before it has been trained.
    """
