"""Deterministic pseudo-randomness helpers.

All stochastic choices in the library (corpus generation, interface-set
generation, noise injection) flow through :func:`derive_rng`, which derives an
independent ``random.Random`` stream from a root seed and a string scope.
Deriving per-scope streams keeps experiments stable under code evolution: the
corpus for the ``book`` domain does not change when the ``airfare`` generator
draws a different number of samples.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["stable_hash", "derive_rng"]


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's builtin ``hash`` is randomised per process for strings, which
    would make experiment results irreproducible; this helper hashes the
    ``repr`` of each part through SHA-256 instead.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *scope: object) -> random.Random:
    """Create an independent ``random.Random`` for ``scope`` under ``seed``.

    >>> derive_rng(7, "corpus", "book").random() == derive_rng(7, "corpus", "book").random()
    True
    >>> derive_rng(7, "a").random() != derive_rng(7, "b").random()
    True
    """
    return random.Random(stable_hash(seed, *scope))
