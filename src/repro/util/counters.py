"""Hot-path work counters: cheap, off by default, strictly read-only.

The profiler (:mod:`repro.obs.profile`) wants to know how much *work* the
substrate inner loops did — tokeniser calls, postings intersections,
proximity window checks, similarity evaluations, PMI phrase queries,
blocking-index probes, raw engine round trips. Those loops live at the
very bottom of the dependency stack (``repro.text``, ``repro.surfaceweb``,
``repro.matching``, ``repro.registry``), which cannot import
``repro.obs`` without creating a cycle (``obs`` → provenance → matching →
text). So the counting substrate lives here, in ``repro.util``, below
everything.

Design constraints, in order of importance:

1. **Read-only.** A counter bump must not change a single behavioural
   byte. Counters never gate logic, never consume randomness, never
   raise. Profiling on ⇒ run exports bit-identical to profiling off —
   the metamorphic suite in ``tests/test_obs_profile.py`` enforces it.
2. **Free when off.** The default state is "no collector installed": the
   per-site cost is one module-attribute load and a ``None`` check. The
   pipeline only installs a collector when ``ObsConfig.profile`` is set.
3. **Deterministic under the parallel executor.** Speculative workers run
   the same substrate code on worker threads against snapshot worlds;
   counting their work would make counter values depend on scheduling.
   A collector therefore only accepts bumps from the thread that
   installed it — the serial commit thread — so counts are identical at
   every worker count, for the same reason traces are.

Usage at a counter site (the fast-path guard is deliberately inlined at
each site rather than hidden behind a function call)::

    from repro.util import counters as work

    def tokenize(text):
        if work.ACTIVE is not None:
            work.ACTIVE.bump("tokenizer.calls")
        ...

and around a profiled region::

    with work.collecting(my_counters):
        ...          # bumps from this thread accumulate into my_counters
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["WorkCounters", "ACTIVE", "collecting", "bump"]


class WorkCounters:
    """One run's accumulated work counts, keyed by dotted counter name."""

    __slots__ = ("counts", "_owner")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self._owner: Optional[int] = None

    def bump(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` — ignored off the owning thread.

        The thread guard is what keeps counts deterministic under the
        speculative executor: workers re-run substrate code purely to
        prefetch latency, and their work must not be double-counted.
        """
        if self._owner is not None and threading.get_ident() != self._owner:
            return
        self.counts[name] = self.counts.get(name, 0) + n

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Sorted snapshot, ready for deterministic JSON export."""
        return {name: self.counts[name] for name in sorted(self.counts)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkCounters({self.as_dict()!r})"


#: The installed collector, or ``None`` (the default: counting disabled).
#: Hot-path sites read this directly — see the module docstring.
ACTIVE: Optional[WorkCounters] = None


def bump(name: str, n: int = 1) -> None:
    """Bump a counter on the installed collector, if any.

    Convenience for cold sites; hot loops should inline the
    ``ACTIVE is not None`` guard to skip the call entirely when off.
    """
    if ACTIVE is not None:
        ACTIVE.bump(name, n)


@contextmanager
def collecting(counters: WorkCounters) -> Iterator[WorkCounters]:
    """Install ``counters`` as the collector for the ``with`` body.

    Only the installing thread's bumps are accepted (see
    :meth:`WorkCounters.bump`). The previous collector — normally
    ``None`` — is restored on exit, even on exception, so nested or
    sequential profiled regions compose.
    """
    global ACTIVE
    previous = counters._owner
    counters._owner = threading.get_ident()
    saved = ACTIVE
    ACTIVE = counters
    try:
        yield counters
    finally:
        ACTIVE = saved
        counters._owner = previous
