"""Atomic file writes: temp file + ``os.replace``, never a torn target.

Every JSON artifact the library persists — dataset snapshots, run
archives, journal records — goes through :func:`atomic_write_text` /
:func:`atomic_write_json`. The content is fully serialised in memory
first, written to a temporary file *in the target's directory* (so the
rename cannot cross filesystems), flushed and fsynced, and only then
renamed over the target. A crash at any point leaves either the old
complete file or the new complete file — never a truncated hybrid.

After the rename the *parent directory* is fsynced too: ``os.replace``
updates a directory entry, and on a power loss the entry itself can be
lost even though the file's blocks are safe — leaving a journal whose
newest record silently vanished. The directory fsync makes the rename
durable, which is what lets the run journal promise "a crash loses at
most the unit in flight".
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` so a crash never leaves a torn file."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def _fsync_directory(directory: str) -> None:
    """Make a just-completed rename in ``directory`` durable.

    Best-effort on platforms/filesystems where directories cannot be
    opened or fsynced (e.g. Windows): the write itself already succeeded,
    so an unsupported directory fsync degrades durability, not
    correctness.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_json(path: str, payload: Any, *, indent: int = 2) -> None:
    """Serialise ``payload`` fully in memory, then write it atomically.

    Serialising first means an unserialisable payload raises before the
    filesystem is touched at all; the byte format (``indent=2``,
    ``sort_keys=True``) matches the library's historical dumps exactly.
    """
    atomic_write_text(path, json.dumps(payload, indent=indent, sort_keys=True))
