"""Simulated wall-clock accounting for the overhead analysis (Figure 8).

The paper measures component overhead in minutes, dominated by round trips to
Google (0.1-0.5 s per query) and to Deep-Web sources. Those latencies do not
exist in an offline reproduction, so :class:`SimulatedClock` charges them
explicitly: every simulated search-engine query and every deep-web probe adds
its nominal latency to a named account. Local compute time can be added on
top, giving per-component timings whose *relative* shape matches Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager
import time

__all__ = ["SimulatedClock", "StopwatchReport"]

#: Nominal latency charged per search-engine query, in seconds. The paper:
#: "the typical retrieval time from Google for one query is 0.1-0.5 second";
#: we charge the midpoint.
SEARCH_QUERY_SECONDS = 0.3

#: Nominal latency charged per Deep-Web probing query, in seconds. Form
#: submissions are full page loads and are slower than API search calls.
DEEP_PROBE_SECONDS = 1.5


@dataclass
class StopwatchReport:
    """Per-account simulated seconds, as produced by :class:`SimulatedClock`."""

    seconds_by_account: Dict[str, float] = field(default_factory=dict)
    #: per-account simulated remote round trips (queries/probes) — the
    #: counts the seconds were derived from; local-compute charges add none
    queries_by_account: Dict[str, int] = field(default_factory=dict)

    def seconds(self, account: str) -> float:
        return self.seconds_by_account.get(account, 0.0)

    def minutes(self, account: str) -> float:
        return self.seconds(account) / 60.0

    def queries(self, account: str) -> int:
        return self.queries_by_account.get(account, 0)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_account.values())

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0

    @property
    def total_queries(self) -> int:
        return sum(self.queries_by_account.values())


class SimulatedClock:
    """Accumulates simulated latency into named accounts.

    Accounts used by the pipeline mirror Figure 8's bars: ``"matching"``,
    ``"surface"``, ``"attr_surface"``, ``"attr_deep"``.
    """

    def __init__(
        self,
        search_query_seconds: float = SEARCH_QUERY_SECONDS,
        deep_probe_seconds: float = DEEP_PROBE_SECONDS,
    ) -> None:
        if search_query_seconds < 0 or deep_probe_seconds < 0:
            raise ValueError("latencies must be non-negative")
        self.search_query_seconds = search_query_seconds
        self.deep_probe_seconds = deep_probe_seconds
        self._accounts: Dict[str, float] = {}
        self._query_counts: Dict[str, int] = {}

    def charge_search_query(self, account: str, count: int = 1) -> None:
        """Charge ``count`` search-engine round trips to ``account``."""
        self._charge(account, self.search_query_seconds * count, count)

    def charge_deep_probe(self, account: str, count: int = 1) -> None:
        """Charge ``count`` Deep-Web form submissions to ``account``."""
        self._charge(account, self.deep_probe_seconds * count, count)

    def charge_seconds(self, account: str, seconds: float) -> None:
        """Charge raw seconds (e.g. measured local compute) to ``account``."""
        self._charge(account, seconds, 0)

    @contextmanager
    def measure(self, account: str) -> Iterator[None]:
        """Charge real elapsed wall time of the ``with`` body to ``account``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.charge_seconds(account, time.perf_counter() - start)

    def query_count(self, account: str) -> int:
        """Number of simulated remote queries charged to ``account``."""
        return self._query_counts.get(account, 0)

    @property
    def total_query_count(self) -> int:
        return sum(self._query_counts.values())

    @property
    def now_seconds(self) -> float:
        """Total simulated seconds charged so far — the run's "current
        time", used to timestamp observability traces deterministically."""
        return sum(self._accounts.values())

    def report(self) -> StopwatchReport:
        return StopwatchReport(dict(self._accounts), dict(self._query_counts))

    def _charge(self, account: str, seconds: float, queries: int) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._accounts[account] = self._accounts.get(account, 0.0) + seconds
        if queries:
            self._query_counts[account] = self._query_counts.get(account, 0) + queries
