"""The complete WebIQ + IceQ pipeline evaluated in paper §6.

:class:`WebIQMatcher` runs instance acquisition (with any subset of the
three WebIQ components enabled) followed by IceQ matching, evaluates
accuracy against the dataset's ground truth, and accounts the overhead of
every component on a :class:`~repro.util.clock.SimulatedClock`:

- search-engine queries (Surface, Attr-Surface) are charged the paper's
  typical Google round-trip ("0.1-0.5 second" — we charge the midpoint);
- Deep-Web probes (Attr-Deep) are charged a form-submission latency;
- matching is charged a nominal per-similarity-evaluation cost calibrated
  to the paper's 2006 hardware, so Figure 8's relative shape is preserved.

When a :class:`~repro.resilience.ResilienceConfig` is attached, the run
executes against fault-injected substrates behind the resilient proxies:
retried round trips flow into the ordinary per-component accounts (they
were real round trips), backoff waits are charged to ``<component>_retry``
accounts, and the resulting :class:`~repro.resilience.DegradationReport`
rides on the run result — Figure 8's overhead then reflects what surviving
a flaky Web actually costs.

When a :class:`~repro.perf.CacheConfig` is attached, the search engine is
additionally wrapped in a :class:`~repro.perf.CachingSearchEngine` sitting
*above* the resilient proxy: cache hits never reach the retry loop, so
they consume no query budget, charge no latency, and leave the stopwatch
untouched — only real round trips bill. The resulting
:class:`~repro.perf.CacheStats` rides on the run result.

When an :class:`~repro.obs.ObsConfig` is attached, the run is traced: a
root ``run`` span with one child span per pipeline phase, observed
pass-through layers above the cache (``entry``) and above the resilient
proxy (``transport``), and metrics counters everywhere the other layers
make a decision. The resulting :class:`~repro.obs.Observability` bundle
rides on the run result, where the
:class:`~repro.obs.InvariantChecker` can audit it against the stopwatch,
degradation and cache accounting. Observation is strictly read-only: with
``obs=None`` (the default) the pipeline is bit-identical to earlier
revisions, and with it enabled only the observability artifacts differ.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.session import (
    CheckpointConfig,
    CheckpointReport,
    CheckpointSession,
    open_session,
)
from repro.core.acquisition import (
    AcquisitionConfig,
    AcquisitionReport,
    InstanceAcquirer,
)
from repro.datasets.dataset import DomainDataset
from repro.exec.executors import ExecStats, SerialExecutor, ThreadPoolExecutor
from repro.exec.gateway import (
    GatewayStats,
    LatencyDeepWebSource,
    LatencySearchEngine,
    PrefetchLedger,
)
from repro.exec.spec import Speculator
from repro.matching.clustering import IceQMatcher, MatchResult
from repro.matching.metrics import MatchMetrics, evaluate_matches
from repro.matching.similarity import SimilarityConfig
from repro.registry.assimilate import RegistryReport, build_registry
from repro.registry.store import RegistryStore
from repro.obs.instrument import (
    LAYER_ENTRY,
    LAYER_TRANSPORT,
    Observability,
    ObsConfig,
    ObservedDeepWebSource,
    ObservedSearchEngine,
)
from repro.perf.cache import (
    CacheConfig,
    CachePreload,
    CacheStats,
    CachingSearchEngine,
    ValidationCache,
)
from repro.resilience.client import (
    DegradationReport,
    ResilienceConfig,
    ResilientClient,
    ResilientDeepWebSource,
    ResilientSearchEngine,
)
from repro.resilience.faults import (
    FlakyDeepWebSource,
    FlakySearchEngine,
    KillSwitch,
)
from repro.supervisor import SupervisorConfig, SupervisorReport
from repro.util.clock import SimulatedClock, StopwatchReport
from repro.util.counters import collecting as collecting_counters
from repro.util.errors import ResumeError, ValidationError

__all__ = ["WebIQConfig", "WebIQRunResult", "WebIQMatcher"]

#: Simulated seconds per pairwise similarity evaluation, calibrated so that
#: a 20-interface domain's matching lands in Figure 8's minutes range on
#: the paper's 2006-era hardware.
MATCHING_SECONDS_PER_EVALUATION = 0.012


@dataclass(frozen=True)
class WebIQConfig:
    """Configuration of one pipeline run."""

    enable_surface: bool = True
    enable_attr_deep: bool = True
    enable_attr_surface: bool = True
    #: IceQ clustering threshold τ (paper: 0, then 0.1)
    threshold: float = 0.0
    #: inter-cluster linkage: "average" (default), "single" or "complete"
    linkage: str = "average"
    acquisition: AcquisitionConfig = field(default_factory=AcquisitionConfig)
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    matching_seconds_per_evaluation: float = MATCHING_SECONDS_PER_EVALUATION
    #: fault injection + retry/breaker/budget policy; ``None`` (default)
    #: runs against the pristine substrates exactly as before
    resilience: Optional[ResilienceConfig] = None
    #: query-result caching; ``None`` (default) issues every query for
    #: real. Cached runs are payload-identical to uncached ones — only the
    #: query counts and overhead accounts shrink.
    cache: Optional[CacheConfig] = None
    #: run tracing + metrics; ``None`` (default) observes nothing and
    #: leaves the run bit-identical to an uninstrumented one.
    obs: Optional[ObsConfig] = None
    #: crash-safe checkpointing; ``None`` (default) journals nothing and
    #: leaves the run bit-identical to an unjournaled one. With a
    #: directory attached every completed unit of work is durably
    #: journaled, and ``resume=True`` replays a prior journal without
    #: re-spending a single engine query or source probe on it.
    checkpoint: Optional[CheckpointConfig] = None
    #: supervision hooks — quarantined units, wall-clock deadlines and the
    #: chaos saboteur (see :mod:`repro.supervisor`). Requires a checkpoint
    #: journal: quarantine skips and deadline preemptions are only sound
    #: at journal boundaries. Like ``kill_at``, this is recovery policy,
    #: not run identity — it never enters the journal meta, because the
    #: supervisor legitimately varies it between attempts of one run.
    supervisor: Optional[SupervisorConfig] = None
    #: execution engine pool size. 1 (default) runs the classic serial
    #: loop; N>1 overlaps simulated I/O latency with speculative prefetch
    #: while committing every unit serially in canonical order — runs are
    #: byte-identical for every worker count, so (like ``io_latency``)
    #: this is scheduling, not run identity: excluded from the journal
    #: meta and from JSON exports.
    workers: int = 1
    #: simulated seconds of *real wall-clock sleep* per raw round trip
    #: (search query or form submission). 0.0 (default) keeps the
    #: substrates instantaneous; positive values restore network physics
    #: so the parallel executor has latency to overlap. Results are
    #: identical for any value — only wall-clock time changes.
    io_latency: float = 0.0
    #: directory to persist a canonical attribute registry to
    #: (:mod:`repro.registry`). ``None`` (default) builds none. When set,
    #: the run's post-acquisition interfaces are assimilated one at a
    #: time after matching and the registry's induced matching is audited
    #: against the batch clusters by the InvariantChecker. Registry
    #: construction is bookkeeping outside the run proper: it touches no
    #: clock account, no observability span and no export byte, so runs
    #: with and without it are payload-identical (and like ``workers``
    #: it never enters the journal meta).
    registry: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError("workers must be at least 1")
        if self.io_latency < 0:
            raise ValidationError("io_latency must be non-negative")

    @property
    def webiq_enabled(self) -> bool:
        return (
            self.enable_surface
            or self.enable_attr_deep
            or self.enable_attr_surface
        )


@dataclass
class WebIQRunResult:
    """Everything one run produces: accuracy, acquisition stats, overhead."""

    domain: str
    config: WebIQConfig
    metrics: MatchMetrics
    match_result: MatchResult
    acquisition: Optional[AcquisitionReport]
    stopwatch: StopwatchReport
    #: present iff the run executed under a resilience configuration
    degradation: Optional[DegradationReport] = None
    #: present iff the run executed with the query cache enabled
    cache: Optional[CacheStats] = None
    #: present iff the run executed with observability enabled
    obs: Optional[Observability] = None
    #: present iff the run executed with checkpointing enabled
    checkpoint: Optional[CheckpointReport] = None
    #: present iff the run completed under a :class:`repro.supervisor.RunSupervisor`
    #: (attached by the supervisor, not by the pipeline itself)
    supervisor: Optional[SupervisorReport] = None
    #: the dataset seed the run executed against (attributable diagnostics)
    seed: Optional[int] = None
    #: execution-engine diagnostics (speculation/prefetch accounting).
    #: In-memory only — deliberately excluded from JSON exports, which
    #: must stay byte-identical across worker counts and latencies.
    exec_stats: Optional[ExecStats] = None
    #: present iff the run persisted a registry (``config.registry``).
    #: In-memory only — excluded from JSON exports, which must stay
    #: byte-identical with and without a registry attached.
    registry: Optional["RegistryReport"] = None
    #: present iff the run executed with the query cache enabled: the
    #: post-run cache content as a :class:`~repro.perf.CachePreload`, for
    #: warm-starting a later run. In-memory only — the export's ``cache``
    #: section carries the stats, never the content.
    cache_content: Optional[CachePreload] = None
    #: present iff the run was executed by the matching service
    #: (:mod:`repro.service`), which attaches its per-request coordinates
    #: (request id, tenant, epoch lineage) after the run. Exported as the
    #: format-5 ``service`` section; the equivalence oracle strips it
    #: before byte-comparing against a standalone run.
    service: Optional[object] = None

    def overhead_minutes(self, account: str) -> float:
        return self.stopwatch.minutes(account)


class WebIQMatcher:
    """Run WebIQ acquisition + IceQ matching over a domain dataset."""

    def __init__(self, config: WebIQConfig = WebIQConfig()) -> None:
        self.config = config

    def run(
        self,
        dataset: DomainDataset,
        *,
        warm: Optional[CachePreload] = None,
    ) -> WebIQRunResult:
        """Execute one full run; the dataset is reset first, so runs with
        different configurations over the same dataset are independent.

        ``warm``, when given, seeds the run's query cache and validation
        memo with a :class:`~repro.perf.CachePreload` captured from an
        earlier run *before* any unit executes — the warm run hits where
        the donor run paid, and its export is byte-identical to any other
        run of the same configuration given the same preload (the
        matching service's equivalence oracle). Requires ``config.cache``:
        warm content without a cache to hold it would silently be ignored,
        which is exactly the kind of divergence this layer exists to
        refuse.
        """
        if warm is not None and self.config.cache is None:
            raise ValidationError(
                "a warm CachePreload requires config.cache: without a "
                "query cache there is nowhere to seed the warm content"
            )
        dataset.clear_acquired()
        dataset.reset_counters()
        clock = SimulatedClock()
        obs: Optional[Observability] = None
        if self.config.obs is not None:
            obs = Observability(
                self.config.obs,
                clock_seconds=lambda: clock.now_seconds,
            )
        session: Optional[CheckpointSession] = None
        if self.config.supervisor is not None and self.config.webiq_enabled \
                and self.config.checkpoint is None:
            raise ValidationError(
                "supervision requires a checkpoint journal: quarantine "
                "skips and deadline preemptions are only sound at journal "
                "boundaries — attach a CheckpointConfig"
            )
        if self.config.checkpoint is not None and self.config.webiq_enabled:
            if self.config.checkpoint.resume and obs is not None:
                raise ResumeError(
                    "cannot resume under observability: replayed units issue "
                    "no calls for the tracer to observe, so the resumed "
                    "trace could not match the original — rerun with "
                    "obs=None, or without resume"
                )
            session = open_session(
                self.config.checkpoint,
                self._journal_meta(dataset, warm),
                kill_switch=self._kill_switch(),
            )
            if self.config.supervisor is not None:
                session.supervise(self.config.supervisor, clock)

        acquisition: Optional[AcquisitionReport] = None
        degradation: Optional[DegradationReport] = None
        cache_stats: Optional[CacheStats] = None
        checkpoint_report: Optional[CheckpointReport] = None
        exec_stats: Optional[ExecStats] = None
        cache_engine: Optional[CachingSearchEngine] = None
        validation_cache: Optional[ValidationCache] = None
        with ExitStack() as run_scope:
            if obs is not None:
                run_scope.enter_context(
                    obs.tracer.span("run", domain=dataset.domain)
                )
                if obs.counters is not None:
                    # Profiling: collect hot-path work counters for the
                    # whole run scope. Strictly read-only — the counters
                    # live outside the export payload, and only bumps
                    # from this (serial commit) thread are accepted, so
                    # speculative workers never skew the counts.
                    run_scope.enter_context(collecting_counters(obs.counters))
            if self.config.webiq_enabled:
                engine = dataset.engine
                sources = dataset.sources
                exec_stats = ExecStats(workers=self.config.workers)
                ledger: Optional[PrefetchLedger] = None
                gateway_stats: Optional[GatewayStats] = None
                cancel: Optional[threading.Event] = None
                if self.config.workers > 1 or self.config.io_latency > 0:
                    # The latency gateway sits at the very BOTTOM of the
                    # stack, directly around the raw substrates: only real
                    # round trips sleep (cache hits and flaky fast-fails
                    # never reach it), and the prefetch ledger can skip
                    # exactly the sleeps a speculation already served.
                    gateway_stats = GatewayStats()
                    if self.config.workers > 1:
                        ledger = PrefetchLedger()
                        cancel = threading.Event()
                    engine = LatencySearchEngine(
                        engine, self.config.io_latency,
                        ledger=ledger, stats=gateway_stats,
                    )
                    sources = {
                        source_id: LatencyDeepWebSource(
                            source, self.config.io_latency,
                            ledger=ledger, stats=gateway_stats,
                        )
                        for source_id, source in sources.items()
                    }
                client: Optional[ResilientClient] = None
                flaky_sources: Dict[str, FlakyDeepWebSource] = {}
                if self.config.resilience is not None:
                    client = ResilientClient(self.config.resilience, obs=obs)
                    profile = self.config.resilience.profile
                    engine = ResilientSearchEngine(
                        FlakySearchEngine(
                            engine, profile,
                            on_fault=client.note_injected_fault,
                            attempt_provider=lambda: client.current_attempt,
                        ),
                        client,
                    )
                    # The flaky wrappers are kept by id: a resumed run must
                    # fast-forward each source's fault-fate stream to where
                    # the killed process left it.
                    flaky_sources = {
                        source_id: FlakyDeepWebSource(
                            source, profile,
                            on_fault=client.note_injected_fault,
                        )
                        for source_id, source in sources.items()
                    }
                    sources = {
                        source_id: ResilientDeepWebSource(flaky, client)
                        for source_id, flaky in flaky_sources.items()
                    }
                if obs is not None:
                    # Transport layer: everything crossing here heads for
                    # the (possibly flaky) Web — cache hits never do.
                    engine = ObservedSearchEngine(engine, obs, LAYER_TRANSPORT)
                    sources = {
                        source_id: ObservedDeepWebSource(source, obs)
                        for source_id, source in sources.items()
                    }
                if self.config.cache is not None:
                    # The cache sits ABOVE the resilient proxy: a hit is
                    # served before the retry loop runs, so it consumes no
                    # query budget and charges no latency or backoff.
                    cache_engine = CachingSearchEngine(
                        engine, self.config.cache.max_entries, obs=obs
                    )
                    engine = cache_engine
                    cache_stats = cache_engine.stats
                    validation_cache = ValidationCache()
                    if warm is not None:
                        # Warm start: seed content and recency BEFORE any
                        # unit runs (and before journal replay, mirroring
                        # the donor run, where the preload also preceded
                        # every journaled op). Stats stay at zero — the
                        # warm run counts its own hits against the
                        # preloaded content.
                        warm.apply(cache_engine, validation_cache)
                if obs is not None:
                    # Entry layer: every call a component issues, whether
                    # the cache answers it or not.
                    engine = ObservedSearchEngine(engine, obs, LAYER_ENTRY)
                if session is not None:
                    session.attach_substrates(
                        engine, sources,
                        cache_engine=cache_engine,
                        client=client,
                        flaky_sources=flaky_sources,
                    )
                acquirer = InstanceAcquirer(
                    engine, sources, self.config.acquisition,
                    resilience=client, validation_cache=validation_cache,
                    clock=clock, obs=obs, checkpoint=session,
                    executor=SerialExecutor(exec_stats),
                )
                if self.config.workers > 1:
                    speculator = Speculator(
                        acquirer,
                        raw_engine=dataset.engine,
                        raw_sources=dataset.sources,
                        resilience=self.config.resilience,
                        cache_max_entries=(
                            self.config.cache.max_entries
                            if self.config.cache is not None else None
                        ),
                        cache_engine=cache_engine,
                        client=client,
                        session=session,
                        latency=self.config.io_latency,
                        cancel=cancel,
                        stats=exec_stats,
                    )
                    acquirer.executor = ThreadPoolExecutor(
                        self.config.workers,
                        speculate=speculator.prepare,
                        ledger=ledger,
                        stats=exec_stats,
                        cancel=cancel,
                    )
                try:
                    acquisition = acquirer.acquire(
                        dataset.interfaces,
                        domain_keywords=dataset.spec.keyword_terms(),
                        object_name=dataset.spec.object_name,
                        enable_surface=self.config.enable_surface,
                        enable_attr_deep=self.config.enable_attr_deep,
                        enable_attr_surface=self.config.enable_attr_surface,
                    )
                finally:
                    acquirer.executor.close()
                    exec_stats.absorb(ledger, gateway_stats)
                if session is not None:
                    checkpoint_report = session.finalize()
                if client is not None:
                    degradation = client.report
                    # Backoff waits are real wall time to a live system;
                    # charge them so Figure 8 reflects the retry cost.
                    # (On resume the report was restored from the journal,
                    # so this single end-of-run charge already includes the
                    # killed process's backoff.)
                    backoff = degradation.backoff_seconds_by_component
                    for component, seconds in sorted(backoff.items()):
                        clock.charge_seconds(f"{component}_retry", seconds)

            matcher = IceQMatcher(
                self.config.similarity, linkage=self.config.linkage,
                provenance=obs.provenance if obs is not None else None,
            )
            with ExitStack() as match_scope:
                if obs is not None:
                    match_scope.enter_context(obs.phase("matching"))
                match_result = matcher.match(
                    dataset.interfaces, threshold=self.config.threshold
                )
                clock.charge_seconds(
                    "matching",
                    match_result.similarity_evaluations
                    * self.config.matching_seconds_per_evaluation,
                )

        metrics = evaluate_matches(
            match_result.match_pairs(), dataset.ground_truth.match_pairs()
        )
        registry_report: Optional[RegistryReport] = None
        if self.config.registry is not None:
            # Registry construction happens strictly after the run proper:
            # it reads the post-acquisition interfaces, charges no clock
            # account and records no span, so exports stay byte-identical
            # with and without it. The InvariantChecker audits that its
            # induced matching equals the batch clusters above.
            with ExitStack() as registry_scope:
                if obs is not None and obs.counters is not None:
                    # Blocking-index probes and registry similarity
                    # evaluations belong to the run's work profile even
                    # though the registry lives outside the run proper.
                    registry_scope.enter_context(
                        collecting_counters(obs.counters)
                    )
                _, registry_report = build_registry(
                    dataset.domain,
                    dataset.interfaces,
                    store=RegistryStore(
                        domain=dataset.domain,
                        threshold=self.config.threshold,
                        linkage=self.config.linkage,
                        similarity=self.config.similarity,
                    ),
                    directory=self.config.registry,
                )
        cache_content: Optional[CachePreload] = None
        if cache_engine is not None:
            # The post-run cache content, as the warm-start input a later
            # run (or the matching service's next epoch) can be seeded
            # with. Captured after everything that can touch the cache.
            cache_content = CachePreload.capture(cache_engine,
                                                 validation_cache)
        return WebIQRunResult(
            domain=dataset.domain,
            config=self.config,
            metrics=metrics,
            match_result=match_result,
            acquisition=acquisition,
            stopwatch=clock.report(),
            degradation=degradation,
            cache=cache_stats,
            obs=obs,
            checkpoint=checkpoint_report,
            seed=dataset.seed,
            exec_stats=exec_stats,
            registry=registry_report,
            cache_content=cache_content,
        )

    # ----------------------------------------------------------- checkpoint
    def _kill_switch(self) -> Optional[KillSwitch]:
        """Arm deterministic preemption, if any was requested.

        ``CheckpointConfig.kill_at`` wins; otherwise the fault profile's
        ``preempt_at`` applies. Either way the switch is injected
        hostility, not run identity — it never enters the journal meta.
        """
        assert self.config.checkpoint is not None
        kill_at = self.config.checkpoint.kill_at
        if kill_at is None and self.config.resilience is not None:
            kill_at = self.config.resilience.profile.preempt_at
        return KillSwitch(kill_at) if kill_at is not None else None

    def _journal_meta(
        self,
        dataset: DomainDataset,
        warm: Optional[CachePreload] = None,
    ) -> Dict[str, object]:
        """The run-identity coordinates a journal is only valid for.

        Resume refuses a journal whose meta differs in any key: replaying
        a ``book`` journal into an ``airfare`` run, or a cached journal
        into an uncached one, would silently corrupt the result.
        Deliberately excluded: ``kill_at`` / ``preempt_at`` (injected
        hostility), observability (read-only), ``workers`` /
        ``io_latency`` (scheduling knobs — by design they cannot change
        a single journal byte, so a serial run may resume a parallel
        journal and vice versa), and ``registry`` (post-run bookkeeping
        that cannot change a run byte either). A warm preload *is* run
        identity (it decides which queries hit), so warm runs carry its
        fingerprint — and cold runs omit the key entirely, keeping their
        journals byte-compatible with earlier revisions.
        """
        cfg = self.config
        meta: Dict[str, object] = {
            "domain": dataset.domain,
            "seed": dataset.seed,
            "n_interfaces": len(dataset.interfaces),
            "enable_surface": cfg.enable_surface,
            "enable_attr_deep": cfg.enable_attr_deep,
            "enable_attr_surface": cfg.enable_attr_surface,
            "threshold": cfg.threshold,
            "linkage": cfg.linkage,
            "k": cfg.acquisition.k,
            "cache_entries": (
                cfg.cache.max_entries if cfg.cache is not None else None
            ),
            "resilience": None,
        }
        if warm is not None:
            meta["warm"] = warm.fingerprint()
        if cfg.resilience is not None:
            res = cfg.resilience
            meta["resilience"] = {
                "fault_rate": res.profile.fault_rate,
                "fault_seed": res.profile.seed,
                "weights": [
                    res.profile.timeout_weight,
                    res.profile.transient_weight,
                    res.profile.rate_limit_weight,
                    res.profile.garbled_weight,
                ],
                "retry": [
                    res.retry.max_attempts,
                    res.retry.base_delay,
                    res.retry.multiplier,
                    res.retry.max_delay,
                    res.retry.jitter,
                    res.retry.rate_limit_factor,
                ],
                "breaker": [
                    res.breaker.failure_threshold,
                    res.breaker.cooldown_rejections,
                ],
                "budgets": [
                    res.surface_query_budget,
                    res.attr_surface_query_budget,
                    res.attr_deep_probe_budget,
                ],
            }
        return meta
