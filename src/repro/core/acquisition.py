"""Instance-acquisition orchestration (paper §5, "Instance Acquisition").

For every attribute ``X1`` across all interfaces:

1. If ``X1`` has **no** instances: gather from the Surface Web (Surface).
   a. If at least ``k`` instances were gathered, stop.
   b. Otherwise borrow from other attributes and validate via the Deep Web
      (Attr-Deep) — not via the Surface Web, which already failed.
2. If ``X1`` has pre-defined instances: borrow and validate via the Surface
   Web (Attr-Surface) — the Deep Web cannot be used because a SELECT widget
   physically rejects foreign values.

Borrowing is restricted to donors "whose domains are deemed potentially
similar": in case 1, donors with similar labels whose domain differs from
every other attribute on ``X1``'s interface; in case 2, donors sharing at
least two very similar values with ``X1``.

Implementation note: the paper iterates attributes one by one; we run the
Surface step for *all* attributes before any borrowing, so that every
Surface-acquired instance set is available as a donor regardless of
iteration order. This keeps results order-independent and matches the
paper's intent (donors in its examples already have instances).

The three phase loops are planned as an explicit
:class:`~repro.exec.dag.ExecutionDAG` — one :class:`~repro.exec.dag.WorkUnit`
per checkpoint unit, phases as barrier stages — and driven by a pluggable
executor (:mod:`repro.exec.executors`). The default
:class:`~repro.exec.executors.SerialExecutor` reproduces the classic
loops exactly; the speculating pool overlaps simulated I/O latency while
committing every unit on the calling thread in canonical order, so both
produce bit-identical results.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.checkpoint.session import CheckpointSession, ReplayedUnit, UnitCapture
from repro.core.attr_deep import AttrDeepValidator
from repro.core.attr_surface import AttrSurfaceValidator, ClassifierConfig
from repro.core.surface import SurfaceConfig, SurfaceDiscoverer, WebValidator
from repro.deepweb.models import Attribute, QueryInterface
from repro.deepweb.source import DeepWebSource
from repro.exec.context import unit_scope
from repro.exec.dag import ExecutionDAG, WorkUnit
from repro.exec.executors import SerialExecutor
from repro.matching.similarity import label_similarity, value_similarity, values_similar
from repro.obs.instrument import Observability
from repro.obs.provenance import (
    PHASE_ATTR_DEEP,
    PHASE_ATTR_SURFACE,
    InstanceLineage,
    ProbeVerdict,
    ProvenanceRecorder,
    ValidationEvidence,
)
from repro.perf.cache import ValidationCache
from repro.resilience.client import ResilientClient
from repro.surfaceweb.engine import SearchEngine
from repro.util.clock import SimulatedClock

__all__ = [
    "AcquisitionConfig",
    "AcquisitionRecord",
    "AcquisitionReport",
    "InstanceAcquirer",
]

AttrKey = Tuple[str, str]


@dataclass(frozen=True)
class AcquisitionConfig:
    """Policy knobs of §5."""

    #: success bar: "if WebIQ obtains at least 10 instances, then the
    #: acquisition process is deemed successful"
    k: int = 10
    #: minimum label similarity for a case-1 donor
    label_sim_threshold: float = 0.3
    #: a case-1 donor is rejected if its domain overlaps any other attribute
    #: of X1's interface more than this
    domain_dissimilar_max: float = 0.3
    #: case-2 condition: "at least two values, one from each domain, which
    #: are very similar"
    min_similar_values: int = 2
    #: donors tried per attribute (bounds probing/validation cost)
    max_donors: int = 4
    #: donors tried per pre-defined attribute in case 2 (each costs many
    #: validation queries: Attr-Surface is the most query-hungry component)
    case2_max_donors: int = 2
    #: a case-2 donor whose domain already overlaps X1's this much is skipped:
    #: borrowing from it cannot make the domains noticeably more similar
    case2_skip_overlap: float = 0.5
    #: cap on values added to a pre-defined attribute by Attr-Surface
    max_borrow_enrichment: int = 12
    surface: SurfaceConfig = field(default_factory=SurfaceConfig)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)


@dataclass
class AcquisitionRecord:
    """What happened for one attribute during acquisition."""

    interface_id: str
    attribute: str
    label: str
    had_instances: bool
    n_after_surface: int = 0
    n_after_borrow: int = 0
    surface_attempted: bool = False
    borrow_deep_attempted: bool = False
    borrow_surface_attempted: bool = False

    def success(self, k: int) -> bool:
        return self.n_after_borrow >= k

    def surface_success(self, k: int) -> bool:
        return self.n_after_surface >= k


@dataclass
class AcquisitionReport:
    """Per-attribute records plus per-component query accounting."""

    records: List[AcquisitionRecord] = field(default_factory=list)
    surface_queries: int = 0
    attr_surface_queries: int = 0
    attr_deep_probes: int = 0
    k: int = 10

    def record_for(self, interface_id: str, attribute: str) -> AcquisitionRecord:
        for record in self.records:
            if record.interface_id == interface_id and record.attribute == attribute:
                return record
        raise KeyError((interface_id, attribute))

    def _no_instance_records(self) -> List[AcquisitionRecord]:
        return [r for r in self.records if not r.had_instances]

    @property
    def surface_success_rate(self) -> float:
        """Table 1 column 6: Surface-only success over no-instance attributes."""
        targets = self._no_instance_records()
        if not targets:
            return 0.0
        return 100.0 * sum(r.surface_success(self.k) for r in targets) / len(targets)

    @property
    def final_success_rate(self) -> float:
        """Table 1 column 7: Surface + Deep success over no-instance attributes."""
        targets = self._no_instance_records()
        if not targets:
            return 0.0
        return 100.0 * sum(r.success(self.k) for r in targets) / len(targets)


class InstanceAcquirer:
    """Runs the §5 acquisition policy over a set of interfaces."""

    def __init__(
        self,
        engine: SearchEngine,
        sources: Dict[str, DeepWebSource],
        config: AcquisitionConfig = AcquisitionConfig(),
        resilience: Optional[ResilientClient] = None,
        validation_cache: Optional[ValidationCache] = None,
        clock: Optional[SimulatedClock] = None,
        obs: Optional[Observability] = None,
        checkpoint: Optional[CheckpointSession] = None,
        executor=None,
    ) -> None:
        """``engine`` and ``sources`` may be the raw substrates or the
        drop-in resilient proxies from :mod:`repro.resilience`; pass the
        proxies' shared ``resilience`` client to enable per-component
        budget attribution and graceful budget-exhaustion skipping.

        ``validation_cache``, when given, is shared by Surface discovery
        and the Attr-Surface classifier so they reuse each other's hit
        counts; when ``None`` each validator keeps its own memo (the
        uncached baseline behaviour).

        ``clock``, when given, is charged each phase's simulated remote
        latency as the phase completes (the pipeline used to charge the
        run's totals at the end; per-phase charging is equivalent — the
        same per-account count is charged exactly once — but gives
        observability spans meaningful end timestamps). ``obs`` wraps
        every phase in a trace span and scopes call attribution.

        ``checkpoint``, when given, brackets every per-attribute unit of
        work: completed units are journaled durably, and on resume the
        journaled ones are replayed without issuing a single engine query
        or source probe (see :mod:`repro.checkpoint`).

        ``executor``, when given, drives the planned unit DAG (see
        :mod:`repro.exec.executors`); ``None`` uses a fresh
        :class:`~repro.exec.executors.SerialExecutor`, the classic loop.
        Whatever the executor, every unit's authoritative effects happen
        on the calling thread in canonical order."""
        self.engine = engine
        self.sources = sources
        self.config = config
        self.resilience = resilience
        self.clock = clock
        self.obs = obs
        self.checkpoint = checkpoint
        self.executor = executor if executor is not None else SerialExecutor()
        self._interfaces: List[QueryInterface] = []
        self._domain_keywords: List[str] = []
        self._object_name: str = "object"
        # The unit bracket currently open — exceptions escaping acquire()
        # are stamped with it so the supervisor can attribute the crash
        # to a (phase, interface, attribute) and quarantine repeat
        # offenders.
        self._current_unit: Optional[Tuple[str, str, str]] = None
        self.validation_cache = validation_cache
        self._discoverer = SurfaceDiscoverer(
            engine, config.surface, validation_cache=validation_cache,
            provenance=self.provenance,
        )
        self._web_validator = WebValidator(engine, cache=validation_cache)
        self._attr_surface = AttrSurfaceValidator(
            self._web_validator, config.classifier
        )
        self._attr_deep = AttrDeepValidator(sources)
        if checkpoint is not None:
            # Cross-unit memo stores whose growth each unit must journal:
            # with a shared validation cache there is one; without, the
            # Surface discoverer and the Attr-Surface validator each keep
            # a private memo that still spans units.
            if validation_cache is not None:
                checkpoint.register_validation_store(
                    "validation", validation_cache
                )
            else:
                checkpoint.register_validation_store(
                    "validation:surface", self._discoverer.validator.cache
                )
                checkpoint.register_validation_store(
                    "validation:attr_surface", self._web_validator.cache
                )
            checkpoint.register_probe_memo(self._attr_deep.probe_memo)

    def acquire(
        self,
        interfaces: Sequence[QueryInterface],
        domain_keywords: Sequence[str] = (),
        object_name: str = "object",
        enable_surface: bool = True,
        enable_attr_deep: bool = True,
        enable_attr_surface: bool = True,
    ) -> AcquisitionReport:
        """Acquire instances for every attribute; mutates ``attr.acquired``.

        Any exception escaping a unit bracket is stamped with the unit's
        ``(phase, interface, attribute)`` key (as ``exc.webiq_unit``) so a
        supervisor can attribute the crash without parsing messages.
        """
        try:
            return self._acquire(
                interfaces, domain_keywords, object_name,
                enable_surface, enable_attr_deep, enable_attr_surface,
            )
        except Exception as exc:
            if self._current_unit is not None \
                    and not hasattr(exc, "webiq_unit"):
                try:
                    exc.webiq_unit = self._current_unit
                except AttributeError:
                    pass  # exceptions with __slots__: crash stays unattributed
            raise

    def _acquire(
        self,
        interfaces: Sequence[QueryInterface],
        domain_keywords: Sequence[str],
        object_name: str,
        enable_surface: bool,
        enable_attr_deep: bool,
        enable_attr_surface: bool,
    ) -> AcquisitionReport:
        self._interfaces = list(interfaces)
        self._domain_keywords = list(domain_keywords)
        self._object_name = object_name
        report = AcquisitionReport(k=self.config.k)
        for interface in interfaces:
            for attribute in interface.attributes:
                report.records.append(
                    AcquisitionRecord(
                        interface_id=interface.interface_id,
                        attribute=attribute.name,
                        label=attribute.label,
                        had_instances=attribute.has_instances,
                    )
                )

        if not enable_surface:
            for record in report.records:
                record.n_after_surface = 0
        dag = self.plan(
            interfaces, report,
            enable_surface=enable_surface,
            enable_attr_deep=enable_attr_deep,
            enable_attr_surface=enable_attr_surface,
        )
        for phase in dag.phases:
            self._run_phase(phase, report)

        # Final instance counts for attributes no borrowing phase touched.
        for interface in interfaces:
            for attribute in interface.attributes:
                record = report.record_for(interface.interface_id, attribute.name)
                record.n_after_borrow = max(
                    record.n_after_borrow, self._acquired_count(attribute)
                )
        return report

    # ----------------------------------------------------------- planning
    def plan(self, interfaces, report: AcquisitionReport,
             enable_surface: bool = True, enable_attr_deep: bool = True,
             enable_attr_surface: bool = True) -> ExecutionDAG:
        """Enumerate the run's checkpoint units into an explicit DAG.

        Enumeration is state-independent: which units exist depends only
        on the interfaces and the enabled phases, never on what earlier
        units produced (per-unit gates like "Surface already reached k"
        stay *inside* the unit, preserving the journal-boundary layout).
        That is what lets an executor dispatch speculation for units
        whose predecessors have not committed yet.
        """
        dag = ExecutionDAG()
        if enable_surface:
            dag.add_phase("surface", [
                WorkUnit("surface", interface, attribute,
                         report.record_for(interface.interface_id,
                                           attribute.name))
                for interface in interfaces
                for attribute in interface.attributes
                if not attribute.has_instances
            ])
        if enable_attr_deep:
            dag.add_phase("attr_deep", [
                WorkUnit("attr_deep", interface, attribute,
                         report.record_for(interface.interface_id,
                                           attribute.name))
                for interface in interfaces
                for attribute in interface.attributes
                # pre-defined values: handled by Attr-Surface
                if not attribute.has_instances
            ])
        if enable_attr_surface:
            dag.add_phase("attr_surface", [
                WorkUnit("attr_surface", interface, attribute,
                         report.record_for(interface.interface_id,
                                           attribute.name))
                for interface in interfaces
                for attribute in interface.attributes
                if attribute.has_instances
            ])
        return dag

    # ----------------------------------------------------------- execution
    def _run_phase(self, phase, report: AcquisitionReport) -> None:
        """Drive one phase's units through the executor.

        Accounting is accumulated per unit (not as one phase-wide counter
        delta): every query happens inside some unit, so the sum is
        identical — but per-unit deltas are what the checkpoint journal
        records and what replay re-charges. The cost tally and the
        phase-end clock charge run on the calling thread, like every
        other authoritative effect.
        """
        cost = 0

        def commit(unit: WorkUnit) -> None:
            nonlocal cost
            cost += self._execute_unit(unit)

        with self._phase(phase.name):
            self.executor.run_phase(phase.units, commit)
            if phase.name == "surface":
                report.surface_queries += cost
                if self.clock is not None:
                    self.clock.charge_search_query("surface", cost)
            elif phase.name == "attr_deep":
                report.attr_deep_probes += cost
                if self.clock is not None:
                    self.clock.charge_deep_probe("attr_deep", cost)
            else:
                report.attr_surface_queries += cost
                if self.clock is not None:
                    self.clock.charge_search_query("attr_surface", cost)

    def _execute_unit(self, unit: WorkUnit) -> int:
        """The authoritative serial body of one unit: replay it from the
        journal if a record is pending, honour quarantine, else run it
        fresh. Returns the unit's round-trip cost (queries, or probes for
        ``attr_deep``). This is the ONE place a unit's observable effects
        happen, whatever executor drives the DAG."""
        replayed = self._replayed(unit.phase, unit.interface, unit.attribute,
                                  unit.record)
        if replayed is not None:
            return (replayed.probes if unit.phase == "attr_deep"
                    else replayed.queries)
        if self._skip_quarantined(unit.phase, unit.interface, unit.attribute,
                                  unit.record):
            return 0
        # The unit scope partitions every sequential random stream
        # (backoff jitter, source fault fates) by unit key, making the
        # unit's draws independent of execution order and resume point.
        with unit_scope(unit.key):
            return self._fresh_unit(unit)

    def _fresh_unit(self, unit: WorkUnit) -> int:
        interface, attribute, record = unit.interface, unit.attribute, unit.record
        capture = self._begin(unit.phase, interface, attribute)
        before = self._cost_mark(unit.phase)
        if unit.phase == "attr_deep" \
                and record.n_after_surface >= self.config.k:
            record.n_after_borrow = record.n_after_surface
            # step 1.a succeeded — still a (zero-cost) journal
            # boundary, so replay enumerates the same units
            self._commit(capture, attribute, record)
            return 0
        if self._skip_exhausted(unit.phase, interface, attribute):
            self._commit(capture, attribute, record, skipped=True)
            return 0
        if unit.phase == "surface":
            record.surface_attempted = True
            with self._subject(interface.interface_id, attribute.name):
                result = self._discoverer.discover(
                    attribute, self._domain_keywords, self._object_name
                )
            attribute.acquired.extend(result.instances)
            record.n_after_surface = self._acquired_count(attribute)
        elif unit.phase == "attr_deep":
            record.borrow_deep_attempted = True
            self._borrow_via_deep(interface, attribute)
            record.n_after_borrow = self._acquired_count(attribute)
        else:
            record.borrow_surface_attempted = True
            self._borrow_via_surface(interface, attribute)
            record.n_after_borrow = self._acquired_count(attribute)
        cost = self._cost_mark(unit.phase) - before
        self._commit(capture, attribute, record)
        return cost

    def _cost_mark(self, phase: str) -> int:
        """The round-trip counter a phase's unit costs are measured on."""
        if phase == "attr_deep":
            return self._total_probes()
        return self.engine.query_count

    def _borrow_via_deep(self, interface: QueryInterface,
                         attribute: Attribute) -> None:
        donors = self._case1_donors(interface, attribute)
        have = {v.lower() for v in attribute.all_instances()}
        provenance = self.provenance
        for donor_interface_id, donor in donors[: self.config.max_donors]:
            if len(have) >= self.config.k:
                break
            values = [
                v for v in donor.all_instances() if v.lower() not in have
            ]
            result = self._attr_deep.validate(
                interface.interface_id, attribute.name, values
            )
            verdict = None
            if provenance is not None and result.accepted:
                verdict = ProbeVerdict(
                    successes=result.successes,
                    sampled=result.sampled,
                    probes_issued=result.probes_issued,
                    accept_ratio=self._attr_deep.accept_ratio,
                    accepted=True,
                )
            for value in result.accepted:
                if value.lower() not in have:
                    have.add(value.lower())
                    attribute.acquired.append(value)
                    if provenance is not None:
                        provenance.record_lineage(InstanceLineage(
                            interface_id=interface.interface_id,
                            attribute=attribute.name,
                            value=value,
                            phase=PHASE_ATTR_DEEP,
                            donor=(donor_interface_id, donor.name),
                            probe=verdict,
                        ))

    def _case1_donors(self, interface: QueryInterface,
                      attribute: Attribute) -> List[Tuple[str, Attribute]]:
        """Donor ``(interface_id, attribute)`` pairs for a no-instance
        attribute (§5 case 1) — the donor's identity travels with it so
        borrowed instances can carry a provenance-grade donor key.

        The donor's label must be similar to X1's, and its domain must
        differ from every *other* attribute on X1's interface ("if Y and X1
        have similar domains, it is very unlikely that Y has some
        pre-defined values while X1 does not"). Note the rationale is about
        *pre-defined* values, so only Y's pre-defined instances participate:
        instances Y itself acquired from the Web say nothing about what the
        interface designer pre-defined.
        """
        others = [
            y for y in interface.attributes
            if y.name != attribute.name and y.instances
        ]
        scored: List[Tuple[float, str, Attribute]] = []
        for other_interface, donor in self._donor_candidates(interface):
            sim = label_similarity(attribute.label, donor.label)
            if sim < self.config.label_sim_threshold:
                continue
            donor_values = donor.all_instances()
            if any(
                value_similarity(donor_values, list(y.instances))
                > self.config.domain_dissimilar_max
                for y in others
            ):
                continue
            scored.append((sim, other_interface.interface_id, donor))
        scored.sort(key=lambda item: (-item[0], item[2].label.lower()))
        return [(interface_id, donor) for _, interface_id, donor in scored]

    def _borrow_via_surface(self, interface: QueryInterface,
                            attribute: Attribute) -> None:
        donors = self._case2_donors(interface, attribute)
        if not donors:
            return
        classifier = self._attr_surface.build_classifier(attribute, interface)
        if classifier is None:
            return
        have = {v.lower() for v in attribute.all_instances()}
        provenance = self.provenance
        added = 0
        for donor_interface_id, donor in donors[: self.config.case2_max_donors]:
            if added >= self.config.max_borrow_enrichment:
                break
            fresh = [v for v in donor.all_instances() if v.lower() not in have]
            for value in self._attr_surface.validate(classifier, fresh):
                if added >= self.config.max_borrow_enrichment:
                    break
                have.add(value.lower())
                attribute.acquired.append(value)
                added += 1
                if provenance is not None:
                    # Re-derives the already-memoised evidence (zero
                    # queries) behind the prediction that admitted value.
                    vector, features, posterior = classifier.explain(value)
                    provenance.record_lineage(InstanceLineage(
                        interface_id=interface.interface_id,
                        attribute=attribute.name,
                        value=value,
                        phase=PHASE_ATTR_SURFACE,
                        validation=ValidationEvidence(
                            phrases=tuple(classifier.phrases),
                            scores=tuple(vector),
                            score=posterior,
                        ),
                        features=tuple(features),
                        posterior=posterior,
                        donor=(donor_interface_id, donor.name),
                    ))

    def _case2_donors(self, interface: QueryInterface,
                      attribute: Attribute) -> List[Tuple[str, Attribute]]:
        """Donor ``(interface_id, attribute)`` pairs for a pre-defined
        attribute (§5 case 2): the domains share at least
        ``min_similar_values`` very similar values."""
        own = attribute.all_instances()
        scored: List[Tuple[int, str, Attribute]] = []
        for other_interface, donor in self._donor_candidates(interface):
            donor_values = donor.all_instances()
            if not donor_values:
                continue
            if (
                value_similarity(own, donor_values)
                >= self.config.case2_skip_overlap
            ):
                continue  # domains already similar: nothing to gain
            overlap = _count_similar_values(own, donor_values)
            if overlap >= self.config.min_similar_values:
                scored.append((overlap, other_interface.interface_id, donor))
        scored.sort(key=lambda item: (-item[0], item[2].label.lower()))
        return [(interface_id, donor) for _, interface_id, donor in scored]

    # ----------------------------------------------------------- checkpoint
    def _replayed(self, phase: str, interface: QueryInterface,
                  attribute: Attribute,
                  record: AcquisitionRecord) -> Optional[ReplayedUnit]:
        """Replay this unit from the journal, if a record is pending.

        A replayed unit applies its recorded effects (acquired values,
        record fields, memo/cache growth) and reports its recorded cost —
        without a single engine query or source probe.
        """
        if self.checkpoint is None:
            return None
        return self.checkpoint.replay_unit(
            (phase, interface.interface_id, attribute.name),
            attribute, record,
        )

    def _skip_quarantined(self, phase: str, interface: QueryInterface,
                          attribute: Attribute,
                          record: AcquisitionRecord) -> bool:
        """Skip a unit the supervisor quarantined after repeated crashes.

        The skip is itself journaled (``quarantined=True``, zero cost, no
        saboteur) so replay enumerates the same boundaries and the
        degradation report can account for every attempted unit.
        """
        unit_key = (phase, interface.interface_id, attribute.name)
        if self.checkpoint is None \
                or not self.checkpoint.is_quarantined(unit_key):
            return False
        capture = self.checkpoint.begin_unit(
            unit_key, attribute, sabotage=False
        )
        self.checkpoint.commit_unit(
            capture, attribute, record, skipped=True, quarantined=True
        )
        return True

    def _begin(self, phase: str, interface: QueryInterface,
               attribute: Attribute) -> Optional[UnitCapture]:
        if self.checkpoint is None:
            return None
        self._current_unit = (phase, interface.interface_id, attribute.name)
        return self.checkpoint.begin_unit(
            self._current_unit, attribute
        )

    def _commit(self, capture: Optional[UnitCapture], attribute: Attribute,
                record: AcquisitionRecord, skipped: bool = False) -> None:
        if self.checkpoint is not None and capture is not None:
            self.checkpoint.commit_unit(
                capture, attribute, record, skipped=skipped
            )
        self._current_unit = None

    # ------------------------------------------------------------- helpers
    @property
    def provenance(self) -> Optional[ProvenanceRecorder]:
        """The run's decision recorder, if observability carries one."""
        return self.obs.provenance if self.obs is not None else None

    @contextmanager
    def _subject(self, interface_id: str, attribute: str) -> Iterator[None]:
        """Scope provenance records to one attribute (no-op unobserved)."""
        provenance = self.provenance
        if provenance is None:
            yield
        else:
            with provenance.subject(interface_id, attribute):
                yield

    @contextmanager
    def _phase(self, name: str) -> Iterator[None]:
        """Phase scope: trace span + metrics component (when observed) and
        budget/accounting attribution (when resilient). No-op otherwise."""
        with ExitStack() as stack:
            if self.obs is not None:
                stack.enter_context(self.obs.phase(name))
            if self.resilience is not None:
                stack.enter_context(self.resilience.component(name))
            yield

    def _skip_exhausted(self, component: str, interface: QueryInterface,
                        attribute: Attribute) -> bool:
        """Graceful degradation: once a component's budget is spent, skip
        its remaining attributes outright (recording each skip) instead of
        issuing calls that would all fast-fail anyway."""
        if self.resilience is None:
            return False
        if not self.resilience.budget_exhausted(component):
            return False
        self.resilience.skip_attribute(interface.interface_id, attribute.name)
        return True

    def _donor_candidates(self, interface: QueryInterface):
        """Attributes whose instance sets are trustworthy donor domains.

        Pre-defined SELECT values always qualify (however few — the
        interface designer vouches for them). Acquired instance sets only
        qualify when the acquisition *succeeded* (reached ``k``): a handful
        of leftover candidates from a failed extraction is mostly noise and
        would crowd out genuine donors.
        """
        for other in self._interfaces:
            if other.interface_id == interface.interface_id:
                continue
            for donor in other.attributes:
                if donor.has_instances or len(donor.acquired) >= self.config.k:
                    yield other, donor

    @staticmethod
    def _acquired_count(attribute: Attribute) -> int:
        return len(attribute.all_instances()) if not attribute.has_instances \
            else len(attribute.acquired)

    def _total_probes(self) -> int:
        return sum(s.probe_count for s in self.sources.values())


def _count_similar_values(values_a: Sequence[str], values_b: Sequence[str]) -> int:
    """How many of ``values_a`` have a very similar partner in ``values_b``."""
    count = 0
    for a in values_a:
        if any(values_similar(a, b) for b in values_b):
            count += 1
    return count
