"""Attr-Deep: validate borrowed instances via the Deep Web (paper §4).

To verify that borrowed value ``x`` belongs to attribute ``A``, submit a
probing query to ``A``'s source with ``A`` set to ``x`` and all other
attributes at their defaults (empty), then analyse the response page. "In
many cases the Deep-Web source will be able to distinguish instances of an
attribute from non-instances even if the Surface Web cannot."

To bound the number of probes, only a sample of the donor's instances is
probed; "if the submission is successful for at least one third of the
instances of B, then we assume that all instances of B are instances of A."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.deepweb.response import analyze_response
from repro.deepweb.source import DeepWebSource

__all__ = ["AttrDeepResult", "AttrDeepValidator"]


@dataclass(frozen=True)
class AttrDeepResult:
    """Outcome of validating one borrowed instance set against one source."""

    accepted: List[str]
    #: form submissions actually sent (cached repeats are free)
    probes_issued: int
    successes: int
    #: borrowed values whose membership was checked (probed or cached)
    sampled: int = 0

    @property
    def success_ratio(self) -> float:
        return self.successes / self.sampled if self.sampled else 0.0


class AttrDeepValidator:
    """Probes Deep-Web sources to validate borrowed instance sets."""

    def __init__(
        self,
        sources: Dict[str, DeepWebSource],
        max_probes: int = 6,
        accept_ratio: float = 1.0 / 3.0,
    ) -> None:
        if not 0.0 < accept_ratio <= 1.0:
            raise ValueError("accept_ratio must be in (0, 1]")
        self._sources = sources
        self._max_probes = max_probes
        self._accept_ratio = accept_ratio
        # Probe memo: multiple donors offer overlapping value sets, and a
        # form submission is idempotent, so each (source, attribute, value)
        # probe is paid for once.
        self._probe_cache: Dict[tuple, bool] = {}

    @property
    def accept_ratio(self) -> float:
        """The ≥1/3 acceptance bar a probing verdict was compared against."""
        return self._accept_ratio

    @property
    def probe_memo(self) -> Dict[tuple, bool]:
        """The cross-unit probe memo — the live dict, not a copy. The
        checkpoint layer journals its per-unit growth so a resumed run
        inherits every verdict already paid for."""
        return self._probe_cache

    def validate(
        self,
        interface_id: str,
        attribute_name: str,
        borrowed: Sequence[str],
    ) -> AttrDeepResult:
        """All-or-nothing validation of a donor's instance set.

        Probes up to ``max_probes`` of the borrowed values; if the success
        ratio reaches ``accept_ratio``, the whole set is accepted (paper's
        ≥1/3 rule), otherwise nothing is.
        """
        borrowed = [b for b in borrowed if b and b.strip()]
        if not borrowed:
            return AttrDeepResult([], 0, 0, 0)
        source = self._sources.get(interface_id)
        if source is None:
            return AttrDeepResult([], 0, 0, 0)

        sample = borrowed[: self._max_probes]
        successes = 0
        probes_issued = 0
        for value in sample:
            key = (interface_id, attribute_name, value.lower())
            if key not in self._probe_cache:
                page = source.submit({attribute_name: value})
                probes_issued += 1
                self._probe_cache[key] = analyze_response(page.text).success
            if self._probe_cache[key]:
                successes += 1
        accepted = (
            list(borrowed)
            if successes / len(sample) >= self._accept_ratio
            else []
        )
        return AttrDeepResult(accepted, probes_issued, successes, len(sample))
