"""Attr-Surface: borrow instances and validate them via the Surface Web (§3).

To decide whether instance ``b`` of attribute ``B`` is also an instance of
attribute ``A``, WebIQ trains a *validation-based naive Bayes classifier*
for ``A`` — fully automatically:

1. **Training set** ``T``: ``A``'s own instances are positives; instances of
   the *other* attributes on ``A``'s interface are negatives. Each example
   is represented by its validation-score vector (one PMI score per
   validation phrase of ``A``).
2. **Thresholds**: ``T`` is split into ``T1``/``T2``; per-feature thresholds
   ``t_i`` are chosen on ``T1`` by information gain, turning score vectors
   into boolean feature vectors (``f_i = 1`` iff ``m_i > t_i``).
3. **Probabilities**: the thresholded ``T2`` trains a naive Bayes model with
   Laplacean smoothing (paper Figure 5).

Prediction thresholds ``b``'s score vector and takes the Bayes posterior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.surface import WebValidator
from repro.deepweb.models import Attribute, QueryInterface
from repro.stats.entropy import best_threshold
from repro.stats.naive_bayes import BinaryNaiveBayes
from repro.util.errors import ValidationError

__all__ = ["ClassifierConfig", "ValidationClassifier", "AttrSurfaceValidator"]


@dataclass(frozen=True)
class ClassifierConfig:
    """Training-set sizing for the validation-based classifier."""

    #: at most this many positive / negative examples are scored (each costs
    #: validation queries)
    max_positives: int = 4
    max_negatives: int = 4
    #: minimum examples per class to attempt training at all
    min_per_class: int = 2


class ValidationClassifier:
    """The validation-based naive Bayes classifier for one attribute."""

    def __init__(
        self,
        validator: WebValidator,
        phrases: Sequence[str],
        config: ClassifierConfig = ClassifierConfig(),
    ) -> None:
        if not phrases:
            raise ValidationError("classifier needs at least one validation phrase")
        self._validator = validator
        self._phrases = list(phrases)
        self._config = config
        self._thresholds: List[float] = []
        self._model = BinaryNaiveBayes()
        self._trained = False

    @property
    def thresholds(self) -> List[float]:
        return list(self._thresholds)

    @property
    def phrases(self) -> List[str]:
        """The validation phrases the score vectors are computed against."""
        return list(self._phrases)

    @property
    def is_trained(self) -> bool:
        return self._trained

    def train(self, positives: Sequence[str], negatives: Sequence[str]) -> None:
        """Train from instance strings (paper §3.2's three steps).

        The split follows Figure 5: ``T1`` takes the first half of the
        positives and the first half of the negatives, ``T2`` the rest.
        With very few examples the halves would starve one step, so below
        ``2 * min_per_class`` per class the full set serves both steps —
        a documented deviation that only affects degenerate inputs.
        """
        cfg = self._config
        positives = list(positives)[: cfg.max_positives]
        negatives = list(negatives)[: cfg.max_negatives]
        if len(positives) < cfg.min_per_class or len(negatives) < cfg.min_per_class:
            raise ValidationError(
                f"need at least {cfg.min_per_class} examples per class, got "
                f"{len(positives)} positive / {len(negatives)} negative"
            )

        examples: List[Tuple[List[float], bool]] = [
            (self._validator.score_vector(self._phrases, p), True)
            for p in positives
        ] + [
            (self._validator.score_vector(self._phrases, n), False)
            for n in negatives
        ]

        pos = [e for e in examples if e[1]]
        neg = [e for e in examples if not e[1]]
        if len(pos) >= 2 * cfg.min_per_class and len(neg) >= 2 * cfg.min_per_class:
            t1 = pos[: len(pos) // 2] + neg[: len(neg) // 2]
            t2 = pos[len(pos) // 2:] + neg[len(neg) // 2:]
        else:
            t1 = t2 = examples

        # Step 2: per-feature thresholds by information gain on T1.
        self._thresholds = [
            best_threshold([(vector[i], label) for vector, label in t1])
            for i in range(len(self._phrases))
        ]

        # Step 3: threshold T2 and estimate smoothed probabilities.
        self._model = BinaryNaiveBayes()
        self._model.fit([(self._featurize(v), label) for v, label in t2])
        self._trained = True

    def predict(self, candidate: str) -> bool:
        """Is ``candidate`` an instance of the classifier's attribute?"""
        return self.posterior(candidate) > 0.5

    def posterior(self, candidate: str) -> float:
        if not self._trained:
            raise ValidationError("classifier has not been trained")
        vector = self._validator.score_vector(self._phrases, candidate)
        return self._model.posterior_positive(self._featurize(vector))

    def explain(self, candidate: str) -> Tuple[List[float], List[int], float]:
        """``(score_vector, thresholded_features, posterior)`` for a
        candidate — the full evidence behind one prediction.

        Every hit count is memoised in the validator's cache, so explaining
        a candidate the classifier already scored issues zero queries.
        """
        if not self._trained:
            raise ValidationError("classifier has not been trained")
        vector = self._validator.score_vector(self._phrases, candidate)
        features = self._featurize(vector)
        return vector, features, self._model.posterior_positive(features)

    def _featurize(self, vector: Sequence[float]) -> List[int]:
        # Paper §3.1: f_i = 1 iff m_i > t_i.
        return [
            1 if score > threshold else 0
            for score, threshold in zip(vector, self._thresholds)
        ]


class AttrSurfaceValidator:
    """Validates borrowed instances for an attribute via the Surface Web."""

    def __init__(
        self,
        validator: WebValidator,
        config: ClassifierConfig = ClassifierConfig(),
    ) -> None:
        self._validator = validator
        self._config = config

    def build_classifier(
        self,
        target: Attribute,
        interface: QueryInterface,
    ) -> Optional[ValidationClassifier]:
        """Train the classifier for ``target`` from its own interface.

        Positives are ``target``'s instances; negatives come from the other
        attributes of the same interface (paper Figure 5a). Returns ``None``
        when the interface cannot supply enough examples.
        """
        positives = target.all_instances()
        negatives: List[str] = []
        for other in interface.attributes:
            if other.name == target.name:
                continue
            negatives.extend(other.all_instances())
        if (
            len(positives) < self._config.min_per_class
            or len(negatives) < self._config.min_per_class
        ):
            return None
        phrases = self._validator.validation_phrases(target.label)
        classifier = ValidationClassifier(self._validator, phrases, self._config)
        classifier.train(positives, negatives)
        return classifier

    def validate(
        self,
        classifier: ValidationClassifier,
        borrowed: Sequence[str],
    ) -> List[str]:
        """The borrowed values the classifier accepts, in input order."""
        return [b for b in borrowed if classifier.predict(b)]
