"""WebIQ proper: instance acquisition from the Surface and Deep Web.

The three components of the paper:

- :mod:`repro.core.surface` — **Surface** (§2): discovers instances for an
  attribute from the Surface Web by formulating extraction queries from its
  label's syntax, extracting candidates from result snippets, removing
  statistical outliers, and validating the rest by PMI co-occurrence.
- :mod:`repro.core.attr_surface` — **Attr-Surface** (§3): borrows instances
  from other attributes and validates them with a validation-based naive
  Bayes classifier trained fully automatically.
- :mod:`repro.core.attr_deep` — **Attr-Deep** (§4): validates borrowed
  instances by probing the attribute's own Deep-Web source.

:mod:`repro.core.acquisition` orchestrates them per the policy of §5, and
:mod:`repro.core.pipeline` couples acquisition with the IceQ matcher to form
the complete WebIQ + IceQ system evaluated in §6.
"""

from repro.core.surface import (
    ExtractionQueryBuilder,
    SnippetExtractor,
    SurfaceConfig,
    SurfaceDiscoverer,
    WebValidator,
)
from repro.core.attr_surface import AttrSurfaceValidator, ValidationClassifier
from repro.core.attr_deep import AttrDeepValidator
from repro.core.acquisition import (
    AcquisitionConfig,
    AcquisitionRecord,
    AcquisitionReport,
    InstanceAcquirer,
)
from repro.core.pipeline import WebIQConfig, WebIQMatcher, WebIQRunResult

__all__ = [
    "ExtractionQueryBuilder",
    "SnippetExtractor",
    "SurfaceConfig",
    "SurfaceDiscoverer",
    "WebValidator",
    "AttrSurfaceValidator",
    "ValidationClassifier",
    "AttrDeepValidator",
    "AcquisitionConfig",
    "AcquisitionRecord",
    "AcquisitionReport",
    "InstanceAcquirer",
    "WebIQConfig",
    "WebIQMatcher",
    "WebIQRunResult",
]
