"""The Surface component: discover instances from the Surface Web (paper §2).

Pipeline (Figure 3): analyse the label's syntax → formulate extraction
queries → pose them to the search engine and extract instance candidates
from result snippets → remove statistical outliers → validate the remaining
candidates by their Web co-occurrence with the label (PMI) → return the
top-k.

Instance discovery is treated as question answering: an extraction query is
an incomplete sentence ("departure cities such as") that the Web completes
with instances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.deepweb.models import Attribute, QueryInterface
from repro.obs.provenance import (
    DiscoverySummary,
    InstanceLineage,
    PruneEvent,
    ProvenanceRecorder,
    ValidationEvidence,
)
from repro.perf.cache import ValidationCache
from repro.stats.outliers import (
    STRING_STATISTIC_NAMES,
    discordancy_outliers,
    numeric_test_statistics,
    parse_numeric,
    string_test_statistics,
)
from repro.stats.pmi import mean_pmi, pmi
from repro.surfaceweb.engine import SearchEngine
from repro.text.labels import LabelAnalysis, NounPhrase, analyze_label, clean_label
from repro.text.postag import BrillTagger, TaggedToken, default_tagger
from repro.util import counters as work

__all__ = [
    "SurfaceConfig",
    "ExtractionQuery",
    "ExtractionQueryBuilder",
    "SnippetExtractor",
    "WebValidator",
    "SurfaceDiscoverer",
    "SurfaceResult",
]


class Completion(enum.Enum):
    """Where a pattern's completion sits relative to its cue phrase."""

    AFTER = "after"
    BEFORE = "before"


@dataclass(frozen=True)
class ExtractionQuery:
    """One materialised extraction query.

    ``query`` is the full search-engine string (quoted cue + ``+keywords``);
    ``cue_words`` the lower-cased cue-phrase words the extraction rule will
    look for in snippets; ``is_set`` distinguishes set patterns (s1-s4, list
    completions) from singleton patterns (g1-g4, one NP).
    """

    query: str
    cue_words: Tuple[str, ...]
    completion: Completion
    is_set: bool
    pattern: str


@dataclass(frozen=True)
class SurfaceConfig:
    """Knobs of the Surface component (paper defaults where stated)."""

    #: target number of instances ("returns up to k instances"; §6 counts an
    #: acquisition successful when at least 10 instances are obtained)
    k: int = 10
    #: snippets downloaded per extraction query ("top k snippets")
    snippets_per_query: int = 10
    #: discordancy threshold in standard deviations
    sigma: float = 3.0
    #: fraction of candidates that must be numeric to call the domain numeric
    numeric_majority: float = 0.8
    #: minimum mean-PMI validation score for a candidate to survive
    min_score: float = 0.0
    #: longest candidate accepted (characters); guards against parse runaway
    max_candidate_chars: int = 40
    #: maximum NPs read off one completion list
    max_list_items: int = 8
    #: at most this many candidates enter Web validation (each one costs
    #: several search-engine queries); extras are dropped in extraction order
    max_validated_candidates: int = 25
    #: disable the discordancy-test stage (ablation; the paper keeps it on)
    enable_outlier_removal: bool = True
    #: candidate scoring: "pmi" (the paper's) or "hits" (raw joint hit
    #: counts — the alternative the paper rejects for its popularity bias)
    scoring: str = "pmi"


# ---------------------------------------------------------------------------
# Extraction-query formulation (paper §2.1, Figure 4)
# ---------------------------------------------------------------------------

class ExtractionQueryBuilder:
    """Materialises the extraction patterns for an attribute's noun phrases.

    Set patterns::

        s1: Ls such as NP1, ..., NPn      s3: Ls including NP1, ..., NPn
        s2: such Ls as NP1, ..., NPn      s4: NP1, ..., NPn, and other Ls

    Singleton patterns::

        g1: the L of the O is NP          g3: NP is the L of the O
        g2: the L is NP                   g4: NP is the L

    Domain information (the domain and object names, per §2.1) is attached
    as ``+keyword`` filters to narrow the queries' scope.
    """

    def build(
        self,
        analysis: LabelAnalysis,
        domain_keywords: Sequence[str] = (),
        object_name: str = "object",
    ) -> List[ExtractionQuery]:
        """All extraction queries for a label analysis (empty if no NP)."""
        queries: List[ExtractionQuery] = []
        suffix = "".join(f" +{kw}" for kw in domain_keywords)
        for np in analysis.noun_phrases:
            plural = np.plural
            singular = np.text
            cues = [
                (f"{plural} such as", Completion.AFTER, True, "s1"),
                (f"such {plural} as", Completion.AFTER, True, "s2"),
                (f"{plural} including", Completion.AFTER, True, "s3"),
                (f"and other {plural}", Completion.BEFORE, True, "s4"),
                (f"the {singular} of the {object_name} is",
                 Completion.AFTER, False, "g1"),
                (f"the {singular} is", Completion.AFTER, False, "g2"),
                (f"is the {singular} of the {object_name}",
                 Completion.BEFORE, False, "g3"),
                (f"is the {singular}", Completion.BEFORE, False, "g4"),
            ]
            for cue, completion, is_set, pattern in cues:
                queries.append(
                    ExtractionQuery(
                        query=f'"{cue}"{suffix}',
                        cue_words=tuple(cue.lower().split()),
                        completion=completion,
                        is_set=is_set,
                        pattern=pattern,
                    )
                )
        return queries


# ---------------------------------------------------------------------------
# Snippet extraction rules (paper §2.1, "Extract Instances")
# ---------------------------------------------------------------------------

_LIST_SEPARATORS = {",", ";"}
_LIST_CONJUNCTIONS = {"and", "or"}
#: words that end a completion list even where an NP could syntactically start
_LIST_STOPWORDS = {"other", "such", "more", "many", "all", "these", "those"}


class SnippetExtractor:
    """Applies an extraction rule to one snippet: find the cue phrase, then
    read the completion NP (or NP list) off the surrounding text."""

    def __init__(self, tagger: Optional[BrillTagger] = None) -> None:
        self._tagger = tagger or default_tagger()

    def extract(self, snippet: str, query: ExtractionQuery) -> List[str]:
        """Instance candidates from ``snippet`` for ``query`` (may be empty)."""
        tokens = self._tagger.tag(snippet)
        positions = _find_cue(tokens, query.cue_words)
        candidates: List[str] = []
        for pos in positions:
            if query.completion is Completion.AFTER:
                start = pos + len(query.cue_words)
                candidates.extend(
                    self._read_list(tokens, start)
                    if query.is_set
                    else self._read_one(tokens, start)
                )
            else:
                candidates.extend(self._read_before(tokens, pos))
        return candidates

    # -------------------------------------------------------------- helpers
    def _read_list(self, tokens: Sequence[TaggedToken], start: int,
                   max_items: int = 8) -> List[str]:
        from repro.text.chunker import noun_phrase_at

        out: List[str] = []
        i = start
        n = len(tokens)
        while i < n and len(out) < max_items:
            if tokens[i].word.lower() in _LIST_STOPWORDS:
                break
            np = noun_phrase_at(tokens, i, allow_postmodifier=False)
            if np is None:
                break
            out.append(" ".join(t.word for t in tokens[np.start:np.end]))
            i = np.end
            # A list continues over ", " and "and"/"or" separators only.
            progressed = False
            if i < n and tokens[i].word in _LIST_SEPARATORS:
                i += 1
                progressed = True
            if i < n and tokens[i].word.lower() in _LIST_CONJUNCTIONS:
                i += 1
                progressed = True
            if not progressed:
                break
        return out

    def _read_one(self, tokens: Sequence[TaggedToken], start: int) -> List[str]:
        from repro.text.chunker import noun_phrase_at

        np = noun_phrase_at(tokens, start, allow_postmodifier=False)
        if np is None:
            return []
        return [" ".join(t.word for t in tokens[np.start:np.end])]

    def _read_before(self, tokens: Sequence[TaggedToken], cue_start: int) -> List[str]:
        """The NP that ends right where the cue phrase begins (s4/g3/g4).

        A trailing comma before the cue is tolerated: s4's surface form is
        "NP1, ..., NPn, and other Ls".
        """
        from repro.text.chunker import noun_phrase_at

        end = cue_start
        if end > 0 and tokens[end - 1].word == ",":
            end -= 1
        for start in range(max(0, end - 6), end):
            np = noun_phrase_at(tokens, start, allow_postmodifier=False)
            if np is not None and np.end == end:
                return [" ".join(t.word for t in tokens[np.start:np.end])]
        return []


def _find_cue(tokens: Sequence[TaggedToken], cue: Tuple[str, ...]) -> List[int]:
    """Start indices of the cue word sequence in the token stream.

    Matching skips nothing: the cue must appear as consecutive word tokens
    (punctuation between cue words breaks the match, as it should).
    """
    words = [t.word.lower() for t in tokens]
    hits = []
    for i in range(len(words) - len(cue) + 1):
        if all(words[i + j] == cue[j] for j in range(len(cue))):
            hits.append(i)
    return hits


# ---------------------------------------------------------------------------
# Web validation (paper §2.2, "Validate Instances via Surface Web")
# ---------------------------------------------------------------------------

class WebValidator:
    """PMI-based validation of instance candidates against their attribute.

    For candidate ``x`` of attribute ``A`` with validation phrases
    ``V1..Vn``::

        PMI(Vi, x) = NumHits(Vi + x) / (NumHits(Vi) * NumHits(x))

    and the confidence score is the mean over the phrases. Phrase types:

    - the *proximity pattern* "L x" — the label immediately followed by the
      candidate ("make honda"), posed as an exact phrase query;
    - *cue-phrase patterns* "Ls such as x" / "such Ls as x", posed as a
      phrase-plus-keyword co-occurrence query (``"Ls such as" +x`` with a
      small window) — the candidate may sit anywhere in the completion list
      that follows the cue, not only in first position.

    Marginal and joint hit counts are memoised in a
    :class:`~repro.perf.cache.ValidationCache` — shared run-wide when the
    caller passes one, so counts asked during Surface validation are free
    again during Attr-Surface training and prediction. That reuse is a
    large part of why the two-phase design "greatly reduces the number of
    validation queries posed to search engines".
    """

    #: window (words) within which a cue phrase and a candidate must co-occur
    CUE_WINDOW = 12

    def __init__(
        self,
        engine: SearchEngine,
        scoring: str = "pmi",
        cache: Optional[ValidationCache] = None,
    ) -> None:
        if scoring not in ("pmi", "hits"):
            raise ValueError(f"unknown scoring {scoring!r}")
        self._engine = engine
        self.scoring = scoring
        self._cache = cache if cache is not None else ValidationCache()

    @property
    def cache(self) -> ValidationCache:
        """The validator's hit-count memo (shared or private — see init)."""
        return self._cache

    def validation_phrases(self, label: str,
                           analysis: Optional[LabelAnalysis] = None) -> List[str]:
        """The validation phrases of an attribute.

        The first phrase is always the (cleaned) label — the proximity
        pattern; subsequent phrases are cue phrases built from the label's
        first noun phrase.
        """
        analysis = analysis or analyze_label(label)
        phrases = [clean_label(label).lower()]
        if analysis.noun_phrases:
            plural = analysis.noun_phrases[0].plural
            phrases.append(f"{plural} such as")
            phrases.append(f"such {plural} as")
        return [p for p in phrases if p]

    def score_vector(self, phrases: Sequence[str], candidate: str) -> List[float]:
        """PMI of ``candidate`` against each validation phrase.

        The first phrase (the label) is scored with the adjacency query
        "L x"; the cue phrases are scored with windowed co-occurrence.
        """
        hits_x = self.candidate_hits(candidate)
        vector = []
        for i, phrase in enumerate(phrases):
            hits_v = self._hits_phrase(phrase)
            joint = self._joint(phrase, candidate, proximity=i != 0)
            if self.scoring == "hits":
                vector.append(float(joint))
            else:
                vector.append(pmi(joint, hits_v, hits_x))
        return vector

    def _joint(self, phrase: str, candidate: str, proximity: bool) -> int:
        """Cached joint hit count for one validation query.

        The same (phrase, candidate) queries recur constantly — every
        classifier trained for the same concept scores the same popular
        instances — so joints are cached like the marginals. A deployed
        system would cache these search-engine round trips identically.
        """
        key = (phrase, candidate.lower(), int(proximity))
        joints = self._cache.joint_hits
        if key not in joints:
            if work.ACTIVE is not None:
                work.ACTIVE.bump("pmi.phrase_queries")
            if proximity:
                count = self._engine.num_hits_proximity(
                    phrase, candidate, window=self.CUE_WINDOW)
            else:
                count = self._engine.num_hits(f'"{phrase} {candidate}"')
            joints[key] = count
        return joints[key]

    def confidence(self, phrases: Sequence[str], candidate: str) -> float:
        """Mean PMI across phrases — the candidate's validation score."""
        return mean_pmi(self.score_vector(phrases, candidate))

    def _hits_phrase(self, phrase: str) -> int:
        hits = self._cache.phrase_hits
        if phrase not in hits:
            if work.ACTIVE is not None:
                work.ACTIVE.bump("pmi.phrase_queries")
            hits[phrase] = self._engine.num_hits(f'"{phrase}"')
        return hits[phrase]

    def candidate_hits(self, candidate: str) -> int:
        """Cached NumHits of a candidate (its popularity marginal)."""
        low = candidate.lower()
        hits = self._cache.candidate_hits
        if low not in hits:
            if work.ACTIVE is not None:
                work.ACTIVE.bump("pmi.phrase_queries")
            hits[low] = self._engine.num_hits(f'"{low}"')
        return hits[low]


# ---------------------------------------------------------------------------
# The Surface discoverer: the full two-phase pipeline of Figure 3
# ---------------------------------------------------------------------------

@dataclass
class SurfaceResult:
    """Outcome of Surface discovery for one attribute."""

    attribute_label: str
    instances: List[str]
    #: candidates after extraction, before any pruning
    raw_candidates: List[str]
    #: candidates removed as the wrong type or as discordant outliers
    outliers: List[str]
    #: search-engine queries consumed (extraction + validation)
    queries_used: int
    numeric_domain: bool

    @property
    def succeeded(self) -> bool:
        """Did discovery find anything at all?"""
        return bool(self.instances)


class SurfaceDiscoverer:
    """End-to-end Surface instance discovery for interface attributes."""

    def __init__(
        self,
        engine: SearchEngine,
        config: SurfaceConfig = SurfaceConfig(),
        tagger: Optional[BrillTagger] = None,
        validation_cache: Optional[ValidationCache] = None,
        provenance: Optional[ProvenanceRecorder] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.provenance = provenance
        self._builder = ExtractionQueryBuilder()
        self._extractor = SnippetExtractor(tagger)
        self._validator = WebValidator(
            engine, scoring=config.scoring, cache=validation_cache
        )

    @property
    def validator(self) -> WebValidator:
        """The discoverer's validator (whose memo checkpointing journals)."""
        return self._validator

    def discover(
        self,
        attribute: Attribute,
        domain_keywords: Sequence[str] = (),
        object_name: str = "object",
    ) -> SurfaceResult:
        """Run extraction + verification for one attribute's label.

        With a provenance recorder attached, every surviving instance gets
        an :class:`~repro.obs.provenance.InstanceLineage` (extraction
        origin + validation evidence) and every rejected candidate a
        :class:`~repro.obs.provenance.PruneEvent` naming the stage — and,
        for discordancy outliers, the statistic — that rejected it.
        Recording never issues queries or changes a decision.
        """
        queries_before = self.engine.query_count
        provenance = self.provenance
        key = self._subject_key(attribute)
        analysis = analyze_label(attribute.label)
        if not analysis.has_noun_phrase:
            # §2.1: "If the label does not contain noun phrases, the
            # extraction phase terminates and returns an empty set."
            return SurfaceResult(attribute.label, [], [], [], 0, False)

        origins: Dict[str, Tuple[str, str, int]] = {}
        candidates = self._extract(
            analysis, domain_keywords, object_name,
            origins if provenance is not None else None,
        )
        numeric = self._is_numeric_domain(candidates)
        if self.config.enable_outlier_removal:
            typed = self._filter_type(candidates, numeric)
            if provenance is not None:
                typed_set = set(typed)
                for value in candidates:
                    if value not in typed_set:
                        provenance.record_prune(PruneEvent(
                            key[0], key[1], value, stage="type_filter"))
            result = discordancy_outliers(typed, numeric, self.config.sigma)
            survivors = list(result.inliers)
            if provenance is not None:
                for value in result.outliers:
                    statistic, sigmas = _outlier_driver(
                        value, numeric, result.statistics, self.config.sigma)
                    provenance.record_prune(PruneEvent(
                        key[0], key[1], value, stage="outlier",
                        statistic=statistic, deviation_sigmas=sigmas))
        else:
            survivors = list(candidates)
        removed = [c for c in candidates if c not in survivors]

        instances, evidence = self._validate(
            attribute.label, analysis, survivors, key)
        if provenance is not None:
            for value in instances:
                pattern, query, snippet_id = origins.get(
                    value, (None, None, None))
                provenance.record_lineage(InstanceLineage(
                    interface_id=key[0],
                    attribute=key[1],
                    value=value,
                    phase="surface",
                    extraction_pattern=pattern,
                    extraction_query=query,
                    snippet_id=snippet_id,
                    validation=evidence.get(value),
                ))
            provenance.record_discovery(DiscoverySummary(
                interface_id=key[0],
                attribute=key[1],
                discovered=len(candidates),
                kept=len(instances),
                numeric_domain=numeric,
            ))
        return SurfaceResult(
            attribute_label=attribute.label,
            instances=instances,
            raw_candidates=candidates,
            outliers=removed,
            queries_used=self.engine.query_count - queries_before,
            numeric_domain=numeric,
        )

    # ------------------------------------------------------------ internals
    def _subject_key(self, attribute: Attribute) -> Tuple[str, str]:
        """The (interface, attribute) identity provenance records carry.

        The acquirer scopes each discovery via ``provenance.subject``;
        standalone use (CLI ``discover``, examples) has no scope, so the
        attribute's own name serves with an empty interface id.
        """
        if self.provenance is None:
            return ("", attribute.name)
        key = self.provenance.active_subject
        return key if key != ("", "") else ("", attribute.name)

    def _extract(self, analysis: LabelAnalysis,
                 domain_keywords: Sequence[str], object_name: str,
                 origins: Optional[Dict[str, Tuple[str, str, int]]] = None,
                 ) -> List[str]:
        seen: Set[str] = set()
        ordered: List[str] = []
        label_low = clean_label(analysis.label).lower()
        for query in self._builder.build(analysis, domain_keywords, object_name):
            results = self.engine.search(
                query.query, max_results=self.config.snippets_per_query
            )
            for hit in results:
                for candidate in self._extractor.extract(hit.snippet, query):
                    cleaned = candidate.strip()
                    low = cleaned.lower()
                    if (
                        not cleaned
                        or len(cleaned) > self.config.max_candidate_chars
                        or low == label_low
                        or low in seen
                    ):
                        continue
                    seen.add(low)
                    ordered.append(cleaned)
                    if origins is not None:
                        origins[cleaned] = (
                            query.pattern, query.query, hit.doc_id)
        return ordered

    def _is_numeric_domain(self, candidates: Sequence[str]) -> bool:
        if not candidates:
            return False
        numeric = sum(1 for c in candidates if _is_numeric(c))
        return numeric / len(candidates) >= self.config.numeric_majority

    def _filter_type(self, candidates: Sequence[str], numeric: bool) -> List[str]:
        if not numeric:
            return list(candidates)
        return [c for c in candidates if _is_numeric(c)]

    def _validate(
        self, label: str, analysis: LabelAnalysis,
        candidates: Sequence[str], key: Tuple[str, str],
    ) -> Tuple[List[str], Dict[str, "ValidationEvidence"]]:
        """Web-validate ``candidates``; return survivors plus, per survivor,
        the :class:`~repro.obs.provenance.ValidationEvidence` that admitted
        it (empty dict when no provenance recorder is attached).

        The score is ``mean_pmi(score_vector(...))`` — exactly what
        :meth:`WebValidator.confidence` computes — so recording the vector
        costs nothing and changes nothing.
        """
        provenance = self.provenance
        capped = self._cap_candidates(candidates)
        if provenance is not None:
            capped_set = set(capped)
            for value in candidates:
                if value not in capped_set:
                    provenance.record_prune(PruneEvent(
                        key[0], key[1], value, stage="cap"))
        phrases = tuple(self._validator.validation_phrases(label, analysis))
        evidence: Dict[str, ValidationEvidence] = {}
        scored: List[Tuple[float, str]] = []
        for c in capped:
            vector = self._validator.score_vector(phrases, c)
            score = mean_pmi(vector)
            scored.append((score, c))
            if provenance is not None:
                evidence[c] = ValidationEvidence(
                    phrases=phrases, scores=tuple(vector), score=score)
        kept = [(s, c) for s, c in scored if s > self.config.min_score]
        if provenance is not None:
            for s, c in scored:
                if not s > self.config.min_score:
                    provenance.record_prune(PruneEvent(
                        key[0], key[1], c, stage="validation", score=s))
        kept.sort(key=lambda pair: (-pair[0], pair[1].lower()))
        if provenance is not None:
            for s, c in kept[self.config.k:]:
                provenance.record_prune(PruneEvent(
                    key[0], key[1], c, stage="top_k", score=s))
        return [c for _, c in kept[: self.config.k]], evidence

    def _cap_candidates(self, candidates: Sequence[str]) -> List[str]:
        """Bound the validation workload to the most popular candidates.

        Each validated candidate costs several search-engine queries, so
        only ``max_validated_candidates`` enter validation. Popularity
        (cached hit counts — one query per *distinct* candidate across the
        whole run) decides who makes the cut, keeping the candidate subset
        stable across differently-labelled attributes of one concept.
        """
        candidates = list(candidates)
        if len(candidates) <= self.config.max_validated_candidates:
            return candidates
        by_popularity = sorted(
            candidates,
            key=lambda c: (-self._validator.candidate_hits(c), c.lower()),
        )
        return by_popularity[: self.config.max_validated_candidates]


def _is_numeric(value: str) -> bool:
    try:
        parse_numeric(value)
    except ValueError:
        return False
    return True


def _outlier_driver(
    value: str,
    numeric: bool,
    statistics: Dict[str, Tuple[float, float]],
    sigma: float,
) -> Tuple[Optional[str], Optional[float]]:
    """Name and deviation of the test statistic that rejected ``value``.

    Recomputes the candidate's statistic vector (pure arithmetic, no Web
    traffic) against the (mean, std) moments the discordancy test actually
    used, and returns the most deviant statistic meeting the sigma rule.
    """
    names = ("value",) if numeric else STRING_STATISTIC_NAMES
    vector = (
        numeric_test_statistics(value)
        if numeric else string_test_statistics(value)
    )
    best_name: Optional[str] = None
    best_sigmas: Optional[float] = None
    for name, v in zip(names, vector):
        mean, std = statistics.get(name, (0.0, 0.0))
        if std == 0.0:
            continue
        sigmas = abs(v - mean) / std
        if sigmas >= sigma and (best_sigmas is None or sigmas > best_sigmas):
            best_name, best_sigmas = name, sigmas
    return best_name, best_sigmas
