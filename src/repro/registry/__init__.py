"""The canonical attribute registry (ROADMAP item 3).

A long-lived store of one domain's matched attributes that new interfaces
join *one at a time*: each entry is a cluster (canonical label, label
variants, unified value domain, provenance links to every contributing
interface), and assimilating a new interface evaluates only the candidate
pairs a blocking stage proposes — yet the induced matching is **identical**
to batch IceQ over the same interfaces, for every arrival order. The
equivalence argument lives in DESIGN.md §15; the metamorphic suite
``tests/test_registry_equivalence.py`` enforces it byte for byte.
"""

from repro.registry.blocking import AddRecord, BlockingIndex, BlockingStats
from repro.registry.store import (
    LOCK_FILENAME,
    REGISTRY_FILENAME,
    REGISTRY_FORMAT,
    RegistryEntry,
    RegistryLock,
    RegistryStore,
)
from repro.registry.assimilate import (
    RegistryAssimilator,
    RegistryReport,
    batch_induced_clusters,
    build_registry,
)

__all__ = [
    "AddRecord",
    "BlockingIndex",
    "BlockingStats",
    "LOCK_FILENAME",
    "REGISTRY_FILENAME",
    "REGISTRY_FORMAT",
    "RegistryEntry",
    "RegistryLock",
    "RegistryStore",
    "RegistryAssimilator",
    "RegistryReport",
    "batch_induced_clusters",
    "build_registry",
]
