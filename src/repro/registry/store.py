"""The registry store: one domain's canonical attributes, durable on disk.

A registry is a directory holding ``registry.json``, written with the
same envelope the run journal uses (:mod:`repro.checkpoint.journal`)::

    {"format": 2, "crc": <crc32 of canonical body JSON>, "body": {...}}

via :func:`repro.util.atomicio.atomic_write_json` — temp file, fsync,
``os.replace`` — so every assimilation either lands whole or not at all;
a crash mid-save leaves the previous registry intact. The loader verifies
the CRC and the body's internal consistency before trusting anything:

- a torn/unparseable file, a CRC mismatch, a duplicate interface, a
  duplicate cluster id, a member claimed by two entries (or none), or a
  malformed similarity cache is :class:`RegistryCorruptionError` naming
  the damaged entry;
- a store written by a newer schema is :class:`RegistryFormatError`;
- a missing store, or one whose domain/configuration does not match the
  requested operation, is :class:`RegistryMismatchError`.

Format history: format **1** predates the blocking ledger and carries no
``stats`` section; the loader upgrades it in place with an empty ledger
(zero defaults). The writer always emits the current format.

Atomic replace protects readers from a crashed writer, but not writers
from each other: two concurrent assimilators would each load, merge and
replace, silently dropping one writer's additions. :class:`RegistryLock`
closes that hole with a sentinel file (``registry.lock``) acquired with
``O_CREAT | O_EXCL`` — the second writer gets a typed
:class:`~repro.util.errors.RegistryLockedError` naming the holder instead
of a lost update. An unreadable/garbage lock file still counts as held:
the safe reading of damage is "someone is mid-write".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint.journal import record_crc
from repro.matching.similarity import AttributeView, SimilarityConfig
from repro.obs.provenance import MergeStep
from repro.registry.blocking import BlockingStats
from repro.util.atomicio import atomic_write_json
from repro.util.errors import (
    RegistryCorruptionError,
    RegistryFormatError,
    RegistryLockedError,
    RegistryMismatchError,
)

__all__ = [
    "LOCK_FILENAME",
    "REGISTRY_FILENAME",
    "REGISTRY_FORMAT",
    "RegistryEntry",
    "RegistryLock",
    "RegistryStore",
]

AttrKey = Tuple[str, str]

#: Schema version of the registry envelope.
REGISTRY_FORMAT = 2
#: Oldest schema the loader still understands (upgraded on load).
MIN_REGISTRY_FORMAT = 1
REGISTRY_FILENAME = "registry.json"
#: Sentinel file guarding registry writes (see :class:`RegistryLock`).
LOCK_FILENAME = "registry.lock"


class RegistryLock:
    """Single-writer guard for a registry directory.

    Acquiring creates ``registry.lock`` with ``O_CREAT | O_EXCL`` — an
    atomic create-or-fail on every platform the test-suite targets — and
    records the holder's identity as JSON (``{"owner": ..., "pid": ...}``)
    for the error message the loser sees. Use as a context manager::

        with RegistryLock(directory, owner="cli registry add"):
            store = RegistryStore.load(directory)
            ...
            store.save(directory)

    A second acquirer raises :class:`RegistryLockedError` naming the
    recorded holder. A lock file whose content is torn or garbage still
    counts as held ("unknown" owner): damage means someone died mid-write
    and a human (or :meth:`break_lock`) must adjudicate — guessing
    "stale, ignore it" is exactly the race this class exists to prevent.
    """

    def __init__(self, directory: str, *, owner: str = "writer") -> None:
        self.directory = directory
        self.owner = owner
        self.path = os.path.join(directory, LOCK_FILENAME)
        self._held = False

    def acquire(self) -> "RegistryLock":
        os.makedirs(self.directory, exist_ok=True)
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            raise RegistryLockedError(
                f"registry directory {self.directory} is locked by "
                f"{self.holder()!r} — refusing a second writer",
                directory=self.directory, owner=self.holder(),
            ) from None
        try:
            payload = json.dumps(
                {"owner": self.owner, "pid": os.getpid()}
            )
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        self._held = True
        return self

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.remove(self.path)
        except FileNotFoundError:  # already broken by an operator
            pass

    def holder(self) -> str:
        """Best-effort identity of the current lock holder."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                recorded = json.load(handle)
        except (OSError, ValueError):
            return "unknown"
        if isinstance(recorded, dict):
            owner = recorded.get("owner")
            if isinstance(owner, str) and owner:
                return owner
        return "unknown"

    @staticmethod
    def break_lock(directory: str) -> bool:
        """Operator escape hatch: remove a dead holder's lock file.

        Returns whether a lock file existed. Never called by library
        code — deciding a holder is dead is a human judgement.
        """
        path = os.path.join(directory, LOCK_FILENAME)
        try:
            os.remove(path)
        except FileNotFoundError:
            return False
        return True

    def __enter__(self) -> "RegistryLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


@dataclass(frozen=True)
class RegistryEntry:
    """One canonical attribute: a cluster with its unified form attached.

    ``merges`` are the :class:`~repro.obs.provenance.MergeStep` links that
    built this cluster in the registry's induced matching — the provenance
    trail back to every contributing interface.
    """

    cluster_id: str
    #: canonical label (most frequent variant; ties break short-then-lex)
    label: str
    #: unified value domain, consensus values first
    instances: Tuple[str, ...]
    #: number of distinct contributing interfaces
    coverage: int
    #: every (interface_id, attribute_name) in the cluster, sorted
    members: Tuple[AttrKey, ...]
    #: contributing interface ids, sorted
    interfaces: Tuple[str, ...]
    #: label variant -> vote count
    label_votes: Dict[str, int]
    #: merge steps that assembled this cluster, in commit order
    merges: Tuple[MergeStep, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cluster_id": self.cluster_id,
            "label": self.label,
            "instances": list(self.instances),
            "coverage": self.coverage,
            "members": [list(key) for key in self.members],
            "interfaces": list(self.interfaces),
            "label_votes": dict(self.label_votes),
            "merges": [
                {
                    "step": step.step,
                    "linkage_value": step.linkage_value,
                    "threshold": step.threshold,
                    "cluster_a": [list(key) for key in step.cluster_a],
                    "cluster_b": [list(key) for key in step.cluster_b],
                }
                for step in self.merges
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RegistryEntry":
        return cls(
            cluster_id=payload["cluster_id"],
            label=payload["label"],
            instances=tuple(payload["instances"]),
            coverage=payload["coverage"],
            members=tuple((iid, name) for iid, name in payload["members"]),
            interfaces=tuple(payload["interfaces"]),
            label_votes=dict(payload["label_votes"]),
            merges=tuple(
                MergeStep(
                    step=m["step"],
                    linkage_value=m["linkage_value"],
                    threshold=m["threshold"],
                    cluster_a=tuple((i, n) for i, n in m["cluster_a"]),
                    cluster_b=tuple((i, n) for i, n in m["cluster_b"]),
                )
                for m in payload["merges"]
            ),
        )


@dataclass
class RegistryStore:
    """In-memory registry state; :meth:`save`/:meth:`load` round-trip it.

    ``interfaces`` keeps **arrival order** (the audit trail of who joined
    when); everything the induced matching depends on uses
    :meth:`canonical_views` — interfaces sorted by id — which is what
    makes the registry arrival-permutation-invariant. ``sims`` caches
    only the *nonzero* evaluated similarities, keyed by the canonical
    (lexicographically sorted) attr-key pair; every absent cross pair is
    0.0 by the blocking soundness argument.
    """

    domain: str
    threshold: float = 0.0
    linkage: str = "average"
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    #: arrival-ordered (interface_id, views) — the assimilation history
    interfaces: List[Tuple[str, List[AttributeView]]] = field(default_factory=list)
    #: canonical-key-pair -> evaluated nonzero similarity
    sims: Dict[Tuple[AttrKey, AttrKey], float] = field(default_factory=dict)
    entries: List[RegistryEntry] = field(default_factory=list)
    stats: BlockingStats = field(default_factory=BlockingStats)

    # -- views ---------------------------------------------------------

    def interface_ids(self) -> List[str]:
        return [interface_id for interface_id, _ in self.interfaces]

    def has_interface(self, interface_id: str) -> bool:
        return any(interface_id == iid for iid, _ in self.interfaces)

    def registered_views(self) -> List[AttributeView]:
        """All views in arrival order (the blocking index order)."""
        return [view for _, views in self.interfaces for view in views]

    def canonical_views(self) -> List[AttributeView]:
        """All views in canonical order: interfaces sorted by id,
        attributes in their interface's original order. The induced
        matching is computed over exactly this ordering, so it cannot
        depend on arrival order."""
        return [
            view
            for _, views in sorted(self.interfaces, key=lambda item: item[0])
            for view in views
        ]

    @property
    def n_views(self) -> int:
        return sum(len(views) for _, views in self.interfaces)

    def sim_between(self, a: AttrKey, b: AttrKey) -> float:
        return self.sims.get((a, b) if a < b else (b, a), 0.0)

    # -- serialisation -------------------------------------------------

    def to_body(self) -> Dict[str, Any]:
        return {
            "domain": self.domain,
            "threshold": self.threshold,
            "linkage": self.linkage,
            "similarity": {
                "alpha": self.similarity.alpha,
                "beta": self.similarity.beta,
                "numeric_family_factor": self.similarity.numeric_family_factor,
            },
            "interfaces": [
                {
                    "interface_id": interface_id,
                    "attributes": [
                        {
                            "name": view.name,
                            "label": view.label,
                            "instances": list(view.instances),
                        }
                        for view in views
                    ],
                }
                for interface_id, views in self.interfaces
            ],
            "sims": [
                [list(a), list(b), value]
                for (a, b), value in sorted(self.sims.items())
            ],
            "entries": [entry.to_dict() for entry in self.entries],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any], *, source: str = "registry") -> "RegistryStore":
        try:
            similarity = SimilarityConfig(**body["similarity"])
            store = cls(
                domain=body["domain"],
                threshold=body["threshold"],
                linkage=body["linkage"],
                similarity=similarity,
            )
            seen_keys: Dict[AttrKey, str] = {}
            for item in body["interfaces"]:
                interface_id = item["interface_id"]
                if store.has_interface(interface_id):
                    raise RegistryCorruptionError(
                        f"{source}: duplicate interface {interface_id!r}"
                    )
                views = []
                for attribute in item["attributes"]:
                    view = AttributeView(
                        interface_id=interface_id,
                        name=attribute["name"],
                        label=attribute["label"],
                        instances=tuple(attribute["instances"]),
                    )
                    if view.key in seen_keys:
                        raise RegistryCorruptionError(
                            f"{source}: duplicate attribute {view.key!r}"
                        )
                    seen_keys[view.key] = interface_id
                    views.append(view)
                store.interfaces.append((interface_id, views))
            for a_raw, b_raw, value in body["sims"]:
                a: AttrKey = (a_raw[0], a_raw[1])
                b: AttrKey = (b_raw[0], b_raw[1])
                if a not in seen_keys or b not in seen_keys:
                    raise RegistryCorruptionError(
                        f"{source}: similarity cache references unknown "
                        f"attribute pair {a!r} / {b!r}"
                    )
                if not a < b:
                    raise RegistryCorruptionError(
                        f"{source}: similarity cache pair {a!r} / {b!r} "
                        "is not in canonical order"
                    )
                if (a, b) in store.sims:
                    raise RegistryCorruptionError(
                        f"{source}: duplicate similarity cache pair "
                        f"{a!r} / {b!r}"
                    )
                store.sims[(a, b)] = value
            claimed: Dict[AttrKey, str] = {}
            cluster_ids: Dict[str, int] = {}
            for entry_payload in body["entries"]:
                entry = RegistryEntry.from_dict(entry_payload)
                if entry.cluster_id in cluster_ids:
                    raise RegistryCorruptionError(
                        f"{source}: duplicate entry {entry.cluster_id!r}"
                    )
                cluster_ids[entry.cluster_id] = 1
                for member in entry.members:
                    if member not in seen_keys:
                        raise RegistryCorruptionError(
                            f"{source}: entry {entry.cluster_id!r} claims "
                            f"unknown attribute {member!r}"
                        )
                    if member in claimed:
                        raise RegistryCorruptionError(
                            f"{source}: attribute {member!r} claimed by "
                            f"both {claimed[member]!r} and "
                            f"{entry.cluster_id!r}"
                        )
                    claimed[member] = entry.cluster_id
                store.entries.append(entry)
            unclaimed = sorted(set(seen_keys) - set(claimed))
            if unclaimed:
                raise RegistryCorruptionError(
                    f"{source}: attribute {unclaimed[0]!r} is not claimed "
                    "by any entry"
                )
            store.stats = BlockingStats.from_dict(body["stats"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryCorruptionError(
                f"{source}: malformed registry body ({exc})"
            ) from exc
        return store

    # -- persistence ---------------------------------------------------

    def save(self, directory: str) -> str:
        """Atomically persist the store; returns the file path written."""
        os.makedirs(directory, exist_ok=True)
        body = self.to_body()
        path = os.path.join(directory, REGISTRY_FILENAME)
        atomic_write_json(path, {
            "format": REGISTRY_FORMAT,
            "crc": record_crc(body),
            "body": body,
        })
        return path

    @classmethod
    def load(cls, directory: str) -> "RegistryStore":
        path = os.path.join(directory, REGISTRY_FILENAME)
        if not os.path.exists(path):
            raise RegistryMismatchError(f"no registry store at {path}")
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RegistryCorruptionError(
                f"{path}: torn or unparseable registry store "
                f"(char {exc.pos})"
            ) from exc
        if not isinstance(envelope, dict) or not {
            "format", "crc", "body"
        } <= set(envelope):
            raise RegistryCorruptionError(
                f"{path}: registry envelope is missing format/crc/body"
            )
        fmt = envelope["format"]
        if not isinstance(fmt, int) or fmt < MIN_REGISTRY_FORMAT:
            raise RegistryCorruptionError(
                f"{path}: unusable registry format {fmt!r}"
            )
        if fmt > REGISTRY_FORMAT:
            raise RegistryFormatError(
                f"{path}: registry format {fmt} is newer than this "
                f"reader (max {REGISTRY_FORMAT})"
            )
        body = envelope["body"]
        if record_crc(body) != envelope["crc"]:
            raise RegistryCorruptionError(
                f"{path}: CRC mismatch — registry body is corrupt"
            )
        if fmt < 2:
            # format 1 predates the blocking ledger: zero defaults.
            body = dict(body)
            body.setdefault("stats", {"adds": []})
        return cls.from_body(body, source=path)
