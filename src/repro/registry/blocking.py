"""The blocking stage: which (new, registered) pairs deserve a full
similarity evaluation.

``Sim = α·LabelSim + β·DomSim`` can only be positive when the pair shares
observable evidence, and every kind of evidence the similarity reads is
indexable:

- **label tokens** — ``LabelSim`` is a cosine over
  :func:`~repro.matching.similarity.normalize_label_words`; no shared
  normalised token means a zero dot product;
- **value signatures** — for non-numeric domains ``DomSim`` is containment
  over ``strip().lower()``-normalised instance values, so a positive
  overlap requires at least one shared signature *and* equal inferred
  types (a type mismatch outside the numeric family zeroes the type
  factor);
- **the numeric family** — two numeric-typed domains compare by range
  overlap, which can be positive without any shared literal value, so all
  numeric-typed attributes share one bucket.

A cross-interface pair matching none of the three postings therefore has
``Sim == 0`` exactly — skipping its evaluation and treating the entry as
0.0 in the merge loop is not an approximation. That soundness claim is
what ``tests/test_registry_blocking.py`` attacks with seeded
perturbations, and what lets the incremental assimilator promise
byte-identical clusters while evaluating a fraction of the pairs.

The index mirrors the postings idiom of
:class:`repro.surfaceweb.index.InvertedIndex`: plain token -> sorted
posting lists, built with ``setdefault``. Every skipped pair is charged to
the :class:`BlockingStats` ledger so the InvariantChecker can audit
``evaluated + blocked == n·|registry|`` for every assimilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.matching.similarity import AttributeView, normalize_label_words
from repro.matching.types import infer_type
from repro.util import counters as work

__all__ = ["AddRecord", "BlockingIndex", "BlockingStats"]

AttrKey = Tuple[str, str]


def label_tokens(view: AttributeView) -> Set[str]:
    """The label's normalised token set — the LabelSim evidence."""
    return set(normalize_label_words(view.label))


def value_signatures(view: AttributeView) -> Set[str]:
    """Normalised instance values — the non-numeric DomSim evidence.

    Exactly the normalisation :func:`repro.matching.similarity.value_similarity`
    applies, so a pair without a shared signature has zero containment.
    """
    return {value.strip().lower() for value in view.instances}


@dataclass(frozen=True)
class Signature:
    """Everything the blocking index knows about one attribute view."""

    key: AttrKey
    tokens: frozenset
    values: frozenset
    #: inferred type name, or None without instances (DomSim = 0 then)
    type_name: Any
    numeric: bool

    @classmethod
    def of(cls, view: AttributeView) -> "Signature":
        if view.instances:
            inferred = infer_type(view.instances)
            type_name: Any = inferred.value
            numeric = inferred.is_numeric
        else:
            type_name = None
            numeric = False
        return cls(
            key=view.key,
            tokens=frozenset(label_tokens(view)),
            values=frozenset(value_signatures(view)),
            type_name=type_name,
            numeric=numeric,
        )


class BlockingIndex:
    """Inverted index over registered views' blocking evidence.

    Candidate generation for a new view unions three posting families:
    shared label token, shared ``(type, value-signature)`` pair, and the
    all-numeric bucket (when the new view is itself numeric). Posting
    lists hold view ids (positions in the registered-view sequence), so
    candidates come back as a sorted id list.
    """

    def __init__(self) -> None:
        self._signatures: List[Signature] = []
        self._by_token: Dict[str, List[int]] = {}
        self._by_value: Dict[Tuple[Any, str], List[int]] = {}
        self._numeric: List[int] = []

    def __len__(self) -> int:
        return len(self._signatures)

    def add(self, view: AttributeView) -> int:
        """Index one registered view; returns its view id."""
        view_id = len(self._signatures)
        signature = Signature.of(view)
        self._signatures.append(signature)
        for token in signature.tokens:
            self._by_token.setdefault(token, []).append(view_id)
        if signature.type_name is not None and not signature.numeric:
            for value in signature.values:
                self._by_value.setdefault(
                    (signature.type_name, value), []).append(view_id)
        if signature.numeric:
            self._numeric.append(view_id)
        return view_id

    def candidates(self, view: AttributeView) -> List[int]:
        """Registered view ids that might have nonzero similarity to ``view``.

        Over-generation is allowed (it only costs evaluations); missing a
        pair that batch evaluation would score above zero is the bug the
        soundness suite hunts.
        """
        if work.ACTIVE is not None:
            work.ACTIVE.bump("blocking.probes")
        signature = Signature.of(view)
        found: Set[int] = set()
        for token in signature.tokens:
            found.update(self._by_token.get(token, ()))
        if signature.type_name is not None and not signature.numeric:
            for value in signature.values:
                found.update(self._by_value.get(
                    (signature.type_name, value), ()))
        if signature.numeric:
            found.update(self._numeric)
        return sorted(found)


@dataclass(frozen=True)
class AddRecord:
    """The ledger line for one assimilation: what was and wasn't evaluated."""

    interface_id: str
    #: attribute views the new interface contributed (``n``)
    new_views: int
    #: registered views at assimilation time (``|registry|``)
    existing_views: int
    #: candidate pairs that got the full similarity evaluation
    evaluated: int
    #: cross pairs the blocking stage skipped (charged as Sim = 0)
    blocked: int

    @property
    def pairs_considered(self) -> int:
        """The full cross-pair scope this add was accountable for."""
        return self.new_views * self.existing_views

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interface_id": self.interface_id,
            "new_views": self.new_views,
            "existing_views": self.existing_views,
            "evaluated": self.evaluated,
            "blocked": self.blocked,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AddRecord":
        return cls(
            interface_id=payload["interface_id"],
            new_views=payload["new_views"],
            existing_views=payload["existing_views"],
            evaluated=payload["evaluated"],
            blocked=payload["blocked"],
        )


@dataclass
class BlockingStats:
    """Cumulative blocking ledger: one :class:`AddRecord` per assimilation.

    The conservation law the InvariantChecker audits: for every add,
    ``evaluated + blocked == new_views · existing_views``, and the totals
    below are exactly the column sums of the history — no evaluation goes
    unaccounted, no skipped pair goes uncharged.
    """

    adds: List[AddRecord] = field(default_factory=list)

    @property
    def evaluated(self) -> int:
        return sum(record.evaluated for record in self.adds)

    @property
    def blocked(self) -> int:
        return sum(record.blocked for record in self.adds)

    @property
    def pairs_considered(self) -> int:
        return sum(record.pairs_considered for record in self.adds)

    @property
    def reduction(self) -> float:
        """Fraction of the cross-pair scope blocking skipped, in [0, 1]."""
        considered = self.pairs_considered
        return self.blocked / considered if considered else 0.0

    def record(self, add: AddRecord) -> None:
        self.adds.append(add)

    def to_dict(self) -> Dict[str, Any]:
        return {"adds": [record.to_dict() for record in self.adds]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BlockingStats":
        return cls(adds=[AddRecord.from_dict(r) for r in payload.get("adds", [])])
