"""Incremental assimilation: one interface joins the registry at a time.

The flow per :meth:`RegistryAssimilator.assimilate` call:

1. **Block** — the new interface's views query the
   :class:`~repro.registry.blocking.BlockingIndex` over all registered
   views; only the candidate pairs get
   :func:`~repro.matching.similarity.similarity_components`. Skipped
   pairs are charged to the :class:`~repro.registry.blocking.BlockingStats`
   ledger. Pairs *within* the new interface are never evaluated at all:
   the cannot-link constraint makes same-interface similarities
   unreachable by any merge decision (DESIGN.md §15 gives the induction).
2. **Cache** — nonzero similarities join the store's sparse cache, keyed
   by canonical attr-key pair, so they are never recomputed.
3. **Induce** — the registry's matching is recomputed over the canonical
   view order (interfaces sorted by id) by the *same*
   :func:`repro.matching.clustering.agglomerate` the batch IceQ matcher
   runs, reading similarities from the sparse cache (absent = 0.0). One
   shared merge loop means one tie-break order — incremental assimilation
   cannot drift from batch.
4. **Unify** — each induced cluster becomes a
   :class:`~repro.registry.store.RegistryEntry` via
   :func:`repro.matching.unify.unify_cluster`, carrying the
   :class:`~repro.obs.provenance.MergeStep` links that assembled it.

Because the canonical order and the cached similarities are independent
of arrival order, the induced matching after assimilating any permutation
of an interface set equals batch IceQ over that set, byte for byte — the
headline guarantee ``tests/test_registry_equivalence.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.deepweb.models import QueryInterface
from repro.matching.clustering import (
    Cluster,
    IceQMatcher,
    LINKAGES,
    agglomerate,
    views_from_interfaces,
)
from repro.matching.similarity import AttributeView, similarity_components
from repro.matching.unify import unify_cluster
from repro.registry.blocking import AddRecord, BlockingIndex
from repro.registry.store import RegistryEntry, RegistryLock, RegistryStore
from repro.util.errors import RegistryMismatchError, ValidationError

__all__ = [
    "RegistryAssimilator",
    "RegistryReport",
    "batch_induced_clusters",
    "build_registry",
]

AttrKey = Tuple[str, str]


@dataclass(frozen=True)
class RegistryReport:
    """Summary of a registry attached to a pipeline run (never exported —
    run payloads are byte-identical with and without a registry)."""

    domain: str
    n_interfaces: int
    n_views: int
    n_entries: int
    #: the induced matching: clusters in merge-loop order, member keys sorted
    induced: Tuple[Tuple[AttrKey, ...], ...]
    #: the cumulative blocking ledger (one AddRecord per assimilation)
    adds: Tuple[AddRecord, ...]
    directory: Optional[str] = None

    @property
    def evaluated(self) -> int:
        return sum(record.evaluated for record in self.adds)

    @property
    def blocked(self) -> int:
        return sum(record.blocked for record in self.adds)

    @property
    def pairs_considered(self) -> int:
        return sum(record.pairs_considered for record in self.adds)


def induced_clusters(store: RegistryStore) -> Tuple[Tuple[Tuple[AttrKey, ...], ...], list]:
    """The registry's induced matching over the canonical view order.

    Returns ``(clusters, merge_steps)`` where clusters are tuples of
    sorted member keys, ordered by smallest member index — exactly the
    shape (and order) batch IceQ produces over id-sorted interfaces.
    """
    views = store.canonical_views()
    member_lists, steps = agglomerate(
        views,
        lambda i, j: store.sim_between(views[i].key, views[j].key),
        store.threshold,
        linkage=store.linkage,
    )
    clusters = tuple(
        tuple(sorted(views[idx].key for idx in indices))
        for indices in member_lists
    )
    return clusters, steps


def batch_induced_clusters(
    store: RegistryStore,
) -> Tuple[Tuple[AttrKey, ...], ...]:
    """The batch-IceQ oracle: full O(n²) evaluation over the same views.

    Used by the equivalence suite and the ``registry batch`` CLI path;
    must equal :func:`induced_clusters` on every store the assimilator
    can produce.
    """
    matcher = IceQMatcher(config=store.similarity, linkage=store.linkage)
    result = matcher.match_views(store.canonical_views(), store.threshold)
    return tuple(
        tuple(sorted(cluster.keys)) for cluster in result.clusters
    )


class RegistryAssimilator:
    """Feeds interfaces into a :class:`RegistryStore` one at a time."""

    def __init__(self, store: RegistryStore) -> None:
        if store.linkage not in LINKAGES:
            raise ValidationError(f"unknown linkage {store.linkage!r}")
        self.store = store
        self._index = BlockingIndex()
        self._registered: List[AttributeView] = []
        for view in store.registered_views():
            self._index.add(view)
            self._registered.append(view)

    def assimilate(self, interface: QueryInterface) -> AddRecord:
        """Absorb one interface; returns its blocking-ledger line."""
        store = self.store
        if interface.domain != store.domain:
            raise RegistryMismatchError(
                f"registry holds domain {store.domain!r}; interface "
                f"{interface.interface_id!r} is domain {interface.domain!r}"
            )
        if store.has_interface(interface.interface_id):
            raise RegistryMismatchError(
                f"interface {interface.interface_id!r} is already "
                "assimilated"
            )
        new_views = views_from_interfaces([interface])

        evaluated = 0
        existing = len(self._registered)
        for view in new_views:
            candidate_ids = self._index.candidates(view)
            for view_id in candidate_ids:
                other = self._registered[view_id]
                _, _, value = similarity_components(
                    other, view, store.similarity)
                evaluated += 1
                if value != 0.0:
                    a, b = view.key, other.key
                    store.sims[(a, b) if a < b else (b, a)] = value

        record = AddRecord(
            interface_id=interface.interface_id,
            new_views=len(new_views),
            existing_views=existing,
            evaluated=evaluated,
            blocked=len(new_views) * existing - evaluated,
        )
        store.stats.record(record)
        store.interfaces.append((interface.interface_id, new_views))
        for view in new_views:
            self._index.add(view)
            self._registered.append(view)
        self._rebuild_entries()
        return record

    def _rebuild_entries(self) -> None:
        store = self.store
        views = store.canonical_views()
        member_lists, steps = agglomerate(
            views,
            lambda i, j: store.sim_between(views[i].key, views[j].key),
            store.threshold,
            linkage=store.linkage,
        )
        entries: List[RegistryEntry] = []
        for position, indices in enumerate(member_lists):
            cluster = Cluster([views[idx] for idx in indices])
            member_keys = set(cluster.keys)
            unified = unify_cluster(cluster, len(cluster.interfaces))
            entries.append(RegistryEntry(
                cluster_id=f"c{position:04d}",
                label=unified.label,
                instances=unified.instances,
                coverage=unified.coverage,
                members=unified.members,
                interfaces=tuple(sorted(cluster.interfaces)),
                label_votes=unified.label_votes,
                merges=tuple(
                    step for step in steps
                    if set(step.cluster_a) | set(step.cluster_b)
                    <= member_keys
                ),
            ))
        store.entries = entries

    def report(self, directory: Optional[str] = None) -> RegistryReport:
        store = self.store
        clusters, _ = induced_clusters(store)
        return RegistryReport(
            domain=store.domain,
            n_interfaces=len(store.interfaces),
            n_views=store.n_views,
            n_entries=len(store.entries),
            induced=clusters,
            adds=tuple(store.stats.adds),
            directory=directory,
        )


def build_registry(
    domain: str,
    interfaces: Sequence[QueryInterface],
    *,
    threshold: float = 0.0,
    linkage: str = "average",
    store: Optional[RegistryStore] = None,
    directory: Optional[str] = None,
) -> Tuple[RegistryStore, RegistryReport]:
    """Assimilate ``interfaces`` one at a time (in the given arrival
    order) into a fresh or existing store; optionally persist after every
    add so a crash loses at most the in-flight interface.

    When persisting, the whole build holds the directory's
    :class:`~repro.registry.store.RegistryLock` — a concurrent writer gets
    :class:`~repro.util.errors.RegistryLockedError` instead of a lost
    update."""
    if store is None:
        store = RegistryStore(domain=domain, threshold=threshold,
                              linkage=linkage)
    assimilator = RegistryAssimilator(store)
    if directory is None:
        for interface in interfaces:
            assimilator.assimilate(interface)
        return store, assimilator.report(directory)
    with RegistryLock(directory, owner="build_registry"):
        for interface in interfaces:
            assimilator.assimilate(interface)
            store.save(directory)
        if not interfaces:
            store.save(directory)
    return store, assimilator.report(directory)
