"""Ambient *unit context*: which checkpoint unit this thread is executing.

The parallel execution engine (:mod:`repro.exec`) partitions every
sequential random stream — Deep-Web fault streams, backoff jitter — by
checkpoint unit ``(phase, interface_id, attribute)``. A stream keyed by
unit starts at position 0 whenever that unit runs, so its draws cannot
depend on which units ran before it, on another thread's interleaving, or
on how much of the run was replayed from a journal. That is what makes
"no draw interleaving can differ from serial" a structural property
instead of a scheduling accident, and it removes the need to fast-forward
streams on resume.

The context is thread-local: the serial commit path and every speculative
worker each bracket their unit's work with :func:`unit_scope`, and the
substrates ask :func:`current_unit` which per-unit stream to draw from.
Code running outside any unit (direct substrate use in tests, the
``discover`` CLI) sees ``None`` and falls back to the legacy shared
streams, so standalone behaviour is unchanged.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

__all__ = ["UnitKey", "unit_scope", "current_unit"]

#: (phase, interface_id, attribute_name) — the checkpoint unit identity.
UnitKey = Tuple[str, str, str]

_state = threading.local()


@contextmanager
def unit_scope(unit: UnitKey) -> Iterator[None]:
    """Mark this thread as executing ``unit`` for the duration of the block."""
    previous = getattr(_state, "unit", None)
    _state.unit = tuple(unit)
    try:
        yield
    finally:
        _state.unit = previous


def current_unit() -> Optional[UnitKey]:
    """The unit this thread is executing, or ``None`` outside any unit."""
    return getattr(_state, "unit", None)
