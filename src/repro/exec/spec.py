"""Speculative snapshot worlds for the parallel executor.

A speculation's only job is to *pay a unit's simulated I/O latency early*,
on a worker thread, so the serial commit can skip those sleeps. It does so
by running the unit's exact work body against an **isolated clone of the
run's layer stack**, built over a snapshot taken on the commit thread at
dispatch time:

- the raw substrates are cheaply cloned (the inverted index and record
  databases are immutable and shared; counters and memos are private);
- the clone's stack mirrors the live one layer for layer — latency
  gateway, flaky fault injection, resilient client (restored from the
  live client's checkpoint payload), query cache seeded with the live
  cache's entries, validation memos and the probe memo copied — except
  that observability and checkpointing are absent (both are read-only /
  commit-thread concerns);
- the unit runs through the *same* :meth:`InstanceAcquirer._execute_unit`
  code as the commit will, inside the same per-unit RNG scope, so its
  fault fates, retries and budget decisions replay identically whenever
  the snapshot matches the eventual pre-commit state.

The worker returns the multiset of raw call keys whose latency it served
(recorded by its gateways); nothing else escapes the clone world. If the
snapshot was stale — an earlier in-flight unit changed a donor set or the
cache — the receipt simply redeems fewer sleeps. Misprediction costs
overlap, never correctness.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.deepweb.models import Attribute, QueryInterface
from repro.deepweb.source import DeepWebSource
from repro.exec.dag import WorkUnit
from repro.exec.executors import ExecStats
from repro.exec.gateway import (
    GatewayStats,
    LatencyDeepWebSource,
    LatencySearchEngine,
)
from repro.perf.cache import CachingSearchEngine, ValidationCache
from repro.resilience.client import (
    ResilienceConfig,
    ResilientClient,
    ResilientDeepWebSource,
    ResilientSearchEngine,
)
from repro.resilience.faults import FlakyDeepWebSource, FlakySearchEngine
from repro.surfaceweb.engine import SearchEngine

__all__ = ["Speculator", "WorldSnapshot"]


class WorldSnapshot:
    """Frozen pre-unit state, captured on the commit thread at dispatch."""

    __slots__ = (
        "interfaces",
        "record",
        "client_payload",
        "cache_entries",
        "validation_stores",
        "probe_memo",
    )

    def __init__(
        self,
        interfaces: List[QueryInterface],
        record: Any,
        client_payload: Optional[Dict[str, Any]],
        cache_entries: Optional[List[Tuple[Tuple, Any]]],
        validation_stores: Dict[str, ValidationCache],
        probe_memo: Dict[tuple, bool],
    ) -> None:
        self.interfaces = interfaces
        self.record = record
        self.client_payload = client_payload
        self.cache_entries = cache_entries
        self.validation_stores = validation_stores
        self.probe_memo = probe_memo


def _clone_attribute(attribute: Attribute) -> Attribute:
    clone = Attribute(
        name=attribute.name,
        label=attribute.label,
        kind=attribute.kind,
        instances=attribute.instances,
    )
    clone.acquired = list(attribute.acquired)
    return clone


def _clone_interface(interface: QueryInterface) -> QueryInterface:
    return QueryInterface(
        interface_id=interface.interface_id,
        domain=interface.domain,
        object_name=interface.object_name,
        attributes=[_clone_attribute(a) for a in interface.attributes],
    )


def _clone_engine(raw: SearchEngine) -> SearchEngine:
    """A raw-engine clone sharing the immutable index, owning its counter."""
    clone = SearchEngine.__new__(SearchEngine)
    clone.index = raw.index
    clone._parser = raw._parser
    clone.query_count = 0
    return clone


def _clone_source(raw: DeepWebSource) -> DeepWebSource:
    """A raw-source clone sharing records/recognizers, owning its counter.

    The interface reference is shared too: recognition reads only the
    immutable pre-defined ``instances`` — speculative acquisition mutates
    the *cloned* interface set the spec acquirer iterates, never this one.
    """
    return DeepWebSource(
        interface=raw.interface,
        recognizers=raw.recognizers,
        records=raw.records,
        required_attributes=raw.required_attributes,
        failure_style=raw.failure_style,
    )


class Speculator:
    """Builds snapshot worlds and runs units in them, one per dispatch.

    Constructed by the pipeline alongside the :class:`ThreadPoolExecutor`;
    its :meth:`prepare` is the executor's ``speculate`` hook. All live
    references (acquirer, substrates, client, caches) are only ever read
    on the commit thread, inside :meth:`prepare`.
    """

    def __init__(
        self,
        acquirer,  # repro.core.acquisition.InstanceAcquirer (untyped: layering)
        raw_engine: SearchEngine,
        raw_sources: Dict[str, DeepWebSource],
        resilience: Optional[ResilienceConfig] = None,
        cache_max_entries: Optional[int] = None,
        cache_engine: Optional[CachingSearchEngine] = None,
        client: Optional[ResilientClient] = None,
        session=None,  # CheckpointSession (untyped: layering)
        latency: float = 0.0,
        cancel: Optional[threading.Event] = None,
        stats: Optional[ExecStats] = None,
    ) -> None:
        self._acquirer = acquirer
        self._raw_engine = raw_engine
        self._raw_sources = dict(raw_sources)
        self._resilience = resilience
        self._cache_max_entries = cache_max_entries
        self._cache_engine = cache_engine
        self._client = client
        self._session = session
        self._latency = latency
        self._cancel = cancel
        self._stats = stats
        #: sleep accounting for the speculative side only (the commit-side
        #: gateways report into the run-wide GatewayStats instead)
        self.spec_gateway_stats = GatewayStats()

    # ------------------------------------------------------- commit thread
    def prepare(self, unit: WorkUnit) -> Optional[Callable[[], Optional[Counter]]]:
        """Snapshot the pre-unit world; return the worker-side thunk.

        Returns ``None`` (skip speculation) while a resumed run is still
        replaying journal records: replayed units issue no calls, so
        there is nothing to prefetch.
        """
        if self._session is not None and self._session.pending_replays > 0:
            return None
        snapshot = self._snapshot(unit)
        unit_key = unit.key
        return lambda: self._speculate(unit_key, unit.phase, snapshot)

    def _snapshot(self, unit: WorkUnit) -> WorldSnapshot:
        acquirer = self._acquirer
        stores: Dict[str, ValidationCache] = {}
        if acquirer.validation_cache is not None:
            stores["shared"] = acquirer.validation_cache.clone()
        else:
            stores["surface"] = acquirer._discoverer.validator.cache.clone()
            stores["attr_surface"] = acquirer._web_validator.cache.clone()
        return WorldSnapshot(
            interfaces=[_clone_interface(i) for i in acquirer._interfaces],
            record=replace(unit.record),
            client_payload=(
                self._client.state_payload()
                if self._client is not None else None
            ),
            cache_entries=(
                self._cache_engine.snapshot_entries()
                if self._cache_engine is not None else None
            ),
            validation_stores=stores,
            probe_memo=dict(acquirer._attr_deep.probe_memo),
        )

    # ------------------------------------------------------- worker thread
    def _speculate(self, unit_key, phase: str,
                   snapshot: WorldSnapshot) -> Optional[Counter]:
        try:
            recorder: Counter = Counter()
            world = self._build_world(snapshot, recorder)
            by_id = {i.interface_id: i for i in snapshot.interfaces}
            interface = by_id[unit_key[1]]
            unit = WorkUnit(
                phase, interface, interface.attribute(unit_key[2]),
                snapshot.record,
            )
            with world._phase(phase):
                world._execute_unit(unit)
            return recorder
        except Exception:
            # Any failure — cancellation, a stale snapshot tripping an
            # invariant, a genuine bug surfacing early — just means no
            # prefetch receipt: the commit pays its own latency.
            return None

    def _build_world(self, snapshot: WorldSnapshot, recorder: Counter):
        """Mirror the live layer stack over cloned substrates.

        Layer order matches :meth:`repro.core.pipeline.WebIQMatcher.run`
        exactly (gateway → flaky → resilient → cache), minus the
        observability layers (read-only) and the checkpoint session
        (commits are not ours to write).
        """
        # Imported here: repro.exec must stay importable by repro.core
        # without a cycle, and only this worker-side factory needs it.
        from repro.core.acquisition import InstanceAcquirer

        engine: Any = LatencySearchEngine(
            _clone_engine(self._raw_engine), self._latency,
            recorder=recorder, cancel=self._cancel,
            stats=self.spec_gateway_stats,
        )
        sources: Dict[str, Any] = {
            source_id: LatencyDeepWebSource(
                _clone_source(raw), self._latency,
                recorder=recorder, cancel=self._cancel,
                stats=self.spec_gateway_stats,
            )
            for source_id, raw in self._raw_sources.items()
        }
        client: Optional[ResilientClient] = None
        if self._resilience is not None:
            client = ResilientClient(self._resilience)
            if snapshot.client_payload is not None:
                client.restore_state(snapshot.client_payload)
            profile = self._resilience.profile
            attempt_client = client
            engine = ResilientSearchEngine(
                FlakySearchEngine(
                    engine, profile,
                    on_fault=client.note_injected_fault,
                    attempt_provider=lambda: attempt_client.current_attempt,
                ),
                client,
            )
            sources = {
                source_id: ResilientDeepWebSource(
                    FlakyDeepWebSource(
                        source, profile,
                        on_fault=client.note_injected_fault,
                    ),
                    client,
                )
                for source_id, source in sources.items()
            }
        validation_cache: Optional[ValidationCache] = None
        if self._cache_engine is not None:
            caching = CachingSearchEngine(
                engine, self._cache_max_entries
            )
            for key, value in snapshot.cache_entries or []:
                caching.replay_store(key, value)
            engine = caching
            validation_cache = snapshot.validation_stores["shared"]
        world = InstanceAcquirer(
            engine, sources, self._acquirer.config,
            resilience=client, validation_cache=validation_cache,
        )
        if validation_cache is None:
            _seed(world._discoverer.validator.cache,
                  snapshot.validation_stores["surface"])
            _seed(world._web_validator.cache,
                  snapshot.validation_stores["attr_surface"])
        world._attr_deep.probe_memo.update(snapshot.probe_memo)
        world._interfaces = snapshot.interfaces
        world._domain_keywords = list(self._acquirer._domain_keywords)
        world._object_name = self._acquirer._object_name
        return world


def _seed(target: ValidationCache, source: ValidationCache) -> None:
    target.phrase_hits.update(source.phrase_hits)
    target.candidate_hits.update(source.candidate_hits)
    target.joint_hits.update(source.joint_hits)
