"""The I/O latency gateway: where simulated round trips cost real time.

The substrates answer instantly, so there is nothing for a parallel
executor to overlap. This module restores the missing physics at the very
bottom of the layer stack — directly around the raw
:class:`~repro.surfaceweb.engine.SearchEngine` and each raw
:class:`~repro.deepweb.source.DeepWebSource` — with an opt-in per-round-trip
wall-clock sleep (``WebIQConfig.io_latency``).

Two modes, one class each side of the speculation bargain:

- **recording** (speculative workers): every raw call sleeps and its call
  key is tallied into a local :class:`collections.Counter` — the worker's
  receipt for latency already paid;
- **redeeming** (the serial commit thread): before sleeping, the gateway
  asks the :class:`PrefetchLedger` whether the installed receipt still has
  a credit for this key; if so the sleep is skipped — the speculative
  worker already waited it out, concurrently with other units.

Only the *sleep* is ever skipped. The answer is always computed live by
the wrapped raw substrate (a pure function of its immutable corpus), so a
stale speculation can waste a sleep but can never leak a stale answer:
commit-side results are byte-identical to a serial run by construction.

Faulted round trips that never reach the raw substrate (the flaky layer
raises without calling ``inner``) pay no latency on either side, keeping
the two sides' receipts consistent.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Tuple

from repro.util.errors import PreemptionError

__all__ = [
    "GatewayStats",
    "LatencyDeepWebSource",
    "LatencySearchEngine",
    "PrefetchLedger",
    "SpeculationCancelled",
]


class SpeculationCancelled(PreemptionError):
    """A speculative sleep was interrupted by executor shutdown."""


@dataclass
class GatewayStats:
    """Sleep accounting across every gateway of one run (thread-safe)."""

    sleeps_paid: int = 0
    sleeps_skipped: int = 0
    seconds_paid: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def note_paid(self, seconds: float) -> None:
        with self._lock:
            self.sleeps_paid += 1
            self.seconds_paid += seconds

    def note_skipped(self) -> None:
        with self._lock:
            self.sleeps_skipped += 1


class PrefetchLedger:
    """The commit thread's receipt for latency a speculation already paid.

    A multiset of raw call keys: :meth:`install` loads one unit's receipt
    just before its authoritative commit, :meth:`consume` spends one
    credit per matching commit-side call, :meth:`clear` drops whatever the
    speculation over-predicted. Thread-safe, though in the current design
    only the commit thread touches it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._credits: Counter = Counter()
        self.installed = 0
        self.consumed = 0

    def install(self, credits: Optional[Mapping[Tuple, int]]) -> None:
        with self._lock:
            self._credits = Counter(credits or {})
            self.installed += sum(self._credits.values())

    def clear(self) -> None:
        with self._lock:
            self._credits = Counter()

    def consume(self, key: Tuple) -> bool:
        """Spend one credit for ``key`` if the receipt has one."""
        with self._lock:
            if self._credits.get(key, 0) > 0:
                self._credits[key] -= 1
                self.consumed += 1
                return True
            return False


class _GatewayBase:
    """Shared sleep/record/redeem mechanics of both gateway shapes."""

    def __init__(
        self,
        inner: Any,
        latency: float,
        ledger: Optional[PrefetchLedger] = None,
        recorder: Optional[Counter] = None,
        cancel: Optional[threading.Event] = None,
        stats: Optional[GatewayStats] = None,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if ledger is not None and recorder is not None:
            raise ValueError("a gateway either records or redeems, not both")
        self.inner = inner
        self.latency = latency
        self.ledger = ledger
        self.recorder = recorder
        self.cancel = cancel
        self.stats = stats

    def _pay(self, key: Tuple) -> None:
        """Charge one raw round trip: record-and-sleep, or redeem-or-sleep."""
        if self.recorder is not None:
            self.recorder[key] += 1
        elif self.ledger is not None and self.ledger.consume(key):
            if self.stats is not None:
                self.stats.note_skipped()
            return
        if self.latency <= 0.0:
            return
        if self.cancel is not None:
            # Interruptible sleep: executor shutdown must not wait out the
            # backlog of speculative round trips one by one.
            if self.cancel.wait(self.latency):
                raise SpeculationCancelled("speculation cancelled mid-sleep")
        else:
            time.sleep(self.latency)
        if self.stats is not None:
            self.stats.note_paid(self.latency)


class LatencySearchEngine(_GatewayBase):
    """Engine-shaped gateway; wraps the *raw* search engine."""

    # ------------------------------------------------------- engine facade
    @property
    def query_count(self) -> int:
        return self.inner.query_count

    @query_count.setter
    def query_count(self, value: int) -> None:
        # The flaky layer charges faulted round trips straight onto its
        # inner counter; that charge must reach the raw engine.
        self.inner.query_count = value

    def reset_query_count(self) -> None:
        self.inner.reset_query_count()

    @property
    def n_documents(self) -> int:
        return self.inner.n_documents

    @property
    def index(self):
        return self.inner.index

    def search(self, query: str, max_results: int = 10) -> List[Any]:
        self._pay(("search", query, max_results))
        return self.inner.search(query, max_results)

    def num_hits(self, query: str) -> int:
        self._pay(("num_hits", query))
        return self.inner.num_hits(query)

    def num_hits_proximity(self, phrase_a: str, phrase_b: str,
                           window: Optional[int] = None) -> int:
        if window is None:
            self._pay(("proximity", phrase_a, phrase_b))
            return self.inner.num_hits_proximity(phrase_a, phrase_b)
        self._pay(("proximity", phrase_a, phrase_b, window))
        return self.inner.num_hits_proximity(phrase_a, phrase_b, window)


class LatencyDeepWebSource(_GatewayBase):
    """Source-shaped gateway; wraps one *raw* Deep-Web source."""

    # ------------------------------------------------------- source facade
    @property
    def interface(self):
        return self.inner.interface

    @property
    def interface_id(self) -> str:
        return self.inner.interface.interface_id

    @property
    def records(self):
        return self.inner.records

    @property
    def required_attributes(self):
        return self.inner.required_attributes

    @property
    def probe_count(self) -> int:
        return self.inner.probe_count

    @probe_count.setter
    def probe_count(self, value: int) -> None:
        self.inner.probe_count = value

    def recognizes(self, attribute_name: str, value: str) -> bool:
        return self.inner.recognizes(attribute_name, value)

    def submit(self, values: Mapping[str, str]) -> Any:
        key = ("submit", self.interface_id, tuple(sorted(values.items())))
        self._pay(key)
        return self.inner.submit(values)
