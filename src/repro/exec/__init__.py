"""repro.exec — the parallel unit-DAG execution engine.

The acquisition pipeline's work is an explicit DAG of checkpoint units
(:mod:`repro.exec.dag`) driven by a pluggable executor
(:mod:`repro.exec.executors`): :class:`SerialExecutor` is the classic
loop, :class:`ThreadPoolExecutor` overlaps the units' simulated I/O
latency with speculative prefetch while committing every observable
effect serially, in canonical order — which is why any worker count
produces byte-identical runs.

Supporting pieces: the thread-local unit context that partitions random
streams per unit (:mod:`repro.exec.context`), the latency gateway and
prefetch ledger at the substrate boundary (:mod:`repro.exec.gateway`),
and the snapshot-world speculator (:mod:`repro.exec.spec` — imported
directly by the pipeline, not re-exported here, because it reaches into
the core layers).
"""

from repro.exec.context import UnitKey, current_unit, unit_scope
from repro.exec.dag import ExecutionDAG, PhaseNode, WorkUnit
from repro.exec.executors import ExecStats, SerialExecutor, ThreadPoolExecutor
from repro.exec.gateway import (
    GatewayStats,
    LatencyDeepWebSource,
    LatencySearchEngine,
    PrefetchLedger,
    SpeculationCancelled,
)

__all__ = [
    "ExecStats",
    "ExecutionDAG",
    "GatewayStats",
    "LatencyDeepWebSource",
    "LatencySearchEngine",
    "PhaseNode",
    "PrefetchLedger",
    "SerialExecutor",
    "SpeculationCancelled",
    "ThreadPoolExecutor",
    "UnitKey",
    "WorkUnit",
    "current_unit",
    "unit_scope",
]
