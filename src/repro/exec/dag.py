"""The acquisition work DAG: checkpoint units as explicit nodes.

The acquisition pipeline's implicit structure — three phases, each a loop
over ``(interface, attribute)`` pairs — becomes an explicit
:class:`ExecutionDAG`: one :class:`WorkUnit` node per checkpoint unit,
grouped into :class:`PhaseNode` stages. Dependencies are *barrier* edges:
every unit of a phase depends on every unit of the previous phase (the
Attr phases borrow from instance sets the Surface phase produced), and
units within one phase have no edges between each other — they may be
*speculated* concurrently, while their authoritative commits stay in the
DAG's canonical order (see :mod:`repro.exec.executors`).

The canonical order — phases in plan order, units within a phase in
enumeration order — is the exact iteration order of the pre-DAG serial
loops, which is what lets the executors promise bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Sequence, Tuple

from repro.exec.context import UnitKey

__all__ = ["ExecutionDAG", "PhaseNode", "WorkUnit"]


@dataclass
class WorkUnit:
    """One checkpoint unit: one ``(phase, interface, attribute)`` of work.

    Carries live references to the objects the unit mutates (the
    attribute's ``acquired`` list, the acquisition record) so executors
    can hand the unit around without knowing acquisition internals.
    """

    phase: str
    interface: Any
    attribute: Any
    record: Any
    #: position in the DAG's canonical (serial) order, assigned at plan time
    index: int = -1

    @property
    def key(self) -> UnitKey:
        return (self.phase, self.interface.interface_id, self.attribute.name)

    def __repr__(self) -> str:  # compact: shows up in executor diagnostics
        return f"WorkUnit({'/'.join(self.key)})"


@dataclass
class PhaseNode:
    """One barrier stage of the DAG: a named, ordered batch of units."""

    name: str
    units: List[WorkUnit] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.units)


class ExecutionDAG:
    """Phases of work units with barrier dependencies between phases.

    Build it with :meth:`add_phase` (in execution order); iterate
    :attr:`phases` to drive an executor, or :meth:`units` for the flat
    canonical order. :meth:`predecessors` materialises the barrier edges
    for introspection and tests — executors do not need them, because the
    phase grouping *is* the dependency structure.
    """

    def __init__(self) -> None:
        self._phases: List[PhaseNode] = []
        self._n_units = 0

    # ------------------------------------------------------------- building
    def add_phase(self, name: str, units: Sequence[WorkUnit]) -> PhaseNode:
        """Append a phase; stamps each unit's canonical ``index``."""
        if any(phase.name == name for phase in self._phases):
            raise ValueError(f"duplicate phase {name!r}")
        node = PhaseNode(name, list(units))
        for unit in node.units:
            if unit.phase != name:
                raise ValueError(
                    f"unit {unit!r} declares phase {unit.phase!r}, "
                    f"planned into phase {name!r}"
                )
            unit.index = self._n_units
            self._n_units += 1
        self._phases.append(node)
        return node

    # ------------------------------------------------------------ traversal
    @property
    def phases(self) -> Tuple[PhaseNode, ...]:
        return tuple(self._phases)

    @property
    def n_units(self) -> int:
        return self._n_units

    def units(self) -> Iterator[WorkUnit]:
        """All units in canonical (serial commit) order."""
        for phase in self._phases:
            yield from phase.units

    def predecessors(self, unit: WorkUnit) -> List[WorkUnit]:
        """The units that must commit before ``unit`` may: the whole
        previous phase (barrier edges). Units of the first phase have
        none; within a phase there are deliberately no edges."""
        for i, phase in enumerate(self._phases):
            if any(u is unit for u in phase.units):
                return list(self._phases[i - 1].units) if i > 0 else []
        raise ValueError(f"{unit!r} is not in this DAG")
