"""Pluggable executors driving the acquisition DAG's units.

Both executors make the same promise: **authoritative effects happen on
the calling thread, in the DAG's canonical unit order**. Journal records
append in serial order, cache op-logs and validation-store growth commit
in unit order, stopwatch accounts accumulate per unit — because the one
code path that produces all of those is the same serial commit body,
executed by the caller, unit by unit.

:class:`SerialExecutor` (the default) is exactly the pre-DAG loop.

:class:`ThreadPoolExecutor` adds *speculative prefetch*: a sliding window
of upcoming units is dispatched to worker threads, each running the unit
against an isolated snapshot world purely to pay its simulated I/O
latency early (see :mod:`repro.exec.spec`). The worker's receipt — a
multiset of raw call keys — is installed into the
:class:`~repro.exec.gateway.PrefetchLedger` just before the unit's real
commit, which then skips the sleeps the worker already served. A wrong
speculation loses overlap, never correctness: the commit path recomputes
every answer live and remains bit-identical to :class:`SerialExecutor`
by construction.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from concurrent import futures
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.exec.dag import WorkUnit
from repro.exec.gateway import GatewayStats, PrefetchLedger

__all__ = ["ExecStats", "SerialExecutor", "ThreadPoolExecutor"]

#: A speculation thunk: runs on a worker, returns the multiset of raw call
#: keys whose latency it paid — or ``None`` when speculation failed/was
#: skipped (the commit then simply pays its own latency).
SpeculationThunk = Callable[[], Optional[Counter]]

#: Prepares a speculation for one unit *on the commit thread* (snapshots
#: mutable state) and returns the worker-side thunk, or ``None`` to skip.
SpeculationPrepare = Callable[[WorkUnit], Optional[SpeculationThunk]]


@dataclass
class ExecStats:
    """What the execution engine did for one run (diagnostics only —
    deliberately excluded from run exports, which must stay byte-identical
    across worker counts)."""

    workers: int = 1
    units_total: int = 0
    units_speculated: int = 0
    speculation_failures: int = 0
    credits_recorded: int = 0
    credits_consumed: int = 0
    sleeps_paid: int = 0
    sleeps_skipped: int = 0
    seconds_paid: float = 0.0

    def absorb(self, ledger: Optional[PrefetchLedger],
               gateway: Optional[GatewayStats]) -> None:
        """Pull the final counters out of the ledger and gateway stats."""
        if ledger is not None:
            self.credits_recorded = ledger.installed
            self.credits_consumed = ledger.consumed
        if gateway is not None:
            self.sleeps_paid = gateway.sleeps_paid
            self.sleeps_skipped = gateway.sleeps_skipped
            self.seconds_paid = gateway.seconds_paid

    def summary(self) -> str:
        """One CLI-ready line, mirroring the cache summary's tone."""
        line = (
            f"exec: {self.workers} worker(s) — {self.units_total} units"
        )
        if self.workers > 1:
            hit = (
                self.credits_consumed / self.credits_recorded
                if self.credits_recorded else 0.0
            )
            line += (
                f", {self.units_speculated} speculated "
                f"({self.speculation_failures} failed), "
                f"prefetch {self.credits_consumed}/{self.credits_recorded} "
                f"credits redeemed ({hit:.1%})"
            )
        if self.sleeps_paid or self.sleeps_skipped:
            line += (
                f", {self.sleeps_skipped} sleeps skipped / "
                f"{self.sleeps_paid} paid ({self.seconds_paid:.1f}s)"
            )
        return line


class SerialExecutor:
    """The default executor: commit every unit inline, in order."""

    workers = 1

    def __init__(self, stats: Optional[ExecStats] = None) -> None:
        self.stats = stats if stats is not None else ExecStats()

    def run_phase(self, units: Sequence[WorkUnit],
                  commit: Callable[[WorkUnit], None]) -> None:
        for unit in units:
            self.stats.units_total += 1
            commit(unit)

    def close(self) -> None:
        pass


class ThreadPoolExecutor:
    """Speculating executor: workers prefetch latency, commits stay serial.

    ``workers`` threads serve a sliding window (``2 × workers``) of
    speculation thunks prepared by ``speculate`` (see
    :class:`~repro.exec.spec.Speculator`). The commit loop runs on the
    calling thread: for each unit in canonical order it collects the
    unit's speculation receipt, installs it into ``ledger``, executes the
    authoritative commit body, and clears the receipt. An exception
    escaping a commit (preemption, deadline, crash) sets the cancel event
    — interruptible speculative sleeps abort instead of draining — and
    propagates unchanged.
    """

    def __init__(
        self,
        workers: int,
        speculate: Optional[SpeculationPrepare] = None,
        ledger: Optional[PrefetchLedger] = None,
        stats: Optional[ExecStats] = None,
        cancel: Optional[threading.Event] = None,
    ) -> None:
        if workers < 2:
            raise ValueError(
                "ThreadPoolExecutor needs at least 2 workers; "
                "use SerialExecutor for serial runs"
            )
        self.workers = workers
        self.stats = stats if stats is not None else ExecStats(workers=workers)
        self.stats.workers = workers
        self._speculate = speculate
        self._ledger = ledger
        #: shared with every speculative gateway's interruptible sleep
        self.cancel = cancel if cancel is not None else threading.Event()
        self._pool = futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="webiq-spec"
        )

    def run_phase(self, units: Sequence[WorkUnit],
                  commit: Callable[[WorkUnit], None]) -> None:
        window = self.workers * 2
        pending: deque = deque()
        upcoming = deque(units)

        def refill() -> None:
            while upcoming and len(pending) < window:
                unit = upcoming.popleft()
                future = None
                if self._speculate is not None and not self.cancel.is_set():
                    # Snapshotting happens here, on the commit thread, so
                    # the worker sees a frozen pre-unit world.
                    thunk = self._speculate(unit)
                    if thunk is not None:
                        future = self._pool.submit(thunk)
                        self.stats.units_speculated += 1
                pending.append(future)

        try:
            refill()
            for unit in units:
                future = pending.popleft()
                credits: Optional[Counter] = None
                if future is not None:
                    try:
                        credits = future.result()
                    except Exception:
                        # A speculation's crash is never the run's crash:
                        # the commit below recomputes everything live.
                        # (Speculator already catches its own exceptions;
                        # this guards custom speculate hooks too.)
                        credits = None
                    if credits is None:
                        self.stats.speculation_failures += 1
                if self._ledger is not None:
                    self._ledger.install(credits)
                try:
                    self.stats.units_total += 1
                    commit(unit)
                finally:
                    if self._ledger is not None:
                        self._ledger.clear()
                refill()
        except BaseException:
            self.cancel.set()
            raise

    def close(self) -> None:
        """Stop speculating; in-flight sleeps abort via the cancel event."""
        self.cancel.set()
        self._pool.shutdown(wait=True, cancel_futures=True)
