"""Pointwise mutual information over search-engine hit counts (paper §2.2).

The paper measures the semantic connection between a validation phrase ``V``
and an instance candidate ``x`` as::

    PMI(V, x) = NumHits(V + x) / (NumHits(V) * NumHits(x))

i.e. the co-occurrence count normalised by the individual popularity of the
phrase and the candidate — removing "the potential bias towards popular
instances (or non-instances)". The candidate's confidence score is the mean
PMI over all of the attribute's validation phrases.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["pmi", "mean_pmi"]


def pmi(hits_joint: int, hits_phrase: int, hits_candidate: int) -> float:
    """PMI of a validation phrase and a candidate from their hit counts.

    Zero-hit marginals yield zero PMI: if the phrase or the candidate never
    occurs, no co-occurrence evidence exists (the joint count is then also
    zero, and 0/0 is resolved to 0).

    >>> pmi(10, 100, 50)
    0.002
    >>> pmi(0, 100, 50)
    0.0
    >>> pmi(0, 0, 50)
    0.0
    """
    if hits_joint < 0 or hits_phrase < 0 or hits_candidate < 0:
        raise ValueError("hit counts must be non-negative")
    denominator = hits_phrase * hits_candidate
    if denominator == 0:
        return 0.0
    return hits_joint / denominator


def mean_pmi(scores: Sequence[float]) -> float:
    """Confidence score: average PMI across validation phrases.

    >>> round(mean_pmi([0.2, 0.4]), 10)
    0.3
    >>> mean_pmi([])
    0.0
    """
    scores = list(scores)
    if not scores:
        return 0.0
    return sum(scores) / len(scores)
