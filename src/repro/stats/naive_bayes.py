"""Binary naive Bayes over boolean feature vectors (paper §3.1).

Implements formula (1) of the paper: the posterior of class ``c`` for an
object represented by boolean features ``f_1..f_n`` is::

    P(c) * prod_i P(f_i | c)
    ------------------------------------------------------------
    P(c) * prod_i P(f_i | c)  +  P(~c) * prod_i P(f_i | ~c)

with all probabilities estimated from counts under Laplacean smoothing
(paper Figure 5.h: ``P(f1=1|+) = (2+1)/(2+2) = 3/4``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.errors import ValidationError

__all__ = ["BinaryNaiveBayes"]


@dataclass
class _FeatureTable:
    """P(f=1 | class) for one feature under both classes."""

    p_one_given_pos: float
    p_one_given_neg: float


class BinaryNaiveBayes:
    """Two-class naive Bayes classifier over boolean features.

    >>> nb = BinaryNaiveBayes()
    >>> nb.fit([((1, 1), True), ((1, 1), True), ((0, 0), False), ((0, 1), False)])
    >>> nb.predict((1, 1))
    True
    >>> round(nb.posterior_positive((0, 0)), 3) < 0.5
    True
    """

    def __init__(self) -> None:
        self._features: List[_FeatureTable] = []
        self._p_pos = 0.5
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self._features)

    @property
    def prior_positive(self) -> float:
        return self._p_pos

    def fit(self, examples: Sequence[Tuple[Sequence[int], bool]]) -> None:
        """Estimate priors and conditionals with Laplacean smoothing.

        ``examples`` are ``(feature_vector, is_positive)`` pairs; all vectors
        must share one length with 0/1 entries.
        """
        if not examples:
            raise ValidationError("cannot train naive Bayes on an empty set")
        n_features = len(examples[0][0])
        if n_features == 0:
            raise ValidationError("feature vectors must be non-empty")
        for vector, _ in examples:
            if len(vector) != n_features:
                raise ValidationError("inconsistent feature vector lengths")
            if any(v not in (0, 1) for v in vector):
                raise ValidationError("features must be boolean (0/1)")

        n_pos = sum(1 for _, label in examples if label)
        n_neg = len(examples) - n_pos
        # Laplace smoothing on the class prior as well, so that a training
        # set that accidentally lost one class still yields usable estimates.
        self._p_pos = (n_pos + 1) / (len(examples) + 2)

        self._features = []
        for j in range(n_features):
            ones_pos = sum(v[j] for v, label in examples if label)
            ones_neg = sum(v[j] for v, label in examples if not label)
            self._features.append(
                _FeatureTable(
                    p_one_given_pos=(ones_pos + 1) / (n_pos + 2),
                    p_one_given_neg=(ones_neg + 1) / (n_neg + 2),
                )
            )
        self._fitted = True

    def posterior_positive(self, vector: Sequence[int]) -> float:
        """P(positive | vector), per formula (1)."""
        if not self._fitted:
            raise ValidationError("classifier has not been trained")
        if len(vector) != self.n_features:
            raise ValidationError(
                f"expected {self.n_features} features, got {len(vector)}"
            )
        like_pos = self._p_pos
        like_neg = 1.0 - self._p_pos
        for value, table in zip(vector, self._features):
            if value not in (0, 1):
                raise ValidationError("features must be boolean (0/1)")
            like_pos *= table.p_one_given_pos if value else 1 - table.p_one_given_pos
            like_neg *= table.p_one_given_neg if value else 1 - table.p_one_given_neg
        total = like_pos + like_neg
        return like_pos / total if total > 0 else 0.5

    def predict(self, vector: Sequence[int]) -> bool:
        """Class prediction: positive iff the posterior exceeds one half."""
        return self.posterior_positive(vector) > 0.5

    def conditional(self, feature: int, value: int, positive: bool) -> float:
        """P(f_feature = value | class) — exposed for tests and ablations."""
        table = self._features[feature]
        p_one = table.p_one_given_pos if positive else table.p_one_given_neg
        return p_one if value else 1.0 - p_one
