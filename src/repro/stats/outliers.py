"""Discordancy tests for outlier instance candidates (paper §2.2).

The paper removes outlier candidates with "discordancy tests [4], with a set
of test statistics, all assumed to be normally distributed. An instance
candidate is considered to be an outlier if its test statistic is at least
three standard deviations away from the average over all the candidates."

For numeric instance domains the test statistic is the value itself; for
string domains four statistics are used: word count, capital-letter count,
character length, and the percentage of numerical characters.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "DiscordancyResult",
    "discordancy_outliers",
    "string_test_statistics",
    "numeric_test_statistics",
    "parse_numeric",
    "STRING_STATISTIC_NAMES",
]

#: Names of the four type-specific statistics for string instances,
#: in the order :func:`string_test_statistics` returns them.
STRING_STATISTIC_NAMES: Tuple[str, ...] = (
    "word_count",
    "capital_letters",
    "char_length",
    "numeric_char_pct",
)

#: Digits either run plain ("1994") or group in proper thousands
#: ("15,200", "1,234,567") — anything else ("1,2,3", "12,34") is not a
#: number and must not slip through the numeric-type discordancy tests.
_NUMERIC_RE = re.compile(
    r"^\$?\s*-?(?:\d{1,3}(?:,\d{3})+|\d+)(?:\.\d+)?$"
)


def parse_numeric(value: str) -> float:
    """Parse a numeric or monetary string ("$15,200" -> 15200.0).

    Raises ``ValueError`` for non-numeric strings, including strings with
    malformed comma placement such as ``"1,2,3"`` or ``"12,34"``.
    """
    text = value.strip()
    if not _NUMERIC_RE.match(text):
        raise ValueError(f"not numeric: {value!r}")
    return float(text.lstrip("$").replace(",", ""))


def string_test_statistics(value: str) -> Tuple[float, float, float, float]:
    """The four string-type test statistics of paper §2.2.

    >>> string_test_statistics("Air Canada")
    (2.0, 2.0, 10.0, 0.0)
    """
    n_chars = len(value)
    n_words = float(len(value.split()))
    n_caps = float(sum(1 for c in value if c.isupper()))
    pct_digits = (
        sum(1 for c in value if c.isdigit()) / n_chars if n_chars else 0.0
    )
    return (n_words, n_caps, float(n_chars), pct_digits)


def numeric_test_statistics(value: str) -> Tuple[float]:
    """The numeric-type test statistic: the value itself."""
    return (parse_numeric(value),)


@dataclass(frozen=True)
class DiscordancyResult:
    """Outcome of discordancy testing over a candidate set."""

    inliers: Tuple[str, ...]
    outliers: Tuple[str, ...]
    #: statistic name -> (mean, std) actually used in the tests
    statistics: Dict[str, Tuple[float, float]]


def _mean_std(values: Sequence[float]) -> Tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(variance)


def discordancy_outliers(
    candidates: Sequence[str],
    numeric: bool,
    sigma: float = 3.0,
) -> DiscordancyResult:
    """Split ``candidates`` into inliers and outliers by the 3-sigma rule.

    A candidate is discordant if *any* of its test statistics deviates from
    the candidate-set mean by at least ``sigma`` standard deviations. With
    fewer than three candidates the test is vacuous (no outliers): sample
    moments from one or two points carry no discordancy information.
    """
    candidates = list(candidates)
    if len(candidates) < 3:
        return DiscordancyResult(tuple(candidates), (), {})

    stat_fn = numeric_test_statistics if numeric else string_test_statistics
    names = ("value",) if numeric else STRING_STATISTIC_NAMES
    vectors: List[Tuple[float, ...]] = [stat_fn(c) for c in candidates]

    stats: Dict[str, Tuple[float, float]] = {}
    flags = [False] * len(candidates)
    for j, name in enumerate(names):
        column = [v[j] for v in vectors]
        mean, std = _mean_std(column)
        stats[name] = (mean, std)
        if std == 0.0:
            continue  # all identical on this statistic: nothing discordant
        for i, v in enumerate(column):
            if abs(v - mean) >= sigma * std:
                flags[i] = True

    inliers = tuple(c for c, f in zip(candidates, flags) if not f)
    outliers = tuple(c for c, f in zip(candidates, flags) if f)
    return DiscordancyResult(inliers, outliers, stats)
