"""Statistical substrate: outlier tests, PMI, entropy, naive Bayes.

These are the numeric building blocks of WebIQ's verification phase
(paper §2.2) and the validation-based classifier (paper §3):

- :mod:`repro.stats.outliers` — discordancy tests [Barnett & Lewis] with
  type-specific test statistics and the 3-sigma rule;
- :mod:`repro.stats.pmi` — pointwise mutual information over search-engine
  hit counts;
- :mod:`repro.stats.entropy` — entropy and information gain for threshold
  estimation;
- :mod:`repro.stats.naive_bayes` — a binary naive Bayes classifier over
  boolean features with Laplacean smoothing.
"""

from repro.stats.entropy import binary_entropy, entropy, information_gain, best_threshold
from repro.stats.naive_bayes import BinaryNaiveBayes
from repro.stats.outliers import (
    DiscordancyResult,
    discordancy_outliers,
    numeric_test_statistics,
    string_test_statistics,
)
from repro.stats.pmi import pmi, mean_pmi

__all__ = [
    "binary_entropy",
    "entropy",
    "information_gain",
    "best_threshold",
    "BinaryNaiveBayes",
    "DiscordancyResult",
    "discordancy_outliers",
    "numeric_test_statistics",
    "string_test_statistics",
    "pmi",
    "mean_pmi",
]
