"""Entropy and information gain for threshold estimation (paper §3.2).

The validation-based classifier turns continuous validation scores into
boolean features by thresholding. Each threshold ``t_i`` is chosen on the
held-out split ``T1`` to maximise information gain::

    IG(t) = E(T1) - ( |T11|/|T1| * E(T11) + |T12|/|T1| * E(T12) )

where ``T11``/``T12`` are the examples below/above ``t`` and ``E`` is the
binary entropy of the class labels.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["entropy", "binary_entropy", "information_gain", "best_threshold"]


def binary_entropy(p: float) -> float:
    """Entropy (bits) of a Bernoulli distribution with success probability p.

    >>> binary_entropy(0.5)
    1.0
    >>> binary_entropy(0.0)
    0.0
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    q = 1.0 - p
    return -(p * math.log2(p) + q * math.log2(q))


def entropy(labels: Sequence[bool]) -> float:
    """Entropy of a boolean label multiset (empty set has zero entropy)."""
    n = len(labels)
    if n == 0:
        return 0.0
    return binary_entropy(sum(labels) / n)


def information_gain(
    examples: Sequence[Tuple[float, bool]], threshold: float
) -> float:
    """Information gain of splitting ``(score, label)`` pairs at ``threshold``.

    Examples with ``score < threshold`` fall in the low branch, the rest in
    the high branch, matching the paper's ``f_i < t_i`` / ``f_i >= t_i``.
    """
    if not examples:
        return 0.0
    low = [label for score, label in examples if score < threshold]
    high = [label for score, label in examples if score >= threshold]
    total = len(examples)
    before = entropy([label for _, label in examples])
    after = (len(low) / total) * entropy(low) + (len(high) / total) * entropy(high)
    return before - after


def best_threshold(examples: Sequence[Tuple[float, bool]]) -> float:
    """Choose the threshold with maximal information gain.

    Candidate thresholds are midpoints between consecutive distinct scores
    (the standard C4.5 candidate set — any other cut point splits the data
    identically to one of these). With no split possible (all scores equal,
    or fewer than two examples) the common score (or 0.0) is returned, which
    sends every example to the high branch.

    >>> best_threshold([(0.2, False), (0.4, False), (0.5, True), (0.8, True)])
    0.45
    """
    scores = sorted({score for score, _ in examples})
    if len(scores) < 2:
        return scores[0] if scores else 0.0
    candidates = [(a + b) / 2.0 for a, b in zip(scores, scores[1:])]
    # max() keeps the first maximiser, making ties deterministic (lowest cut).
    return max(candidates, key=lambda t: (information_gain(examples, t), -t))
