"""A probe-able Deep-Web source backed by a record database.

:class:`DeepWebSource` wraps a query interface together with (a) the
recognised value domain of each attribute and (b) a set of backing records.
Submitting a form produces a :class:`ResponsePage` whose *text* resembles a
result page — Attr-Deep never sees the source's internals, only the page, and
must decide success with the heuristics in :mod:`repro.deepweb.response`,
exactly as the paper's component analyses real response pages.

Semantics of a probe (mirroring real sources):

- a filled value that the source does not recognise as belonging to the
  attribute's domain yields a failure page ("no matches" or a validation
  error, chosen per source);
- recognised values yield a results page listing matching records with a
  count marker; if the value is valid but no backing record matches, the
  page is the "0 results" page — a *recognised-but-empty* outcome that makes
  the analysis heuristics genuinely heuristic;
- unfilled attributes default to the empty string and are ignored
  ("many interfaces permit partial queries"); sources may declare required
  attributes that fail empty submissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.deepweb.models import Attribute, AttributeKind, QueryInterface

__all__ = ["ResponsePage", "DeepWebSource", "ValueRecognizer"]

#: A recognizer decides whether a submitted string is a member of an
#: attribute's value domain (e.g. "is this a known city?").
ValueRecognizer = Callable[[str], bool]


@dataclass(frozen=True)
class ResponsePage:
    """What the source returns for a form submission: a page of text."""

    url: str
    text: str


@dataclass
class DeepWebSource:
    """One Deep-Web data source: an interface plus its hidden database."""

    interface: QueryInterface
    #: attribute name -> recognizer for its value domain
    recognizers: Dict[str, ValueRecognizer]
    #: the hidden records; each maps attribute name -> stored value
    records: List[Dict[str, str]] = field(default_factory=list)
    #: attributes that must be non-empty for any query to succeed
    required_attributes: Set[str] = field(default_factory=set)
    #: failure style: "no_results" or "validation_error" pages
    failure_style: str = "no_results"
    #: number of probes served (read by the pipeline for Figure 8 accounting)
    probe_count: int = 0
    #: memo of each SELECT attribute's lowercase value domain; pre-defined
    #: instances are immutable, so this never needs invalidation
    _select_domains: Dict[str, frozenset] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        known = set(self.interface.attribute_names)
        unknown = set(self.recognizers) - known
        if unknown:
            raise ValueError(f"recognizers for unknown attributes: {unknown}")
        if self.failure_style not in ("no_results", "validation_error"):
            raise ValueError(f"unknown failure style {self.failure_style!r}")

    # ------------------------------------------------------------------ API
    def submit(self, values: Mapping[str, str]) -> ResponsePage:
        """Submit the form with ``values`` (missing attributes default empty).

        Returns the rendered response page. Never raises for bad values —
        real sources answer bad input with pages, not exceptions; passing an
        attribute name not on the interface is a programming error and does
        raise ``KeyError``.
        """
        for name in values:
            self.interface.attribute(name)  # KeyError on unknown name
        # Counted only after name validation: a KeyError probe never reached
        # the source, so it must not skew Figure 8's probe accounting.
        self.probe_count += 1

        filled = {k: v.strip() for k, v in values.items() if v and v.strip()}

        for required in sorted(self.required_attributes):
            if required not in filled:
                return self._error_page(
                    f"Please fill in the required field "
                    f"'{self.interface.attribute(required).label}'."
                )

        for name, value in filled.items():
            attribute = self.interface.attribute(name)
            if not self._recognizes(attribute, value):
                return self._failure_page(attribute, value)

        matches = [r for r in self.records if self._record_matches(r, filled)]
        return self._results_page(matches)

    def recognizes(self, attribute_name: str, value: str) -> bool:
        """Direct domain-membership oracle — for tests and dataset checks."""
        return self._recognizes(self.interface.attribute(attribute_name), value)

    # ------------------------------------------------------------- internals
    def _recognizes(self, attribute: Attribute, value: str) -> bool:
        if attribute.kind is AttributeKind.SELECT:
            # Selection widgets physically cannot submit foreign values.
            domain = self._select_domains.get(attribute.name)
            if domain is None:
                domain = frozenset(v.lower() for v in attribute.instances)
                self._select_domains[attribute.name] = domain
            return value.lower() in domain
        recognizer = self.recognizers.get(attribute.name)
        if recognizer is None:
            return True  # unconstrained free-text field (e.g. keywords)
        return recognizer(value)

    @staticmethod
    def _record_matches(record: Dict[str, str], filled: Mapping[str, str]) -> bool:
        for name, value in filled.items():
            stored = record.get(name)
            if stored is not None and stored.lower() != value.lower():
                return False
        return True

    def _results_page(self, matches: Sequence[Dict[str, str]]) -> ResponsePage:
        url = f"deep://{self.interface.interface_id}/results"
        if not matches:
            return ResponsePage(
                url,
                "Search results\n"
                "Your search returned 0 results.\n"
                "No items matched your query. Please refine your search.",
            )
        lines = [
            "Search results",
            f"Found {len(matches)} matching records. Showing 1 - "
            f"{min(len(matches), 10)} of {len(matches)}.",
        ]
        for record in list(matches)[:10]:
            rendered = ", ".join(f"{k}: {v}" for k, v in sorted(record.items()))
            lines.append(f"  * {rendered}")
        lines.append("Next page >>")
        return ResponsePage(url, "\n".join(lines))

    def _failure_page(self, attribute: Attribute, value: str) -> ResponsePage:
        url = f"deep://{self.interface.interface_id}/error"
        if self.failure_style == "validation_error":
            return ResponsePage(
                url,
                f"Error: '{value}' is not a valid value for "
                f"{attribute.label}.\nPlease go back and try again.",
            )
        return ResponsePage(
            url,
            "Search results\n"
            "Sorry, no results were found matching your criteria.\n"
            "Please modify your search and try again.",
        )

    def _error_page(self, message: str) -> ResponsePage:
        return ResponsePage(
            f"deep://{self.interface.interface_id}/error",
            f"Error\n{message}",
        )
