"""Simulated Deep Web: query interfaces and probe-able data sources.

The paper's Attr-Deep component (§4) validates a borrowed instance ``x`` for
attribute ``A`` by submitting a probing query to ``A``'s source — with ``A``
set to ``x`` and every other attribute left at its default — and analysing
the response page ("often querying the source with attribute `from` set to
Chicago will yield some meaningful results, whereas querying with `from` set
to January will not").

This package supplies that substrate:

- :mod:`repro.deepweb.models` — attributes, query interfaces, ground truth;
- :mod:`repro.deepweb.source` — :class:`DeepWebSource`, a record database
  behind a form-submission API that renders success/failure response pages
  (including "no results" pages, validation-error pages and count markers);
- :mod:`repro.deepweb.response` — the response-analysis heuristics
  (a variant of those in Raghavan & Garcia-Molina's hidden-web crawler,
  which the paper cites for this purpose).
"""

from repro.deepweb.models import Attribute, AttributeKind, QueryInterface, attr_key
from repro.deepweb.response import ResponseAnalysis, analyze_response
from repro.deepweb.source import DeepWebSource, ResponsePage

__all__ = [
    "Attribute",
    "AttributeKind",
    "QueryInterface",
    "attr_key",
    "DeepWebSource",
    "ResponsePage",
    "ResponseAnalysis",
    "analyze_response",
]
