"""Query-interface data model.

A Deep-Web *query interface* (used interchangeably with "schema" in the
paper) is an ordered list of attributes, each with a human-readable label
and, for selection widgets, a list of pre-defined instances. Free-text
inputs have no instances — these are the attributes whose pervasive lack of
data motivates WebIQ.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["AttributeKind", "Attribute", "QueryInterface", "attr_key"]


class AttributeKind(enum.Enum):
    """Widget kind of an interface attribute."""

    #: free-text input — accepts arbitrary values, carries no instances
    TEXT = "text"
    #: selection list — only its pre-defined values can be submitted
    SELECT = "select"


@dataclass
class Attribute:
    """One attribute (form field) of a query interface.

    ``instances`` are the pre-defined values visible on the interface
    (non-empty only for SELECT attributes). ``acquired`` holds instances
    added later by WebIQ; the matcher sees the union via
    :meth:`all_instances`.
    """

    name: str
    label: str
    kind: AttributeKind = AttributeKind.TEXT
    instances: Tuple[str, ...] = ()
    acquired: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind is AttributeKind.TEXT and self.instances:
            raise ValueError(
                f"text attribute {self.name!r} cannot have pre-defined instances"
            )
        self.instances = tuple(self.instances)

    @property
    def has_instances(self) -> bool:
        """Does the interface itself expose instances for this attribute?"""
        return bool(self.instances)

    def all_instances(self) -> List[str]:
        """Pre-defined plus acquired instances, duplicates removed in order."""
        seen = set()
        merged = []
        for value in list(self.instances) + self.acquired:
            low = value.lower()
            if low not in seen:
                seen.add(low)
                merged.append(value)
        return merged

    def clear_acquired(self) -> None:
        self.acquired.clear()


@dataclass
class QueryInterface:
    """A source's query interface (a "schema" in the paper's terminology)."""

    interface_id: str
    domain: str          # e.g. "airfare" — the name of the domain
    object_name: str     # e.g. "flight" — the real-world entity queried
    attributes: List[Attribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            raise ValueError(
                f"duplicate attribute names on interface {self.interface_id}"
            )

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(f"no attribute {name!r} on interface {self.interface_id}")

    @property
    def attribute_names(self) -> List[str]:
        return [a.name for a in self.attributes]

    def attributes_without_instances(self) -> List[Attribute]:
        return [a for a in self.attributes if not a.has_instances]

    def clear_acquired(self) -> None:
        for attr in self.attributes:
            attr.clear_acquired()


def attr_key(interface: QueryInterface, attribute: Attribute) -> Tuple[str, str]:
    """Globally unique key of an attribute: (interface_id, attribute name)."""
    return (interface.interface_id, attribute.name)
