"""HTML form rendering and interface extraction.

The paper takes query interfaces as given (the ICQ dataset ships them
pre-extracted), but any deployment meets them as HTML forms first. This
module closes that gap in both directions:

- :func:`render_interface` — emit a query interface as a plain HTML form
  (labels, text inputs, selects with options), useful for inspection and
  for generating test fixtures;
- :func:`parse_interface` — extract a :class:`QueryInterface` from form
  HTML: pair each control with its label (explicit ``<label for=...>``,
  wrapping ``<label>``, or nearest preceding text), read SELECT options as
  pre-defined instances, and skip submit/hidden controls.

The parser is a small regex-driven scanner, not a browser: it handles the
well-formed-ish markup that search forms of the paper's era actually used
(and whatever :func:`render_interface` emits round-trips losslessly).
"""

from __future__ import annotations

import html as html_lib
import re
from typing import Dict, List, Optional, Tuple

from repro.deepweb.models import Attribute, AttributeKind, QueryInterface

__all__ = ["render_interface", "parse_interface"]


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def render_interface(interface: QueryInterface) -> str:
    """Render ``interface`` as an HTML search form."""
    lines = [
        f'<form id="{_escape(interface.interface_id)}" method="get" '
        f'action="/search">',
        f"  <h2>{_escape(interface.domain)} {_escape(interface.object_name)} "
        f"search</h2>",
    ]
    for attribute in interface.attributes:
        name = _escape(attribute.name)
        label = _escape(attribute.label)
        lines.append(f'  <label for="{name}">{label}</label>')
        if attribute.kind is AttributeKind.SELECT:
            lines.append(f'  <select name="{name}" id="{name}">')
            lines.append('    <option value=""></option>')
            for value in attribute.instances:
                escaped = _escape(value)
                lines.append(f'    <option value="{escaped}">{escaped}</option>')
            lines.append("  </select>")
        else:
            lines.append(f'  <input type="text" name="{name}" id="{name}">')
    lines.append('  <input type="submit" value="Search">')
    lines.append("</form>")
    return "\n".join(lines)


def _escape(text: str) -> str:
    return html_lib.escape(text, quote=True)


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------

_TAG_RE = re.compile(
    r"<(?P<close>/?)(?P<name>label|input|select|option|form)"
    r"(?P<attrs>[^>]*)>",
    re.IGNORECASE,
)
_ATTR_RE = re.compile(
    r"""(?P<key>[a-zA-Z-]+)\s*=\s*(?:"(?P<dq>[^"]*)"|'(?P<sq>[^']*)'"""
    r"""|(?P<bare>[^\s>]+))""",
)
_SKIPPED_INPUT_TYPES = frozenset({"submit", "hidden", "button", "image",
                                  "reset"})


def parse_interface(
    html: str,
    interface_id: str = "parsed",
    domain: str = "unknown",
    object_name: str = "object",
) -> QueryInterface:
    """Extract a :class:`QueryInterface` from form HTML.

    Control-label pairing, in order of preference: a ``<label for="...">``
    matching the control's id; a ``<label>`` element whose text immediately
    precedes the control; otherwise the nearest non-empty text run before
    the control. Radio/checkbox groups are treated as SELECTs of their
    values; submit/hidden/button inputs are skipped.
    """
    labels_by_for: Dict[str, str] = {}
    controls: List[Tuple[int, str, Dict[str, str], Optional[List[str]]]] = []

    open_label_for: Optional[str] = None
    label_text_start: Optional[int] = None
    pending_select: Optional[Tuple[int, Dict[str, str], List[str]]] = None
    pending_option_value: Optional[str] = None
    radio_groups: Dict[str, Tuple[int, List[str]]] = {}

    for match in _TAG_RE.finditer(html):
        name = match.group("name").lower()
        closing = bool(match.group("close"))
        attrs = _parse_attrs(match.group("attrs"))

        if name == "label" and not closing:
            open_label_for = attrs.get("for")
            label_text_start = match.end()
        elif name == "label" and closing:
            if label_text_start is not None:
                text = _clean_text(html[label_text_start:match.start()])
                key = open_label_for if open_label_for else f"@{match.start()}"
                if text:
                    labels_by_for[key] = text
            open_label_for = None
            label_text_start = None
        elif name == "select" and not closing:
            pending_select = (match.start(), attrs, [])
        elif name == "option" and not closing:
            pending_option_value = attrs.get("value")
            if pending_select is not None and pending_option_value:
                pending_select[2].append(html_lib.unescape(pending_option_value))
        elif name == "select" and closing:
            if pending_select is not None:
                position, attrs_sel, options = pending_select
                controls.append((position, "select", attrs_sel, options))
                pending_select = None
        elif name == "input" and not closing:
            input_type = attrs.get("type", "text").lower()
            if input_type in _SKIPPED_INPUT_TYPES:
                continue
            if input_type in ("radio", "checkbox"):
                group = attrs.get("name", "")
                value = attrs.get("value", "")
                if group:
                    position, values = radio_groups.setdefault(
                        group, (match.start(), []))
                    if value:
                        values.append(html_lib.unescape(value))
                continue
            controls.append((match.start(), "text", attrs, None))

    for group, (position, values) in radio_groups.items():
        controls.append((position, "select", {"name": group, "id": group},
                         values))
    controls.sort(key=lambda c: c[0])

    attributes: List[Attribute] = []
    used_names: Dict[str, int] = {}
    for position, kind, attrs, options in controls:
        name = attrs.get("name") or attrs.get("id") or f"field{position}"
        if name in used_names:  # de-duplicate (malformed forms reuse names)
            used_names[name] += 1
            name = f"{name}_{used_names[name]}"
        else:
            used_names[name] = 0
        label = _find_label(html, position, attrs, labels_by_for)
        if kind == "select":
            attributes.append(Attribute(
                name=name, label=label, kind=AttributeKind.SELECT,
                instances=tuple(options or ()),
            ))
        else:
            attributes.append(Attribute(name=name, label=label))

    return QueryInterface(
        interface_id=interface_id,
        domain=domain,
        object_name=object_name,
        attributes=attributes,
    )


def _parse_attrs(raw: str) -> Dict[str, str]:
    attrs = {}
    for match in _ATTR_RE.finditer(raw):
        value = match.group("dq") or match.group("sq") or match.group("bare")
        attrs[match.group("key").lower()] = value or ""
    return attrs


def _clean_text(text: str) -> str:
    text = re.sub(r"<[^>]*>", " ", text)
    return " ".join(html_lib.unescape(text).split()).rstrip(": ").strip()


def _find_label(html: str, position: int, attrs: Dict[str, str],
                labels_by_for: Dict[str, str]) -> str:
    control_id = attrs.get("id") or attrs.get("name")
    if control_id and control_id in labels_by_for:
        return labels_by_for[control_id]
    # Fall back to the nearest non-empty text run before the control.
    prefix = html[:position]
    chunks = re.split(r"<[^>]*>", prefix)
    for chunk in reversed(chunks):
        text = " ".join(html_lib.unescape(chunk).split()).rstrip(": ").strip()
        if text:
            return text
    return control_id or "unknown"
