"""Response-page analysis heuristics (paper §4, "Analyze the Response").

The paper "applies several heuristics to analyze the response page from the
source and determine if the submission was successful", citing the
hidden-web crawler of Raghavan & Garcia-Molina for the technique. Our
variant combines three signals over the page text:

1. explicit failure markers ("no results", "not a valid", "error", ...);
2. explicit success markers with a positive count ("found 23 matching
   records", "showing 1 - 10 of 23");
3. structural evidence of result rows (bullet lines with "key: value"
   pairs).

A page is deemed successful only when success evidence is present and
failure markers are absent — conservative, because Attr-Deep's ≥1/3 rule
amplifies any false positives into whole borrowed instance sets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

__all__ = ["ResponseAnalysis", "analyze_response"]

_FAILURE_MARKERS = (
    "no results",
    "0 results",
    "zero results",
    "no items matched",
    "no matches",
    "no records",
    "not a valid",
    "invalid",
    "not found",
    "try again",
    "error",
    "please fill in",
    "please enter",
)

_COUNT_PATTERNS = (
    re.compile(r"\bfound\s+(\d[\d,]*)\s+match", re.IGNORECASE),
    re.compile(r"\b(\d[\d,]*)\s+(?:results|matches|records|listings)\b",
               re.IGNORECASE),
    re.compile(r"\bshowing\s+\d+\s*-\s*\d+\s+of\s+(\d[\d,]*)", re.IGNORECASE),
)

_RESULT_ROW_RE = re.compile(r"^\s*[*\-•]\s+\S+.*:\s*\S+", re.MULTILINE)


@dataclass(frozen=True)
class ResponseAnalysis:
    """Verdict for one response page."""

    success: bool
    result_count: Optional[int]
    reason: str


def analyze_response(text: str) -> ResponseAnalysis:
    """Decide whether a response page indicates a successful query.

    >>> analyze_response("Found 23 matching records.").success
    True
    >>> analyze_response("Sorry, no results were found.").success
    False
    """
    low = text.lower()

    count = _extract_count(text)
    if count == 0:
        return ResponseAnalysis(False, 0, "zero result count")

    for marker in _FAILURE_MARKERS:
        if marker in low:
            return ResponseAnalysis(False, count, f"failure marker {marker!r}")

    if count is not None and count > 0:
        return ResponseAnalysis(True, count, "positive result count")

    rows = _RESULT_ROW_RE.findall(text)
    if rows:
        return ResponseAnalysis(True, len(rows), "result rows present")

    return ResponseAnalysis(False, None, "no success evidence")


def _extract_count(text: str) -> Optional[int]:
    for pattern in _COUNT_PATTERNS:
        match = pattern.search(text)
        if match:
            return int(match.group(1).replace(",", ""))
    return None
