"""Crash-safe checkpointing: run journal, preemption, bit-identical resume.

WebIQ's acquisition phase is the expensive part of a run — and before
this package, a process death mid-run lost all of it. The pieces:

- :mod:`repro.checkpoint.journal` — :class:`RunJournal`, a write-ahead
  journal appending one schema-versioned, CRC-guarded, atomically-written
  record per completed unit of work;
- :mod:`repro.checkpoint.session` — :class:`CheckpointSession`, which
  records fresh units and replays journaled ones without touching the
  search engine or any Deep-Web source, plus :class:`CheckpointConfig`
  (attach to ``WebIQConfig.checkpoint``) and the in-memory
  :class:`CheckpointReport`;
- :class:`repro.resilience.KillSwitch` (a.k.a. ``PreemptionPoint``) —
  deterministic process death at any chosen journal boundary, so every
  crash point is testable.

The contract: *kill at boundary k, then resume* produces a run payload
byte-identical to the uninterrupted run, with zero transport calls
re-spent on replayed units. ``WebIQConfig(checkpoint=None)`` (the
default) leaves the pipeline bit-identical to pre-checkpoint behaviour.
"""

from repro.checkpoint.journal import (
    JOURNAL_FORMAT,
    QUARANTINE_DIRNAME,
    QuarantinedRecord,
    RunJournal,
    SalvageReport,
    record_crc,
)
from repro.checkpoint.session import (
    CheckpointConfig,
    CheckpointReport,
    CheckpointSession,
    ReplayedUnit,
    open_session,
)

__all__ = [
    "JOURNAL_FORMAT",
    "QUARANTINE_DIRNAME",
    "QuarantinedRecord",
    "RunJournal",
    "SalvageReport",
    "record_crc",
    "CheckpointConfig",
    "CheckpointReport",
    "CheckpointSession",
    "ReplayedUnit",
    "open_session",
]
