"""The write-ahead run journal: one CRC-guarded record per unit of work.

A journal is a directory::

    <dir>/meta.json            # run identity (domain, seed, config coords)
    <dir>/record-000000.json   # unit 0
    <dir>/record-000001.json   # unit 1
    ...

Every file carries the same envelope::

    {"format": 1, "crc": <crc32 of canonical body JSON>, "body": {...}}

and is written via :func:`repro.util.atomicio.atomic_write_json` — temp
file, fsync, ``os.replace`` — so a crash between any two appends leaves a
journal that is a *complete prefix* of the run: every record present is
whole and verified, and no partial record can exist. That prefix property
is what makes resume sound; the loader therefore enforces it militantly:

- an unparseable or torn record file is :class:`JournalCorruptionError`
  (naming the record index);
- a CRC mismatch, an index that disagrees with the filename, a gap in the
  sequence, or two records claiming the same unit of work are all
  :class:`JournalCorruptionError`;
- a record (or the meta file) written by a *newer* schema is
  :class:`JournalFormatError` — old readers must refuse loudly, not
  misread silently.

The enforcement has an escape hatch for supervised recovery:
:meth:`RunJournal.salvage` truncates a damaged journal to its longest
valid prefix instead of refusing it — the damaged suffix is moved (never
deleted) into ``<dir>/quarantine/`` and described by a typed
:class:`SalvageReport`, after which :meth:`RunJournal.open` accepts the
journal again and resume re-runs the trimmed units fresh. Only the meta
file is beyond salvage: without a verified run identity the journal
cannot say whose prefix it is.

Record bodies are opaque to this module; their content is defined by
:mod:`repro.checkpoint.session`. The ``unit`` key (a
``[phase, interface_id, attribute]`` triple) is the only field the loader
interprets, for duplicate detection.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.util.atomicio import _fsync_directory, atomic_write_json
from repro.util.errors import (
    JournalCorruptionError,
    JournalFormatError,
    JournalMismatchError,
)

__all__ = [
    "JOURNAL_FORMAT",
    "QUARANTINE_DIRNAME",
    "QuarantinedRecord",
    "RunJournal",
    "SalvageReport",
    "record_crc",
]

#: Schema version of journal envelopes (records and meta alike).
JOURNAL_FORMAT = 1

META_FILENAME = "meta.json"
#: Subdirectory (inside the journal) that salvage moves damaged records to.
QUARANTINE_DIRNAME = "quarantine"
_RECORD_PATTERN = re.compile(r"^record-(\d{6})\.json$")


@dataclass(frozen=True)
class QuarantinedRecord:
    """One record file moved aside by :meth:`RunJournal.salvage`."""

    filename: str
    reason: str


@dataclass(frozen=True)
class SalvageReport:
    """What :meth:`RunJournal.salvage` kept, and what it moved aside."""

    directory: str
    #: records in the surviving valid prefix
    kept_records: int
    #: damaged/unreachable records moved to ``quarantine/``, in index order
    quarantined: Tuple[QuarantinedRecord, ...] = ()

    @property
    def quarantined_records(self) -> int:
        return len(self.quarantined)

    @property
    def salvaged_anything(self) -> bool:
        """True when salvage actually had to trim the journal."""
        return bool(self.quarantined)

    def summary(self) -> str:
        if not self.quarantined:
            return (
                f"journal intact: {self.kept_records} records, "
                "nothing to salvage"
            )
        first = self.quarantined[0]
        return (
            f"salvaged journal to {self.kept_records}-record prefix; "
            f"quarantined {self.quarantined_records} "
            f"record{'s' if self.quarantined_records != 1 else ''} "
            f"(first: {first.filename}: {first.reason})"
        )


def _canonical(body: Any) -> str:
    """The canonical JSON the CRC is computed over (key-sorted, compact)."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def record_crc(body: Any) -> int:
    """CRC32 guard over a record body's canonical JSON."""
    return zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF


def _record_filename(index: int) -> str:
    return f"record-{index:06d}.json"


def _scan_valid_prefix(
    directory: str,
) -> Tuple[List[Dict[str, Any]], List[Tuple[int, str]], Optional[str]]:
    """Walk the record chain, stopping (not raising) at the first damage.

    Returns ``(prefix_bodies, ordered_files, reason)`` where
    ``ordered_files`` is every on-disk record as ``(index, filename)`` in
    index order and ``reason`` describes why the walk stopped (``None``
    when the whole chain is valid). The prefix property means everything
    past the first damaged record is unusable regardless of its own
    integrity. Shared by :meth:`RunJournal.salvage` (which moves the
    damaged suffix aside) and the supervisor's spend accounting (which
    must count a torn journal's surviving prefix without mutating it).

    Raises :class:`JournalMismatchError` for a missing journal/meta and
    :class:`JournalFormatError` for newer-format files — neither is
    damage a prefix walk may paper over.
    """
    if not os.path.isdir(directory):
        raise JournalMismatchError(
            f"no journal at {directory} (not a directory)"
        )
    meta_path = os.path.join(directory, META_FILENAME)
    if not os.path.exists(meta_path):
        raise JournalMismatchError(
            f"no journal at {directory} (missing {META_FILENAME})"
        )
    _load_envelope(meta_path, "journal meta")

    by_index: Dict[int, str] = {}
    for name in sorted(os.listdir(directory)):
        match = _RECORD_PATTERN.match(name)
        if match:
            by_index[int(match.group(1))] = name
    ordered = [(index, by_index[index]) for index in sorted(by_index)]

    bodies: List[Dict[str, Any]] = []
    reason: Optional[str] = None
    seen_units: Dict[Tuple[str, ...], int] = {}
    for position, (index, name) in enumerate(ordered):
        if index != position:
            reason = f"sequence gap (expected record {position} next)"
            break
        try:
            body = _load_envelope(
                os.path.join(directory, name), f"record {index}"
            )
        except JournalFormatError:
            raise
        except JournalCorruptionError as exc:
            reason = str(exc)
            break
        unit = tuple(body.get("unit", ()))
        if body.get("index") != index:
            reason = f"body claims index {body.get('index')!r}"
        elif not unit:
            reason = "missing unit key"
        elif unit in seen_units:
            reason = (
                f"duplicate record for unit {list(unit)} "
                f"(first at record {seen_units[unit]})"
            )
        if reason is not None:
            break
        seen_units[unit] = index
        bodies.append(body)
    return bodies, ordered, reason


def _load_envelope(path: str, what: str) -> Dict[str, Any]:
    """Read and verify one envelope file (meta or record)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise JournalCorruptionError(
            f"{what}: torn or unparseable ({exc})"
        ) from exc
    if not isinstance(payload, dict) or "body" not in payload:
        raise JournalCorruptionError(f"{what}: envelope missing body")
    version = payload.get("format")
    if not isinstance(version, int) or version < 1:
        raise JournalCorruptionError(
            f"{what}: unrecognised format {version!r}"
        )
    if version > JOURNAL_FORMAT:
        raise JournalFormatError(
            f"{what}: format {version} is newer than this reader "
            f"(knows up to {JOURNAL_FORMAT})"
        )
    if payload.get("crc") != record_crc(payload["body"]):
        raise JournalCorruptionError(f"{what}: CRC mismatch")
    return payload["body"]


class RunJournal:
    """An append-only, crash-safe journal of completed units of work."""

    def __init__(self, directory: str, meta: Dict[str, Any],
                 records: Optional[List[Dict[str, Any]]] = None) -> None:
        self.directory = directory
        self.meta = meta
        self.records: List[Dict[str, Any]] = records if records is not None \
            else []

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, directory: str, meta: Dict[str, Any]) -> "RunJournal":
        """Start a fresh journal in ``directory`` (wiping any stale one)."""
        os.makedirs(directory, exist_ok=True)
        for name in os.listdir(directory):
            if _RECORD_PATTERN.match(name) or name == META_FILENAME:
                os.unlink(os.path.join(directory, name))
        quarantine_dir = os.path.join(directory, QUARANTINE_DIRNAME)
        if os.path.isdir(quarantine_dir):
            for name in os.listdir(quarantine_dir):
                os.unlink(os.path.join(quarantine_dir, name))
        atomic_write_json(
            os.path.join(directory, META_FILENAME),
            {"format": JOURNAL_FORMAT, "crc": record_crc(meta), "body": meta},
        )
        return cls(directory, meta)

    @classmethod
    def open(cls, directory: str) -> "RunJournal":
        """Load an existing journal, verifying every guarantee.

        The records come back in index order; any violation of the
        complete-prefix property raises a typed :class:`JournalError`
        subclass naming the offending record.
        """
        if not os.path.isdir(directory):
            raise JournalMismatchError(
                f"no journal at {directory} (not a directory)"
            )
        meta_path = os.path.join(directory, META_FILENAME)
        if not os.path.exists(meta_path):
            raise JournalMismatchError(
                f"no journal at {directory} (missing {META_FILENAME})"
            )
        meta = _load_envelope(meta_path, "journal meta")

        by_index: Dict[int, str] = {}
        for name in sorted(os.listdir(directory)):
            match = _RECORD_PATTERN.match(name)
            if match:
                by_index[int(match.group(1))] = os.path.join(directory, name)
        records: List[Dict[str, Any]] = []
        seen_units: Dict[Tuple[str, ...], int] = {}
        for position, index in enumerate(sorted(by_index)):
            if index != position:
                raise JournalCorruptionError(
                    f"record {index}: sequence gap (expected record "
                    f"{position} next)"
                )
            body = _load_envelope(by_index[index], f"record {index}")
            if body.get("index") != index:
                raise JournalCorruptionError(
                    f"record {index}: body claims index "
                    f"{body.get('index')!r}"
                )
            unit = tuple(body.get("unit", ()))
            if not unit:
                raise JournalCorruptionError(
                    f"record {index}: missing unit key"
                )
            if unit in seen_units:
                raise JournalCorruptionError(
                    f"record {index}: duplicate record for unit "
                    f"{list(unit)} (first at record {seen_units[unit]})"
                )
            seen_units[unit] = index
            records.append(body)
        return cls(directory, meta, records)

    @classmethod
    def salvage(cls, directory: str) -> SalvageReport:
        """Truncate a damaged journal to its longest valid prefix.

        Walks the record chain exactly as :meth:`open` does, but where
        ``open`` raises, ``salvage`` *stops*: the first record that is
        torn, CRC-mismatched, out of sequence, mis-indexed or duplicated
        marks the end of the salvageable prefix, and every record file
        from that point on is moved into ``<dir>/quarantine/`` (moved,
        not deleted — the damage stays inspectable). After salvage,
        :meth:`open` accepts the journal and resume re-runs the trimmed
        units fresh.

        Two damages remain fatal: a torn/missing ``meta.json`` (the
        journal cannot prove whose prefix it is —
        :class:`JournalCorruptionError` / :class:`JournalMismatchError`),
        and a record written by a newer schema
        (:class:`JournalFormatError` — a new-format journal must not be
        truncated by an old reader that cannot understand it).
        """
        bodies, ordered, reason = _scan_valid_prefix(directory)
        kept = len(bodies)

        if reason is None:
            return SalvageReport(directory=directory, kept_records=kept)

        quarantine_dir = os.path.join(directory, QUARANTINE_DIRNAME)
        os.makedirs(quarantine_dir, exist_ok=True)
        quarantined: List[QuarantinedRecord] = []
        for index, name in ordered[kept:]:
            record_reason = reason if not quarantined else (
                f"follows truncation at record {kept}"
            )
            destination = os.path.join(quarantine_dir, name)
            suffix = 0
            while os.path.exists(destination):
                suffix += 1
                destination = os.path.join(
                    quarantine_dir, f"{name}.{suffix}"
                )
            os.replace(os.path.join(directory, name), destination)
            quarantined.append(QuarantinedRecord(name, record_reason))
        _fsync_directory(quarantine_dir)
        _fsync_directory(directory)
        return SalvageReport(
            directory=directory,
            kept_records=kept,
            quarantined=tuple(quarantined),
        )

    # ---------------------------------------------------------------- append
    def append(self, body: Dict[str, Any]) -> int:
        """Durably append one record; returns its boundary index.

        The body is stamped with its index, CRC-sealed, and atomically
        written — when this method returns, the record *is* on disk and a
        crash at the very next instruction loses nothing.
        """
        index = len(self.records)
        body = dict(body, index=index)
        atomic_write_json(
            os.path.join(self.directory, _record_filename(index)),
            {
                "format": JOURNAL_FORMAT,
                "crc": record_crc(body),
                "body": body,
            },
        )
        self.records.append(body)
        return index

    def __len__(self) -> int:
        return len(self.records)
