"""The write-ahead run journal: one CRC-guarded record per unit of work.

A journal is a directory::

    <dir>/meta.json            # run identity (domain, seed, config coords)
    <dir>/record-000000.json   # unit 0
    <dir>/record-000001.json   # unit 1
    ...

Every file carries the same envelope::

    {"format": 1, "crc": <crc32 of canonical body JSON>, "body": {...}}

and is written via :func:`repro.util.atomicio.atomic_write_json` — temp
file, fsync, ``os.replace`` — so a crash between any two appends leaves a
journal that is a *complete prefix* of the run: every record present is
whole and verified, and no partial record can exist. That prefix property
is what makes resume sound; the loader therefore enforces it militantly:

- an unparseable or torn record file is :class:`JournalCorruptionError`
  (naming the record index);
- a CRC mismatch, an index that disagrees with the filename, a gap in the
  sequence, or two records claiming the same unit of work are all
  :class:`JournalCorruptionError`;
- a record (or the meta file) written by a *newer* schema is
  :class:`JournalFormatError` — old readers must refuse loudly, not
  misread silently.

Record bodies are opaque to this module; their content is defined by
:mod:`repro.checkpoint.session`. The ``unit`` key (a
``[phase, interface_id, attribute]`` triple) is the only field the loader
interprets, for duplicate detection.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.util.atomicio import atomic_write_json
from repro.util.errors import (
    JournalCorruptionError,
    JournalFormatError,
    JournalMismatchError,
)

__all__ = ["JOURNAL_FORMAT", "RunJournal", "record_crc"]

#: Schema version of journal envelopes (records and meta alike).
JOURNAL_FORMAT = 1

META_FILENAME = "meta.json"
_RECORD_PATTERN = re.compile(r"^record-(\d{6})\.json$")


def _canonical(body: Any) -> str:
    """The canonical JSON the CRC is computed over (key-sorted, compact)."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def record_crc(body: Any) -> int:
    """CRC32 guard over a record body's canonical JSON."""
    return zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF


def _record_filename(index: int) -> str:
    return f"record-{index:06d}.json"


def _load_envelope(path: str, what: str) -> Dict[str, Any]:
    """Read and verify one envelope file (meta or record)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise JournalCorruptionError(
            f"{what}: torn or unparseable ({exc})"
        ) from exc
    if not isinstance(payload, dict) or "body" not in payload:
        raise JournalCorruptionError(f"{what}: envelope missing body")
    version = payload.get("format")
    if not isinstance(version, int) or version < 1:
        raise JournalCorruptionError(
            f"{what}: unrecognised format {version!r}"
        )
    if version > JOURNAL_FORMAT:
        raise JournalFormatError(
            f"{what}: format {version} is newer than this reader "
            f"(knows up to {JOURNAL_FORMAT})"
        )
    if payload.get("crc") != record_crc(payload["body"]):
        raise JournalCorruptionError(f"{what}: CRC mismatch")
    return payload["body"]


class RunJournal:
    """An append-only, crash-safe journal of completed units of work."""

    def __init__(self, directory: str, meta: Dict[str, Any],
                 records: Optional[List[Dict[str, Any]]] = None) -> None:
        self.directory = directory
        self.meta = meta
        self.records: List[Dict[str, Any]] = records if records is not None \
            else []

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, directory: str, meta: Dict[str, Any]) -> "RunJournal":
        """Start a fresh journal in ``directory`` (wiping any stale one)."""
        os.makedirs(directory, exist_ok=True)
        for name in os.listdir(directory):
            if _RECORD_PATTERN.match(name) or name == META_FILENAME:
                os.unlink(os.path.join(directory, name))
        atomic_write_json(
            os.path.join(directory, META_FILENAME),
            {"format": JOURNAL_FORMAT, "crc": record_crc(meta), "body": meta},
        )
        return cls(directory, meta)

    @classmethod
    def open(cls, directory: str) -> "RunJournal":
        """Load an existing journal, verifying every guarantee.

        The records come back in index order; any violation of the
        complete-prefix property raises a typed :class:`JournalError`
        subclass naming the offending record.
        """
        if not os.path.isdir(directory):
            raise JournalMismatchError(
                f"no journal at {directory} (not a directory)"
            )
        meta_path = os.path.join(directory, META_FILENAME)
        if not os.path.exists(meta_path):
            raise JournalMismatchError(
                f"no journal at {directory} (missing {META_FILENAME})"
            )
        meta = _load_envelope(meta_path, "journal meta")

        by_index: Dict[int, str] = {}
        for name in sorted(os.listdir(directory)):
            match = _RECORD_PATTERN.match(name)
            if match:
                by_index[int(match.group(1))] = os.path.join(directory, name)
        records: List[Dict[str, Any]] = []
        seen_units: Dict[Tuple[str, ...], int] = {}
        for position, index in enumerate(sorted(by_index)):
            if index != position:
                raise JournalCorruptionError(
                    f"record {index}: sequence gap (expected record "
                    f"{position} next)"
                )
            body = _load_envelope(by_index[index], f"record {index}")
            if body.get("index") != index:
                raise JournalCorruptionError(
                    f"record {index}: body claims index "
                    f"{body.get('index')!r}"
                )
            unit = tuple(body.get("unit", ()))
            if not unit:
                raise JournalCorruptionError(
                    f"record {index}: missing unit key"
                )
            if unit in seen_units:
                raise JournalCorruptionError(
                    f"record {index}: duplicate record for unit "
                    f"{list(unit)} (first at record {seen_units[unit]})"
                )
            seen_units[unit] = index
            records.append(body)
        return cls(directory, meta, records)

    # ---------------------------------------------------------------- append
    def append(self, body: Dict[str, Any]) -> int:
        """Durably append one record; returns its boundary index.

        The body is stamped with its index, CRC-sealed, and atomically
        written — when this method returns, the record *is* on disk and a
        crash at the very next instruction loses nothing.
        """
        index = len(self.records)
        body = dict(body, index=index)
        atomic_write_json(
            os.path.join(self.directory, _record_filename(index)),
            {
                "format": JOURNAL_FORMAT,
                "crc": record_crc(body),
                "body": body,
            },
        )
        self.records.append(body)
        return index

    def __len__(self) -> int:
        return len(self.records)
