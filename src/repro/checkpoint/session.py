"""Checkpoint sessions: record units of work, replay them bit-identically.

One :class:`CheckpointSession` accompanies one pipeline run. The
acquisition loop brackets every unit of work — one ``(phase, interface,
attribute)`` iteration — with :meth:`~CheckpointSession.replay_unit` /
:meth:`~CheckpointSession.begin_unit` / :meth:`~CheckpointSession.commit_unit`:

- **Fresh unit** (journal exhausted): ``begin_unit`` marks every counter
  and memo store, the real work runs, ``commit_unit`` captures the deltas
  — instances added, record fields, engine/probe round trips, validation
  and probe-memo growth, cache content ops — plus a snapshot of the
  resilience/cache counters, and durably appends the record. The armed
  :class:`~repro.resilience.KillSwitch`, if any, fires *after* the append:
  the journal boundary is exactly where the process may die.
- **Replayed unit** (journal has a record left): the recorded effects are
  re-applied without touching the search engine or any Deep-Web source —
  zero transport calls, by construction. When the *last* record replays,
  the killed process's substrate state (degradation report, budgets,
  breakers, backoff and fault RNG positions, cache stats) is restored in
  one shot, so the first fresh unit continues exactly where the killed
  run stopped.

**Why resumed runs are byte-identical.** Every source of downstream
divergence is either a pure function of recorded inputs (discovery,
validation, clustering), a journaled delta (acquired values, memo
stores, cache content), or a restored stream position (backoff jitter,
per-source fault fates — engine fates are content-keyed and need no
position at all). The simulated clock is *recomputed*, not restored:
phase charges accumulate per-unit deltas, replayed ones from the journal
and fresh ones from live counters, landing on the same totals as an
uninterrupted run. See DESIGN.md §12 for the full argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint.journal import RunJournal
from repro.perf.cache import CachingSearchEngine, ValidationCache
from repro.resilience.client import ResilientClient
from repro.resilience.faults import FlakyDeepWebSource, KillSwitch
from repro.surfaceweb.engine import SearchResult
from repro.util.errors import (
    DeadlineExceededError,
    JournalCorruptionError,
    JournalMismatchError,
)

__all__ = [
    "CheckpointConfig",
    "CheckpointReport",
    "CheckpointSession",
    "ReplayedUnit",
    "open_session",
]

#: The mutable AcquisitionRecord fields a unit may change (journaled as a
#: post-unit snapshot; the identity fields are derivable from the unit key).
RECORD_FIELDS = (
    "surface_attempted",
    "borrow_deep_attempted",
    "borrow_surface_attempted",
    "n_after_surface",
    "n_after_borrow",
)


@dataclass(frozen=True)
class CheckpointConfig:
    """Pipeline-facing checkpoint knobs (attach to ``WebIQConfig.checkpoint``)."""

    #: journal directory; created on a fresh run, read on resume
    directory: str
    #: replay an existing journal instead of starting over
    resume: bool = False
    #: arm a :class:`~repro.resilience.KillSwitch` at this journal
    #: boundary (overrides the fault profile's ``preempt_at``)
    kill_at: Optional[int] = None


@dataclass
class CheckpointReport:
    """What checkpointing did for one run (in-memory diagnostics).

    Only the resume-invariant core (``boundaries``) is exported into run
    payloads — the replay/fresh split necessarily differs between an
    uninterrupted run and a resumed one, and must not break their byte
    equality.
    """

    directory: str
    resumed: bool
    replayed_records: int = 0
    fresh_records: int = 0
    #: component -> round trips satisfied from the journal (not re-spent)
    replayed_queries_by_component: Dict[str, int] = field(default_factory=dict)
    #: component -> round trips this process actually performed
    fresh_queries_by_component: Dict[str, int] = field(default_factory=dict)
    #: raw substrate counters at the end of the run — what this process
    #: really sent over the (simulated) wire
    engine_round_trips: int = 0
    source_round_trips: int = 0
    #: unit keys skipped because the supervisor quarantined them (both
    #: replayed and fresh quarantine records land here, in run order)
    quarantine_skips: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def boundaries(self) -> int:
        """Total journal boundaries of the run (resume-invariant)."""
        return self.replayed_records + self.fresh_records

    @property
    def replayed_round_trips(self) -> int:
        return sum(self.replayed_queries_by_component.values())

    @property
    def fresh_round_trips(self) -> int:
        return sum(self.fresh_queries_by_component.values())

    def summary(self) -> str:
        """One CLI-ready line, mirroring the cache summary's tone."""
        verb = "resumed" if self.resumed else "journaled"
        line = (
            f"checkpoint: {verb} — {self.replayed_records} units replayed "
            f"({self.replayed_round_trips} round trips saved), "
            f"{self.fresh_records} units written"
        )
        if self.quarantine_skips:
            line += f", {len(self.quarantine_skips)} units quarantined"
        return line


@dataclass(frozen=True)
class ReplayedUnit:
    """What one replayed record charged, for phase-end clock accounting."""

    queries: int
    probes: int


@dataclass
class UnitCapture:
    """Pre-unit marks a fresh unit's deltas are measured against."""

    unit_key: Tuple[str, str, str]
    engine_before: int
    probes_before: int
    acquired_before: int
    store_marks: Dict[str, Tuple[int, int, int]]
    memo_mark: int
    ops_mark: int
    #: resilience backoff seconds already accrued when the unit began —
    #: the unit's wall-clock deadline charge includes its backoff delta
    backoff_before: float = 0.0


def _encode_value(kind: str, value: Any) -> Any:
    if kind == "search":
        return [[r.doc_id, r.url, r.title, r.snippet] for r in value]
    return value


def _decode_value(kind: str, raw: Any) -> Any:
    if kind == "search":
        return [SearchResult(*item) for item in raw]
    return raw


def _encode_op(op: Tuple) -> List[Any]:
    if op[0] == "h":
        return ["h", list(op[1])]
    return ["s", list(op[1]), _encode_value(op[1][0], op[2])]


class CheckpointSession:
    """Journals fresh units and replays recorded ones for one run."""

    def __init__(self, journal: RunJournal, report: CheckpointReport,
                 kill_switch: Optional[KillSwitch] = None) -> None:
        self.journal = journal
        self.report = report
        self._kill_switch = kill_switch
        self._cursor = 0
        # Replay horizon: only records that existed when the session opened
        # are replayable — records this process appends are *fresh*, and
        # must never be re-consumed by the unit that follows them.
        self._replay_limit = len(journal.records)
        # Substrate references (attached by the pipeline once the layer
        # stack is built).
        self._engine: Any = None
        self._sources: Dict[str, Any] = {}
        self._cache_engine: Optional[CachingSearchEngine] = None
        self._client: Optional[ResilientClient] = None
        self._flaky_sources: Dict[str, FlakyDeepWebSource] = {}
        # Memo stores (registered by the acquirer).
        self._validation_stores: Dict[str, ValidationCache] = {}
        self._probe_memo: Optional[Dict[tuple, bool]] = None
        # Live cache op-log (fresh units only; replay bypasses it).
        self._ops: List[Tuple] = []
        # Supervision hooks (attached via supervise(); all inert without).
        self._quarantine: frozenset = frozenset()
        self._unit_faults: Any = None
        self._unit_deadline: Optional[float] = None
        self._run_deadline: Optional[float] = None
        self._clock: Any = None
        self._fresh_seconds = 0.0

    # --------------------------------------------------------------- wiring
    def attach_substrates(
        self,
        engine: Any,
        sources: Dict[str, Any],
        cache_engine: Optional[CachingSearchEngine] = None,
        client: Optional[ResilientClient] = None,
        flaky_sources: Optional[Dict[str, FlakyDeepWebSource]] = None,
    ) -> None:
        """Point the session at the run's layer stack.

        ``engine``/``sources`` are the *top-of-stack* objects the acquirer
        talks to (their counters delegate to the raw substrates, so deltas
        measure real round trips only).
        """
        self._engine = engine
        self._sources = dict(sources)
        self._cache_engine = cache_engine
        self._client = client
        self._flaky_sources = dict(flaky_sources or {})
        if cache_engine is not None:
            cache_engine.oplog = self._ops.append

    def register_validation_store(self, name: str,
                                  store: ValidationCache) -> None:
        """Declare a cross-unit validation memo to journal under ``name``."""
        self._validation_stores[name] = store

    def register_probe_memo(self, memo: Dict[tuple, bool]) -> None:
        """Declare the Attr-Deep probe memo (the live dict)."""
        self._probe_memo = memo

    def supervise(self, supervisor_config: Any, clock: Any) -> None:
        """Attach supervision hooks (:class:`repro.supervisor.SupervisorConfig`).

        Installs the quarantine set (units the acquirer must skip), the
        unit/run wall-clock deadlines charged against ``clock``'s rates,
        and the unit-fault saboteur for chaos testing. Deadline budgets
        count only the *fresh* work of this attempt — replayed units
        spent their seconds in an earlier attempt, and charging them
        again would make every resume instantly over budget.
        """
        self._quarantine = frozenset(
            tuple(unit) for unit in supervisor_config.quarantine
        )
        self._unit_faults = supervisor_config.unit_faults
        self._unit_deadline = supervisor_config.unit_deadline_seconds
        self._run_deadline = supervisor_config.run_deadline_seconds
        self._clock = clock

    def is_quarantined(self, unit_key: Tuple[str, str, str]) -> bool:
        """True when the supervisor ordered this unit skipped."""
        return tuple(unit_key) in self._quarantine

    @property
    def pending_replays(self) -> int:
        """Journal records not yet consumed by :meth:`replay_unit`.

        The parallel executor reads this to suppress speculation while a
        resumed run is still replaying: replayed units issue no calls, so
        there is no latency to prefetch."""
        return max(0, self._replay_limit - self._cursor)

    # --------------------------------------------------------------- replay
    def replay_unit(self, unit_key: Tuple[str, str, str], attribute,
                    record) -> Optional[ReplayedUnit]:
        """Consume the next journal record if one is pending.

        Returns ``None`` when the journal is exhausted (the caller runs
        the unit fresh). Records are consumed strictly sequentially; a
        unit-key disagreement means the journal belongs to a different
        run shape and resume is refused.
        """
        if self._cursor >= self._replay_limit:
            return None
        body = self.journal.records[self._cursor]
        if tuple(body["unit"]) != tuple(unit_key):
            raise JournalMismatchError(
                f"record {self._cursor}: journal unit {body['unit']} does "
                f"not match the run's next unit {list(unit_key)} — refusing "
                "to resume a diverging run"
            )
        self._cursor += 1

        attribute.acquired.extend(body["added"])
        for field_name in RECORD_FIELDS:
            setattr(record, field_name, body["record"][field_name])
        for name, delta in body["stores"].items():
            store = self._validation_stores.get(name)
            if store is None:
                raise JournalMismatchError(
                    f"record {body['index']}: journal carries validation "
                    f"store {name!r} this configuration does not have"
                )
            store.merge_delta(delta)
        if body["probe_memo"]:
            if self._probe_memo is None:
                raise JournalMismatchError(
                    f"record {body['index']}: journal carries probe-memo "
                    "entries but no Attr-Deep validator is registered"
                )
            for raw_key, verdict in body["probe_memo"]:
                self._probe_memo[tuple(raw_key)] = verdict
        if body["cache_ops"]:
            if self._cache_engine is None:
                raise JournalMismatchError(
                    f"record {body['index']}: journal carries cache ops "
                    "but this run has no query cache"
                )
            self._apply_cache_ops(body["index"], body["cache_ops"])

        self.report.replayed_records += 1
        self._tally(self.report.replayed_queries_by_component, body)
        if body.get("quarantined"):
            self.report.quarantine_skips.append(tuple(body["unit"]))
        if self._cursor == self._replay_limit:
            # The killed process stopped right after this record: restore
            # its substrate state before any fresh unit (or the end-of-run
            # accounting, if the journal covers the whole run).
            self._restore_state(body["state"])
        return ReplayedUnit(queries=body["queries"], probes=body["probes"])

    def _apply_cache_ops(self, index: int, ops: List[List[Any]]) -> None:
        assert self._cache_engine is not None
        for op in ops:
            try:
                if op[0] == "h":
                    self._cache_engine.replay_hit(tuple(op[1]))
                elif op[0] == "s":
                    key = tuple(op[1])
                    self._cache_engine.replay_store(
                        key, _decode_value(key[0], op[2])
                    )
                else:
                    raise KeyError(op[0])
            except KeyError as exc:
                raise JournalCorruptionError(
                    f"record {index}: unreplayable cache op {op[:2]!r} "
                    f"({exc})"
                ) from exc

    # ---------------------------------------------------------- fresh units
    def begin_unit(self, unit_key: Tuple[str, str, str], attribute,
                   sabotage: bool = True) -> UnitCapture:
        """Mark every counter a fresh unit's deltas are measured against.

        With supervision attached, this is also where the unit-fault
        saboteur fires (``sabotage=False`` suppresses it — used for
        quarantine-skip commits, which must not re-trip the very fault
        that got the unit quarantined).
        """
        if sabotage and self._unit_faults is not None:
            self._unit_faults.check(tuple(unit_key))
        return UnitCapture(
            unit_key=tuple(unit_key),
            engine_before=self._engine_count(),
            probes_before=self._probe_count(),
            acquired_before=len(attribute.acquired),
            store_marks={
                name: store.mark()
                for name, store in self._validation_stores.items()
            },
            memo_mark=(
                len(self._probe_memo) if self._probe_memo is not None else 0
            ),
            ops_mark=len(self._ops),
            backoff_before=self._client_backoff(),
        )

    def commit_unit(self, capture: UnitCapture, attribute, record,
                    skipped: bool = False, quarantined: bool = False) -> int:
        """Durably journal a completed fresh unit; then maybe die.

        The armed kill switch is checked *after* the append returns — the
        record is on disk before the simulated crash, which is exactly
        the write-ahead guarantee resume relies on. Supervision deadlines
        are checked after the kill switch for the same reason: a
        deadline kill with the record already durable loses nothing, and
        because every attempt replays the journaled prefix for free, each
        attempt commits at least one new unit before a deadline can fire
        again — deadlines preempt, they cannot livelock.
        """
        stores: Dict[str, Any] = {}
        for name, store in self._validation_stores.items():
            delta = store.delta_since(capture.store_marks[name])
            if any(delta.values()):
                stores[name] = delta
        memo_delta: List[List[Any]] = []
        if self._probe_memo is not None:
            memo_delta = [
                [list(key), verdict]
                for key, verdict in list(
                    self._probe_memo.items()
                )[capture.memo_mark:]
            ]
        body = {
            "unit": list(capture.unit_key),
            "skipped": skipped,
            "quarantined": quarantined,
            "added": list(attribute.acquired[capture.acquired_before:]),
            "record": {
                field_name: getattr(record, field_name)
                for field_name in RECORD_FIELDS
            },
            "queries": self._engine_count() - capture.engine_before,
            "probes": self._probe_count() - capture.probes_before,
            "stores": stores,
            "probe_memo": memo_delta,
            "cache_ops": [_encode_op(op) for op in self._ops[capture.ops_mark:]],
            "state": self._snapshot_state(),
        }
        index = self.journal.append(body)
        self.report.fresh_records += 1
        self._tally(self.report.fresh_queries_by_component, body)
        if quarantined:
            self.report.quarantine_skips.append(capture.unit_key)
        if self._kill_switch is not None:
            self._kill_switch.check(index)
        self._check_deadlines(capture, body)
        return index

    def _check_deadlines(self, capture: UnitCapture,
                         body: Dict[str, Any]) -> None:
        """Charge the committed unit against its wall-clock budgets."""
        if self._unit_deadline is None and self._run_deadline is None:
            return
        unit_seconds = self._unit_seconds(body)
        unit_seconds += self._client_backoff() - capture.backoff_before
        self._fresh_seconds += unit_seconds
        if (self._unit_deadline is not None
                and unit_seconds > self._unit_deadline):
            raise DeadlineExceededError(
                f"unit {list(capture.unit_key)} spent {unit_seconds:.1f}s "
                f"(simulated) against a {self._unit_deadline:.1f}s unit "
                "deadline — preempting (journal durable, resume eligible)",
                scope="unit", seconds=unit_seconds,
                deadline=self._unit_deadline,
            )
        if (self._run_deadline is not None
                and self._fresh_seconds > self._run_deadline):
            raise DeadlineExceededError(
                f"run spent {self._fresh_seconds:.1f}s (simulated, this "
                f"attempt) against a {self._run_deadline:.1f}s run deadline "
                "— preempting (journal durable, resume eligible)",
                scope="run", seconds=self._fresh_seconds,
                deadline=self._run_deadline,
            )

    def _unit_seconds(self, body: Dict[str, Any]) -> float:
        """Simulated wall-clock of one unit, at the clock's nominal rates."""
        if self._clock is None:
            return 0.0
        return (body["queries"] * self._clock.search_query_seconds
                + body["probes"] * self._clock.deep_probe_seconds)

    # ------------------------------------------------------------ finishing
    def finalize(self) -> CheckpointReport:
        """Seal the report with the raw substrate counters."""
        self.report.engine_round_trips = self._engine_count()
        self.report.source_round_trips = self._probe_count()
        return self.report

    # ------------------------------------------------------------ internals
    def _client_backoff(self) -> float:
        if self._client is None:
            return 0.0
        return self._client.report.total_backoff_seconds

    def _engine_count(self) -> int:
        return self._engine.query_count if self._engine is not None else 0

    def _probe_count(self) -> int:
        return sum(s.probe_count for s in self._sources.values())

    def _tally(self, counter: Dict[str, int], body: Dict[str, Any]) -> None:
        phase = body["unit"][0]
        trips = body["probes"] if phase == "attr_deep" else body["queries"]
        counter[phase] = counter.get(phase, 0) + trips

    def _snapshot_state(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {}
        if self._client is not None:
            state["client"] = self._client.state_payload()
        if self._cache_engine is not None:
            state["cache_stats"] = self._cache_engine.stats.state_payload()
        if self._flaky_sources:
            state["source_draws"] = {
                source_id: flaky.draws
                for source_id, flaky in sorted(self._flaky_sources.items())
            }
        return state

    def _restore_state(self, state: Dict[str, Any]) -> None:
        client_state = state.get("client")
        if client_state is not None:
            if self._client is None:
                raise JournalMismatchError(
                    "journal carries resilience state but this run has no "
                    "resilience layer"
                )
            self._client.restore_state(client_state)
        cache_state = state.get("cache_stats")
        if cache_state is not None:
            if self._cache_engine is None:
                raise JournalMismatchError(
                    "journal carries cache stats but this run has no "
                    "query cache"
                )
            self._cache_engine.stats.restore_state(cache_state)
        for source_id, draws in state.get("source_draws", {}).items():
            flaky = self._flaky_sources.get(source_id)
            if flaky is None:
                raise JournalMismatchError(
                    f"journal carries fault-stream state for source "
                    f"{source_id!r} this run does not wrap"
                )
            # Fault streams are partitioned per unit and start at position
            # 0 whenever their unit runs, so there is nothing to
            # fast-forward — only the accounting counter is restored.
            flaky.draws = draws


def open_session(config: CheckpointConfig, meta: Dict[str, Any],
                 kill_switch: Optional[KillSwitch] = None) -> CheckpointSession:
    """Create or reopen the journal for one run and wrap it in a session.

    On resume the on-disk meta must match the run's identity coordinates
    exactly — resuming a ``book`` journal into an ``airfare`` run, or a
    cached journal into an uncached run, is refused with the differing
    keys named.
    """
    if config.resume:
        journal = RunJournal.open(config.directory)
        if journal.meta != meta:
            differing = sorted(
                key
                for key in set(journal.meta) | set(meta)
                if journal.meta.get(key) != meta.get(key)
            )
            raise JournalMismatchError(
                f"journal at {config.directory} belongs to a different run "
                f"(differing keys: {', '.join(differing)})"
            )
        report = CheckpointReport(directory=config.directory, resumed=True)
    else:
        journal = RunJournal.create(config.directory, meta)
        report = CheckpointReport(directory=config.directory, resumed=False)
    return CheckpointSession(journal, report, kill_switch=kill_switch)
