"""Setuptools shim.

Kept so that ``pip install -e . --no-use-pep517`` works in offline
environments that lack the ``wheel`` package (the PEP-517 editable build
requires it). All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
