"""Substrate micro-benchmarks (multi-round timing of the hot paths).

The figure benches run each expensive pipeline once; these measure the
substrate operations that dominate those runs with proper statistics, so
performance regressions are visible at the operation level:

- inverted-index construction over a domain corpus,
- phrase queries and hit counting,
- snippet extraction from one result,
- pairwise similarity evaluation and full constrained clustering,
- a Deep-Web probe round trip.
"""

import pytest

from repro.core.surface import ExtractionQueryBuilder, SnippetExtractor
from repro.datasets import build_domain_dataset
from repro.datasets.corpus import build_corpus
from repro.matching import IceQMatcher
from repro.matching.clustering import views_from_interfaces
from repro.matching.similarity import attribute_similarity
from repro.surfaceweb.engine import SearchEngine
from repro.text.labels import analyze_label

from .conftest import BENCH_SEED


@pytest.fixture(scope="module")
def auto_docs():
    return build_corpus("auto", seed=BENCH_SEED)


@pytest.fixture(scope="module")
def auto_engine(auto_docs):
    return SearchEngine(auto_docs)


@pytest.fixture(scope="module")
def airfare_views():
    dataset = build_domain_dataset("airfare", n_interfaces=20,
                                   seed=BENCH_SEED)
    return views_from_interfaces(dataset.interfaces)


@pytest.mark.benchmark(group="micro-index")
def test_index_build(benchmark, auto_docs):
    engine = benchmark(lambda: SearchEngine(auto_docs))
    assert engine.n_documents == len(auto_docs)


@pytest.mark.benchmark(group="micro-query")
def test_phrase_search(benchmark, auto_engine):
    results = benchmark(
        lambda: auto_engine.search('"makes such as" +auto +car'))
    assert results


@pytest.mark.benchmark(group="micro-query")
def test_num_hits(benchmark, auto_engine):
    hits = benchmark(lambda: auto_engine.num_hits('"honda"'))
    assert hits > 0


@pytest.mark.benchmark(group="micro-query")
def test_proximity_hits(benchmark, auto_engine):
    benchmark(lambda: auto_engine.num_hits_proximity("make", "honda"))


@pytest.mark.benchmark(group="micro-extract")
def test_snippet_extraction(benchmark, auto_engine):
    query = ExtractionQueryBuilder().build(
        analyze_label("Make"), ("auto", "car"), "car")[0]
    snippet = auto_engine.search(query.query)[0].snippet
    extractor = SnippetExtractor()
    candidates = benchmark(lambda: extractor.extract(snippet, query))
    assert candidates


@pytest.mark.benchmark(group="micro-match")
def test_pairwise_similarity(benchmark, airfare_views):
    a, b = airfare_views[0], airfare_views[25]
    benchmark(lambda: attribute_similarity(a, b))


@pytest.mark.benchmark(group="micro-match")
def test_full_clustering(benchmark, airfare_views):
    matcher = IceQMatcher()
    result = benchmark.pedantic(
        lambda: matcher.match_views(airfare_views), rounds=3, iterations=1)
    assert result.clusters


@pytest.mark.benchmark(group="micro-deepweb")
def test_probe_roundtrip(benchmark):
    dataset = build_domain_dataset("airfare", n_interfaces=5, seed=BENCH_SEED)
    source = next(iter(dataset.sources.values()))
    attr = source.interface.attributes[0].name
    page = benchmark(lambda: source.submit({attr: "Boston"}))
    assert page.text
