"""Substrate micro-benchmarks (median-of-k timing of the hot paths).

The figure benches run each expensive pipeline once; these measure the
substrate operations that dominate those runs with robust statistics, so
performance regressions are visible at the operation level:

- inverted-index construction over a domain corpus,
- phrase queries and hit counting,
- snippet extraction from one result,
- pairwise similarity evaluation and full constrained clustering,
- a Deep-Web probe round trip.

Each operation is timed with :func:`time.perf_counter_ns` over ``k``
repetitions after a warmup pass; the **median** is reported, which is
robust to the one-off scheduler hiccups that poison means on shared CI
runners. The medians are exported as ``BENCH_micro.json`` (path
override: ``BENCH_MICRO_JSON``) as a versioned bench envelope
(:mod:`repro.bench`); wall-clock metrics gate loosely, the deterministic
work counts gate tight.
"""

import statistics
import time

import pytest

from repro.core.surface import ExtractionQueryBuilder, SnippetExtractor
from repro.datasets import build_domain_dataset
from repro.datasets.corpus import build_corpus
from repro.matching import IceQMatcher
from repro.matching.clustering import views_from_interfaces
from repro.matching.similarity import attribute_similarity
from repro.surfaceweb.engine import SearchEngine
from repro.text.labels import analyze_label

from .conftest import BENCH_SEED, TOL_TIGHT, TOL_WALL, emit_bench, print_table

#: repetitions per operation; the median of 15 tolerates 7 outliers
ROUNDS = 15
#: expensive whole-subsystem operations get fewer rounds
ROUNDS_SLOW = 5


def median_ms(fn, rounds=ROUNDS, warmup=1):
    """Median wall-clock milliseconds of ``fn`` over ``rounds`` calls.

    The warmup calls pay one-time costs (imports resolved, caches
    primed, branch predictors settled) outside the measured window; the
    median over the remaining samples is what gets gated.
    """
    for _ in range(warmup):
        result = fn()
    samples = []
    for _ in range(rounds):
        started = time.perf_counter_ns()
        result = fn()
        samples.append(time.perf_counter_ns() - started)
    return statistics.median(samples) / 1e6, result


@pytest.fixture(scope="module")
def auto_docs():
    return build_corpus("auto", seed=BENCH_SEED)


@pytest.fixture(scope="module")
def auto_engine(auto_docs):
    return SearchEngine(auto_docs)


@pytest.fixture(scope="module")
def airfare_views():
    dataset = build_domain_dataset("airfare", n_interfaces=20,
                                   seed=BENCH_SEED)
    return views_from_interfaces(dataset.interfaces)


def test_microbench(auto_docs, auto_engine, airfare_views):
    timings = {}

    index_ms, engine = median_ms(
        lambda: SearchEngine(auto_docs), rounds=ROUNDS_SLOW)
    timings["index_build_ms"] = index_ms
    assert engine.n_documents == len(auto_docs)

    search_ms, results = median_ms(
        lambda: auto_engine.search('"makes such as" +auto +car'))
    timings["phrase_search_ms"] = search_ms
    assert results

    hits_ms, hits = median_ms(lambda: auto_engine.num_hits('"honda"'))
    timings["num_hits_ms"] = hits_ms
    assert hits > 0

    prox_ms, _ = median_ms(
        lambda: auto_engine.num_hits_proximity("make", "honda"))
    timings["proximity_hits_ms"] = prox_ms

    query = ExtractionQueryBuilder().build(
        analyze_label("Make"), ("auto", "car"), "car")[0]
    snippet = auto_engine.search(query.query)[0].snippet
    extractor = SnippetExtractor()
    extract_ms, candidates = median_ms(
        lambda: extractor.extract(snippet, query))
    timings["snippet_extraction_ms"] = extract_ms
    assert candidates

    a, b = airfare_views[0], airfare_views[25]
    sim_ms, _ = median_ms(lambda: attribute_similarity(a, b))
    timings["pairwise_similarity_ms"] = sim_ms

    matcher = IceQMatcher()
    cluster_ms, cluster_result = median_ms(
        lambda: matcher.match_views(airfare_views), rounds=ROUNDS_SLOW)
    timings["full_clustering_ms"] = cluster_ms
    assert cluster_result.clusters

    dataset = build_domain_dataset("airfare", n_interfaces=5,
                                   seed=BENCH_SEED)
    source = next(iter(dataset.sources.values()))
    attr = source.interface.attributes[0].name
    probe_ms, page = median_ms(lambda: source.submit({attr: "Boston"}))
    timings["probe_roundtrip_ms"] = probe_ms
    assert page.text

    print_table(
        f"Microbench — median of {ROUNDS} ({ROUNDS_SLOW} for slow ops), "
        "perf_counter_ns",
        ("operation", "median ms"),
        [(name, f"{ms:.3f}") for name, ms in sorted(timings.items())],
    )

    # Deterministic work sizes ride along so a wall-clock drift can be
    # told apart from the workload itself changing under the timer.
    work = {
        "corpus_documents": len(auto_docs),
        "search_results": len(results),
        "num_hits": hits,
        "extraction_candidates": len(candidates),
        "clusters": len(cluster_result.clusters),
        "cluster_evaluations": cluster_result.similarity_evaluations,
    }

    metrics = dict(work)
    metrics.update(timings)
    tolerances = {name: TOL_TIGHT for name in work}
    tolerances.update({name: TOL_WALL for name in timings})
    emit_bench(
        "BENCH_MICRO_JSON",
        "microbench",
        workload={
            "seed": BENCH_SEED,
            "rounds": ROUNDS,
            "rounds_slow": ROUNDS_SLOW,
        },
        metrics=metrics,
        tolerances=tolerances,
        default="BENCH_micro.json",
    )
