"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper figures; they regenerate the evidence behind choices
the paper argues for in prose:

- PMI vs raw hit counts for validation (§2.2 rejects raw counts for their
  "potential bias towards popular instances");
- the outlier-removal phase "greatly reduces the number of validation
  queries posed to search engines";
- donor selectivity in borrowing (§5 restricts donors "to minimize
  overhead");
- the clustering linkage and threshold (τ) behaviour around the paper's
  manual τ = 0.1.
"""

import pytest

from repro.core.acquisition import AcquisitionConfig, InstanceAcquirer
from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.core.surface import SurfaceConfig, SurfaceDiscoverer
from repro.datasets import build_domain_dataset, vocab
from repro.deepweb.models import Attribute
from repro.matching import IceQMatcher, evaluate_matches
from repro.matching.clustering import views_from_interfaces
from repro.matching.threshold import search_threshold

from .conftest import BENCH_SEED, print_table


@pytest.fixture(scope="module")
def auto_ds():
    return build_domain_dataset("auto", n_interfaces=12, seed=BENCH_SEED)


def _instance_quality(instances, truth_values):
    truth = {v.lower() for v in truth_values}
    if not instances:
        return 0.0
    return sum(1 for i in instances if i.lower() in truth) / len(instances)


@pytest.mark.benchmark(group="ablations")
def test_ablation_pmi_vs_raw_hits(benchmark):
    """Validation scoring: the paper's PMI vs raw joint hit counts.

    Controlled corpus: rare true makes co-occur with "make" a couple of
    times each, while the hugely popular junk phrase "best deals" co-occurs
    with "make" *more often in absolute terms* ("best deals on every make").
    Raw joint counts rank the junk first; PMI discounts its popularity.
    """
    from repro.surfaceweb.document import Document
    from repro.surfaceweb.engine import SearchEngine

    docs = []
    makes = ["Saab", "Isuzu", "Daewoo", "Plymouth", "Oldsmobile", "Packard"]
    i = 0
    for _ in range(4):  # junk co-occurs with the label MORE often...
        docs.append(Document(i, f"u{i}", "t",
                             "Best car site. Make best deals happen today "
                             "with our makes such as best deals pages."))
        i += 1
    for make in makes:
        docs.append(Document(i, f"u{i}", "t",
                             f"Welcome to the best car site. Makes such "
                             f"as {make} are listed. Make: {make}."))
        i += 1
    for _ in range(60):  # ...because it is everywhere on the Web
        docs.append(Document(i, f"u{i}", "t",
                             "Huge best deals pages this week on the site."))
        i += 1
    engine = SearchEngine(docs)
    attr = Attribute(name="x", label="Make")

    def run(scoring):
        discoverer = SurfaceDiscoverer(
            engine, SurfaceConfig(scoring=scoring, k=5))
        return discoverer.discover(attr, ("car",), "car")

    pmi_result = run("pmi")
    hits_result = benchmark.pedantic(run, args=("hits",), rounds=1,
                                     iterations=1)

    q_pmi = _instance_quality(pmi_result.instances, makes)
    q_hits = _instance_quality(hits_result.instances, makes)
    print_table(
        "Ablation — validation scoring under a popular junk phrase",
        ("scoring", "top-5 instances", "quality"),
        [("pmi", ", ".join(pmi_result.instances[:5]), f"{q_pmi:.2f}"),
         ("raw hits", ", ".join(hits_result.instances[:5]), f"{q_hits:.2f}")],
    )
    assert q_pmi == 1.0                       # PMI rejects the junk
    assert any("best deals" in x.lower() for x in hits_result.instances)
    assert q_pmi > q_hits                     # the paper's argument


@pytest.mark.benchmark(group="ablations")
def test_ablation_outlier_phase_reduces_validation_queries(benchmark):
    """§2.2: outlier removal cuts candidates before costly validation.

    Controlled corpus: a price list polluted with one absurd price and one
    rambling string candidate. Discordancy tests drop them before Web
    validation, saving their validation queries.
    """
    from repro.surfaceweb.document import Document
    from repro.surfaceweb.engine import SearchEngine

    prices = ["$10", "$12", "$15", "$14", "$11", "$13", "$16", "$17",
              "$18", "$19", "$20", "$21"]
    engine = SearchEngine([
        Document(0, "u0", "t",
                 "Great book deals. Prices such as " + ", ".join(prices[:6])
                 + " are typical here. Price: $12."),
        Document(1, "u1", "t",
                 "Great book deals. Prices such as " + ", ".join(prices[6:])
                 + ", and $90,000 appear on this page."),
    ])
    attr = Attribute(name="x", label="Price")

    def run(enabled):
        engine.reset_query_count()
        discoverer = SurfaceDiscoverer(
            engine,
            SurfaceConfig(enable_outlier_removal=enabled,
                          max_validated_candidates=1000),
        )
        return discoverer.discover(attr, ("book",), "book")

    with_outliers = run(True)
    without = benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)

    print_table(
        "Ablation — outlier phase on a polluted price list",
        ("outlier removal", "queries", "outliers removed"),
        [("on", with_outliers.queries_used, len(with_outliers.outliers)),
         ("off", without.queries_used, len(without.outliers))],
    )
    assert any("$90,000" in o for o in with_outliers.outliers)
    assert with_outliers.queries_used < without.queries_used


@pytest.mark.benchmark(group="ablations")
def test_ablation_donor_selectivity(benchmark, auto_ds):
    """§5's donor restrictions bound Deep-Web probing."""
    def acquire(config):
        auto_ds.clear_acquired()
        auto_ds.reset_counters()
        acquirer = InstanceAcquirer(auto_ds.engine, auto_ds.sources, config)
        return acquirer.acquire(
            auto_ds.interfaces, auto_ds.spec.keyword_terms(),
            auto_ds.spec.object_name)

    selective = acquire(AcquisitionConfig())
    permissive = benchmark.pedantic(
        acquire,
        args=(AcquisitionConfig(label_sim_threshold=0.0, max_donors=10),),
        rounds=1, iterations=1,
    )
    print_table(
        "Ablation — borrow-donor selectivity (auto, 12 interfaces)",
        ("policy", "deep probes", "final success %"),
        [("paper (label-gated)", selective.attr_deep_probes,
          f"{selective.final_success_rate:.1f}"),
         ("permissive", permissive.attr_deep_probes,
          f"{permissive.final_success_rate:.1f}")],
    )
    # Selectivity spends fewer probes without losing acquisition success.
    assert selective.attr_deep_probes <= permissive.attr_deep_probes
    assert selective.final_success_rate >= permissive.final_success_rate - 5.0
    auto_ds.clear_acquired()


@pytest.mark.benchmark(group="ablations")
def test_ablation_linkage(benchmark, cache):
    """Clustering linkage: the average-linkage default vs alternatives."""
    dataset = cache.dataset("airfare")
    cache.run("airfare", "webiq")  # ensure instances are acquired
    truth = dataset.ground_truth.match_pairs()

    def f1_for(linkage):
        result = WebIQMatcher(WebIQConfig(linkage=linkage)).run(dataset)
        return 100.0 * result.metrics.f1

    average = f1_for("average")
    single = f1_for("single")
    complete = benchmark.pedantic(f1_for, args=("complete",), rounds=1,
                                  iterations=1)
    print_table(
        "Ablation — clustering linkage (airfare F-1 %)",
        ("linkage", "F-1"),
        [("average (default)", f"{average:.1f}"),
         ("single", f"{single:.1f}"),
         ("complete", f"{complete:.1f}")],
    )
    assert average >= single - 1e-9
    assert average >= complete - 1e-9


@pytest.mark.benchmark(group="ablations")
def test_ablation_threshold_sweep(benchmark, cache):
    """τ sweep around the paper's manual 0.1, plus the automatic search."""
    dataset = cache.dataset("job")
    cache.run("job", "webiq")  # acquire instances once
    views = views_from_interfaces(dataset.interfaces)
    truth = dataset.ground_truth.match_pairs()
    matcher = IceQMatcher()

    grid = (0.0, 0.05, 0.1, 0.2, 0.3)
    rows = []
    for tau in grid:
        result = matcher.match_views(views, threshold=tau)
        metrics = evaluate_matches(result.match_pairs(), truth)
        rows.append((f"{tau:.2f}", f"{100 * metrics.precision:.1f}",
                     f"{100 * metrics.recall:.1f}",
                     f"{100 * metrics.f1:.1f}"))
    best_tau, best_f1 = benchmark.pedantic(
        search_threshold, args=(matcher, views, truth, grid),
        rounds=1, iterations=1)
    rows.append((f"auto={best_tau:.2f}", "", "", f"{100 * best_f1:.1f}"))
    print_table("Ablation — threshold sweep (job, after WebIQ)",
                ("tau", "P", "R", "F-1"), rows)

    f1s = [float(r[3]) for r in rows[:-1]]
    assert best_f1 * 100 == pytest.approx(max(f1s))
    # Precision is monotone non-decreasing in tau.
    precisions = [float(r[1]) for r in rows[:-1]]
    assert all(b >= a - 0.5 for a, b in zip(precisions, precisions[1:]))
