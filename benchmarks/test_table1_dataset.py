"""Table 1, columns 1-5: characteristics of the five evaluation data sets.

Regenerates the dataset-characteristic columns of the paper's Table 1:
attributes per interface, % of interfaces containing no-instance attributes,
% of attributes without instances on those interfaces, and the % of
no-instance attributes whose instances can be expected on the Web.

The benchmark times building one complete domain environment (interfaces +
ground truth + Surface-Web corpus + sources).
"""

import pytest

from repro.datasets import DOMAINS, build_domain_dataset, dataset_statistics

from .conftest import BENCH_SEED, print_table

#: Table 1 columns 2-5 as printed in the paper.
PAPER = {
    "airfare": (10.7, 85, 32.2, 100.0),
    "auto": (5.1, 95, 28.1, 100.0),
    "book": (5.4, 85, 38.6, 98.0),
    "job": (4.6, 100, 74.6, 83.1),
    "realestate": (6.5, 95, 30.0, 66.7),
}


@pytest.mark.benchmark(group="table1")
def test_table1_dataset_characteristics(benchmark, cache):
    stats = {d: dataset_statistics(cache.dataset(d)) for d in DOMAINS}

    benchmark.pedantic(
        build_domain_dataset, args=("auto",),
        kwargs={"n_interfaces": 20, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )

    rows = []
    for domain in DOMAINS:
        s = stats[domain]
        p = PAPER[domain]
        rows.append((
            domain,
            f"{s.avg_attributes:.1f} ({p[0]})",
            f"{s.pct_interfaces_no_inst:.0f} ({p[1]})",
            f"{s.pct_attrs_no_inst:.1f} ({p[2]})",
            f"{s.pct_expected_findable:.1f} ({p[3]})",
        ))
    print_table(
        "Table 1 cols 2-5 — measured (paper)",
        ("domain", "#Attr", "IntNoInst%", "AttrNoInst%", "ExpInst%"),
        rows,
    )

    # Shape assertions: the per-domain ordering the paper reports.
    attrs = {d: stats[d].avg_attributes for d in DOMAINS}
    assert max(attrs, key=attrs.get) == "airfare"
    no_inst = {d: stats[d].pct_attrs_no_inst for d in DOMAINS}
    assert max(no_inst, key=no_inst.get) == "job"
    findable = {d: stats[d].pct_expected_findable for d in DOMAINS}
    assert findable["airfare"] == findable["auto"] == 100.0
    assert min(findable, key=findable.get) == "realestate"
    for domain in DOMAINS:
        assert stats[domain].pct_interfaces_no_inst >= 80.0
