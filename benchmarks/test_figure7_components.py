"""Figure 7: contributions of the individual WebIQ components.

Regenerates the four bars per domain: baseline, then Surface, Attr-Deep and
Attr-Surface enabled cumulatively (all at clustering threshold 0, as in the
paper). The paper's observations: Surface lifts every domain (airfare +4.6,
real estate +4.4); Attr-Deep lifts airfare/auto/job; Attr-Surface adds
+1.8 on average.

The benchmark times an acquisition-only configuration (Surface alone).
"""

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import DOMAINS

from .conftest import print_table

BARS = ("baseline", "surface", "surface+deep", "webiq")
LABELS = ("baseline", "+Surface", "+Attr-Deep", "+Attr-Surface")


@pytest.mark.benchmark(group="figure7")
def test_figure7_component_contributions(benchmark, cache):
    f1 = {
        domain: tuple(
            100.0 * cache.run(domain, bar).metrics.f1 for bar in BARS)
        for domain in DOMAINS
    }

    benchmark.pedantic(
        lambda: WebIQMatcher(WebIQConfig(
            enable_attr_deep=False, enable_attr_surface=False,
        )).run(cache.dataset("realestate")),
        rounds=1, iterations=1,
    )

    rows = [
        (domain,) + tuple(f"{f1[domain][i]:.1f}" for i in range(4))
        for domain in DOMAINS
    ]
    avg = tuple(sum(f1[d][i] for d in DOMAINS) / len(DOMAINS)
                for i in range(4))
    rows.append(("average",) + tuple(f"{avg[i]:.1f}" for i in range(4)))
    print_table("Figure 7 — cumulative component F-1 %", ("domain",) + LABELS,
                rows)

    # Shapes: each component never hurts; Surface is the dominant single
    # contribution; Attr-Deep adds measurably in the hard-extraction domains.
    for domain in DOMAINS:
        base, surface, deep, full = f1[domain]
        # Components never hurt materially (partial acquisition can shave a
        # fraction of a point before the next component consolidates it).
        assert surface >= base - 1.5, domain
        assert deep >= surface - 0.5, domain
        assert full >= deep - 0.5, domain
    assert avg[1] - avg[0] >= 2.0          # Surface lifts the average
    assert avg[2] >= avg[1]                # Attr-Deep adds on top
    gains_deep = {d: f1[d][2] - f1[d][1] for d in DOMAINS}
    assert max(gains_deep.values()) > 0.5  # visible somewhere (paper: job)
