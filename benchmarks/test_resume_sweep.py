"""Resume benchmark: what crash-safe checkpointing saves over a cold restart.

One domain's pipeline is journaled, killed deterministically at the
halfway boundary, and resumed. A cold restart would re-spend every round
trip the killed half already paid for; resume must re-spend **none** of
them — its real engine/source traffic covers only the fresh half — while
producing an export byte-identical to the uninterrupted run.

The measured numbers are exported as ``BENCH_resume.json`` (path
override: ``BENCH_RESUME_JSON``) as a versioned bench envelope
(:mod:`repro.bench`) so CI can gate resume-savings trends with
``repro bench diff``.
"""

import os
import tempfile
import time

import pytest

from repro.checkpoint import CheckpointConfig
from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import build_domain_dataset
from repro.io import run_result_to_dict
from repro.util.errors import PreemptionError

from .conftest import (
    BENCH_SEED,
    TOL_COUNT,
    TOL_EXACT,
    TOL_SCORE,
    TOL_WALL,
    emit_bench,
    print_table,
)

#: a mid-size slice keeps the three runs (uninterrupted, killed, resumed)
#: honest without tripling the suite's dominant 20-interface cost
DOMAIN = "book"
N_INTERFACES = 8


def comparable(result):
    payload = run_result_to_dict(result)
    payload.pop("checkpoint", None)
    payload.pop("format", None)
    return payload


def timed_run(checkpoint):
    dataset = build_domain_dataset(DOMAIN, N_INTERFACES, BENCH_SEED)
    started = time.perf_counter()
    result = WebIQMatcher(WebIQConfig(checkpoint=checkpoint)).run(dataset)
    elapsed = time.perf_counter() - started
    probes = sum(s.probe_count for s in dataset.sources.values())
    return result, dataset.engine.query_count + probes, elapsed


@pytest.mark.benchmark(group="resume-sweep")
def test_resume_sweep(benchmark):
    workdir = tempfile.mkdtemp(prefix="bench-resume-")
    journal = os.path.join(workdir, "journal")

    full_result, full_trips, full_secs = timed_run(
        CheckpointConfig(directory=os.path.join(workdir, "uninterrupted")))
    boundaries = full_result.checkpoint.boundaries
    kill_at = boundaries // 2

    killed_trips = [0]

    def kill_halfway():
        dataset = build_domain_dataset(DOMAIN, N_INTERFACES, BENCH_SEED)
        with pytest.raises(PreemptionError):
            WebIQMatcher(WebIQConfig(checkpoint=CheckpointConfig(
                directory=journal, kill_at=kill_at))).run(dataset)
        killed_trips[0] = dataset.engine.query_count + sum(
            s.probe_count for s in dataset.sources.values())

    kill_halfway()
    resumed_result, resumed_trips, resumed_secs = timed_run(
        CheckpointConfig(directory=journal, resume=True))

    benchmark.pedantic(
        lambda: timed_run(CheckpointConfig(directory=journal, resume=True)),
        rounds=1, iterations=1)

    saved = resumed_result.checkpoint.replayed_round_trips
    cold_restart_trips = killed_trips[0] + full_trips
    reduction = 1.0 - (killed_trips[0] + resumed_trips) / cold_restart_trips
    rows = [
        ("uninterrupted", full_trips, boundaries, f"{full_secs:.2f}"),
        (f"killed @ {kill_at}", killed_trips[0], kill_at + 1, "-"),
        ("resumed", resumed_trips,
         resumed_result.checkpoint.fresh_records, f"{resumed_secs:.2f}"),
    ]
    print_table(
        f"Resume sweep — {DOMAIN}, {N_INTERFACES} interfaces "
        f"(kill at boundary {kill_at}/{boundaries}: {saved} round trips "
        f"replayed for free, {reduction:.1%} saved vs cold restart)",
        ("run", "round trips", "units", "seconds"),
        rows,
    )

    # The contract the subsystem exists for: byte-identical export...
    assert comparable(resumed_result) == comparable(full_result)
    # ...with zero round trips re-spent on the replayed prefix.
    assert resumed_result.checkpoint.replayed_records == kill_at + 1
    assert resumed_trips == resumed_result.checkpoint.fresh_round_trips
    assert killed_trips[0] + resumed_trips == full_trips
    assert saved > 0

    emit_bench(
        "BENCH_RESUME_JSON",
        "resume-sweep",
        workload={
            "domain": DOMAIN,
            "n_interfaces": N_INTERFACES,
            "seed": BENCH_SEED,
        },
        metrics={
            "boundaries": boundaries,
            "kill_at": kill_at,
            "uninterrupted_round_trips": full_trips,
            "killed_round_trips": killed_trips[0],
            "resumed_round_trips": resumed_trips,
            "replayed_round_trips_saved": saved,
            "cold_restart_round_trips": cold_restart_trips,
            "round_trip_reduction_vs_cold_restart": reduction,
            "f1": resumed_result.metrics.f1,
            "uninterrupted_wall_seconds": full_secs,
            "resumed_wall_seconds": resumed_secs,
        },
        tolerances={
            "boundaries": TOL_EXACT,
            "kill_at": TOL_EXACT,
            "uninterrupted_round_trips": TOL_COUNT,
            "killed_round_trips": TOL_COUNT,
            "resumed_round_trips": TOL_COUNT,
            "replayed_round_trips_saved": TOL_SCORE,
            "cold_restart_round_trips": TOL_COUNT,
            "round_trip_reduction_vs_cold_restart": TOL_SCORE,
            "f1": TOL_SCORE,
            "uninterrupted_wall_seconds": TOL_WALL,
            "resumed_wall_seconds": TOL_WALL,
        },
        default="BENCH_resume.json",
    )
