"""Service sweep: sustained request throughput and the warm/cold split.

One :class:`~repro.service.MatchingService` drives a seeded two-tenant
workload of identical book runs. The first dispatch is cold (empty boot
epoch); every later one starts from the previous request's published
cache epoch, so the sweep measures exactly what the service exists to
provide: the simulated-seconds gap between a cold run and a warm one,
and the sustained requests/second of the serve loop itself.

Simulated-seconds metrics are deterministic (the stats ledger is
wall-clock-free by design) and gate tightly; process wall-clock and
requests/second gate loosely, like every other sweep. The artifact is
exported as ``BENCH_service.json`` (path override:
``BENCH_SERVICE_JSON``) and diffed in CI with ``repro bench diff``.
"""

import time

import pytest

from repro.service import (
    MatchingService,
    ServiceConfig,
    build_workload,
    check_service,
)

from .conftest import (
    BENCH_SEED,
    TOL_EXACT,
    TOL_SPEEDUP,
    TOL_TIGHT,
    TOL_WALL,
    emit_bench,
    print_table,
)

DOMAIN = "book"
N_REQUESTS = 8
N_INTERFACES = 4
#: a warm run must need at most this share of a cold run's simulated time
MAX_WARM_COLD_RATIO = 0.25


def run_workload():
    service = MatchingService(ServiceConfig(max_queue_depth=N_REQUESTS))
    requests = build_workload(
        seed=BENCH_SEED, tenants=("acme", "globex"),
        n_requests=N_REQUESTS, domains=(DOMAIN,),
        n_interfaces=N_INTERFACES)
    started = time.perf_counter()
    responses = service.drive(requests)
    elapsed = time.perf_counter() - started
    return service, responses, elapsed


@pytest.mark.benchmark(group="service-sweep")
def test_service_sweep(benchmark):
    service, responses, elapsed = run_workload()
    benchmark.pedantic(run_workload, rounds=1, iterations=1)

    stats = service.stats
    assert stats.completed == N_REQUESTS
    assert stats.cold_runs == 1 and stats.warm_runs == N_REQUESTS - 1
    report = check_service(service)
    assert report.ok, report.summary()

    warm_mean = stats.warm_mean_seconds
    cold_mean = stats.cold_mean_seconds
    rps = N_REQUESTS / elapsed if elapsed else float("inf")
    rows = [
        ("cold", stats.cold_runs, f"{cold_mean:.2f}",
         sum(r.queries for r in responses if not r.warm)),
        ("warm", stats.warm_runs, f"{warm_mean:.2f}",
         sum(r.queries for r in responses if r.warm)),
    ]
    print_table(
        f"Service sweep — {DOMAIN}, {N_REQUESTS} requests, 2 tenants "
        f"({rps:.1f} req/s, warm/cold = {warm_mean / cold_mean:.1%})",
        ("epoch start", "runs", "mean sim-sec", "engine queries"),
        rows,
    )

    # The reason the service exists: published cache epochs make every
    # follow-up run drastically cheaper than the cold one.
    assert warm_mean <= cold_mean * MAX_WARM_COLD_RATIO, (
        f"warm runs cost {warm_mean:.2f} sim-sec vs cold "
        f"{cold_mean:.2f} — the warm epoch saved too little")
    # Warm runs re-ask no engine queries at all on this workload: every
    # request is the same dataset, fully absorbed by the preload.
    assert all(r.queries == 0 for r in responses if r.warm)

    emit_bench(
        "BENCH_SERVICE_JSON",
        "service-sweep",
        workload={
            "domain": DOMAIN,
            "n_requests": N_REQUESTS,
            "n_interfaces": N_INTERFACES,
            "seed": BENCH_SEED,
        },
        metrics={
            "completed": stats.completed,
            "cold_runs": stats.cold_runs,
            "warm_runs": stats.warm_runs,
            "cold_mean_sim_seconds": cold_mean,
            "warm_mean_sim_seconds": warm_mean,
            "warm_cold_ratio": warm_mean / cold_mean,
            "warm_engine_queries":
                sum(r.queries for r in responses if r.warm),
            "requests_per_second": rps,
            "wall_seconds": elapsed,
        },
        tolerances={
            "completed": TOL_EXACT,
            "cold_runs": TOL_EXACT,
            "warm_runs": TOL_EXACT,
            "cold_mean_sim_seconds": TOL_TIGHT,
            "warm_mean_sim_seconds": TOL_TIGHT,
            "warm_cold_ratio": TOL_TIGHT,
            "warm_engine_queries": TOL_EXACT,
            "requests_per_second": TOL_SPEEDUP,
            "wall_seconds": TOL_WALL,
        },
        default="BENCH_service.json",
    )
