"""Fault-rate sweep: graceful degradation under an increasingly hostile Web.

The paper's system implicitly survived the real 2006 Web; this benchmark
makes that resilience measurable. One domain's pipeline runs under fault
rates from 0% to 50%: accuracy (F-1) must degrade smoothly — never crash,
never collapse to zero — while the degradation report and the ``*_retry``
stopwatch accounts quantify what surviving each rate costs. The 0% row
doubles as a regression guard: it must be bit-identical to a run without
the resilience layer at all. Every sweep run is instrumented and audited
by the invariant checker — the conservation laws must hold at every
fault rate, not just the friendly ones.

The measured numbers are exported as ``BENCH_fault.json`` (path
override: ``BENCH_FAULT_JSON``) as a versioned bench envelope
(:mod:`repro.bench`) so CI can gate degradation trends with ``repro
bench diff``.
"""

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import build_domain_dataset
from repro.io import run_result_to_dict
from repro.obs import NO_PROVENANCE_DIVERGENCE, ObsConfig, check_run, diff_runs
from repro.resilience import FaultProfile, ResilienceConfig

from .conftest import (
    BENCH_SEED,
    TOL_COUNT,
    TOL_SCORE,
    emit_bench,
    print_table,
)

DOMAIN = "book"
N_INTERFACES = 10
FAULT_RATES = (0.0, 0.1, 0.2, 0.3, 0.5)


def run_at(rate: float):
    config = WebIQConfig(
        resilience=ResilienceConfig(
            profile=FaultProfile(fault_rate=rate, seed=BENCH_SEED)),
        obs=ObsConfig(),
    )
    dataset = build_domain_dataset(DOMAIN, N_INTERFACES, BENCH_SEED)
    result = WebIQMatcher(config).run(dataset)
    invariants = check_run(result)
    assert invariants.ok, f"rate {rate:.0%}: {invariants.summary()}"
    return result


@pytest.mark.benchmark(group="fault-sweep")
def test_fault_rate_sweep(benchmark):
    results = {rate: run_at(rate) for rate in FAULT_RATES}

    benchmark.pedantic(lambda: run_at(0.3), rounds=1, iterations=1)

    clean = WebIQMatcher(WebIQConfig(obs=ObsConfig())).run(
        build_domain_dataset(DOMAIN, N_INTERFACES, BENCH_SEED))

    rows = []
    for rate in FAULT_RATES:
        result = results[rate]
        degradation = result.degradation
        retry_minutes = sum(
            result.stopwatch.minutes(account)
            for account in result.stopwatch.seconds_by_account
            if account.endswith("_retry")
        )
        rows.append((
            f"{rate:.0%}",
            f"{result.metrics.f1:.3f}",
            f"{result.acquisition.final_success_rate:.1f}",
            degradation.total_faults,
            degradation.total_retries,
            f"{retry_minutes:.1f}",
            f"{result.stopwatch.total_minutes:.1f}",
        ))
    print_table(
        f"Fault sweep — {DOMAIN}, {N_INTERFACES} interfaces "
        "(F-1 must fall gently, never to 0)",
        ("faults", "F1", "acq%", "injected", "retries", "retry min",
         "total min"),
        rows,
    )

    # F-1 degrades smoothly: positive everywhere, and never a cliff the
    # surviving evidence cannot explain.
    for rate in FAULT_RATES:
        assert results[rate].metrics.f1 > 0.0, f"collapsed at {rate:.0%}"

    # the 0% run is the pristine pipeline, bit for bit
    zero = results[0.0]
    assert zero.metrics == clean.metrics
    assert zero.stopwatch.seconds_by_account == clean.stopwatch.seconds_by_account

    # ... and it made the same decisions for the same recorded reasons:
    # the run diff must find no provenance divergence against the
    # resilience-free run.
    diff = diff_runs(run_result_to_dict(zero), run_result_to_dict(clean))
    assert not diff.provenance_diverged, diff.summary()
    assert NO_PROVENANCE_DIVERGENCE in diff.summary()

    # a flakier Web can only cost more simulated wall time
    totals = [results[rate].stopwatch.total_seconds for rate in FAULT_RATES]
    assert totals == sorted(totals)

    worst = results[FAULT_RATES[-1]]
    emit_bench(
        "BENCH_FAULT_JSON",
        "fault-sweep",
        workload={
            "domain": DOMAIN,
            "n_interfaces": N_INTERFACES,
            "seed": BENCH_SEED,
            "fault_rates": list(FAULT_RATES),
        },
        metrics={
            "f1_at_0": zero.metrics.f1,
            "f1_at_worst": worst.metrics.f1,
            "faults_at_worst": worst.degradation.total_faults,
            "retries_at_worst": worst.degradation.total_retries,
            "overhead_minutes_at_0": zero.stopwatch.total_minutes,
            "overhead_minutes_at_worst": worst.stopwatch.total_minutes,
        },
        tolerances={
            "f1_at_0": TOL_SCORE,
            "f1_at_worst": TOL_SCORE,
            "faults_at_worst": TOL_COUNT,
            "retries_at_worst": TOL_COUNT,
            "overhead_minutes_at_0": TOL_COUNT,
            "overhead_minutes_at_worst": TOL_COUNT,
        },
        detail={
            "f1_by_rate": {
                f"{rate:.2f}": results[rate].metrics.f1
                for rate in FAULT_RATES
            },
        },
        default="BENCH_fault.json",
    )
