"""Supervisor benchmark: what self-healing recovery saves and costs.

One domain's pipeline runs under the :class:`RunSupervisor` against a
deterministic chaos schedule — killed twice at journal boundaries, with
the journal's tail record torn between the second death and its resume.
The supervisor must absorb every failure without intervention and finish
with an export byte-identical to the uninterrupted run; the measured
numbers quantify the recovery economics: per-attempt round trips restored
by resume (what a cold restart would have re-paid), round trips wasted in
crashes, and records salvaged from the torn journal.

The numbers are exported as ``BENCH_supervisor.json`` (path override:
``BENCH_SUPERVISOR_JSON``) as a versioned bench envelope
(:mod:`repro.bench`) so CI can gate self-healing trends with ``repro
bench diff``.
"""

import os
import tempfile
import time

import pytest

from repro.checkpoint import CheckpointConfig
from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import build_domain_dataset
from repro.io import run_result_to_dict
from repro.supervisor import RunSupervisor

from .conftest import (
    BENCH_SEED,
    TOL_COUNT,
    TOL_EXACT,
    TOL_SCORE,
    TOL_WALL,
    emit_bench,
    print_table,
)

DOMAIN = "book"
N_INTERFACES = 8


def comparable(result):
    payload = run_result_to_dict(result)
    for key in ("checkpoint", "format", "supervisor"):
        payload.pop(key, None)
    return payload


def corrupt_tail_record(directory):
    records = sorted(
        name for name in os.listdir(directory)
        if name.startswith("record-") and name.endswith(".json"))
    with open(os.path.join(directory, records[-1]), "w") as handle:
        handle.write('{"format": 1, "crc": 0, "body"')


@pytest.mark.benchmark(group="supervisor-sweep")
def test_supervisor_sweep(benchmark):
    workdir = tempfile.mkdtemp(prefix="bench-supervisor-")

    dataset = build_domain_dataset(DOMAIN, N_INTERFACES, BENCH_SEED)
    started = time.perf_counter()
    full_result = WebIQMatcher(WebIQConfig(checkpoint=CheckpointConfig(
        directory=os.path.join(workdir, "uninterrupted")))).run(dataset)
    full_secs = time.perf_counter() - started
    boundaries = full_result.checkpoint.boundaries
    kill_schedule = (boundaries // 3, 2 * boundaries // 3, None)

    def chaos(attempt_index, directory):
        if attempt_index == 1:
            corrupt_tail_record(directory)

    def supervised_run():
        config = WebIQConfig(checkpoint=CheckpointConfig(
            directory=os.path.join(workdir, "journal")))
        chaos_dataset = build_domain_dataset(DOMAIN, N_INTERFACES,
                                             BENCH_SEED)
        started = time.perf_counter()
        result = RunSupervisor(
            config, kill_schedule=kill_schedule, chaos=chaos).run(
                chaos_dataset)
        return result, time.perf_counter() - started

    result, supervised_secs = benchmark.pedantic(
        supervised_run, rounds=1, iterations=1)
    report = result.supervisor

    # The contract the subsystem exists for: any kill/corruption schedule
    # heals to the uninterrupted run's bytes, with the books balanced.
    assert comparable(result) == comparable(full_result)
    # Two kills + one corruption discovered at the next open = 3 restarts.
    assert report.completed and report.restarts == 3
    assert [a.outcome for a in report.attempts] == [
        "preemption", "preemption", "corruption", "completed"]
    assert report.salvages == 1 and report.salvaged_records == 1
    assert report.total_round_trips == (
        result.checkpoint.replayed_round_trips
        + result.checkpoint.fresh_round_trips
        + report.wasted_round_trips
        + report.salvage_trimmed_round_trips)

    attempts = [
        {
            "index": a.index,
            "outcome": a.outcome,
            "round_trips": a.round_trips,
            "committed_round_trips": a.committed_round_trips,
            # what resume restored at attempt start = the round trips a
            # cold restart would have re-paid before reaching new work
            "round_trips_saved_vs_cold_restart": a.restored_round_trips,
            "salvaged_records": (
                a.salvage.quarantined_records if a.salvage else 0),
        }
        for a in report.attempts
    ]
    rows = [
        (a["index"], a["outcome"], a["round_trips"],
         a["round_trips_saved_vs_cold_restart"], a["salvaged_records"])
        for a in attempts
    ]
    print_table(
        f"Supervisor sweep — {DOMAIN}, {N_INTERFACES} interfaces "
        f"(kills at {kill_schedule[0]}/{kill_schedule[1]} of "
        f"{boundaries} boundaries + torn tail record: "
        f"{report.restarts} restarts, {report.salvaged_records} records "
        f"salvaged, {report.wasted_round_trips} round trips wasted)",
        ("attempt", "outcome", "round trips", "restored", "salvaged"),
        rows,
    )

    emit_bench(
        "BENCH_SUPERVISOR_JSON",
        "supervisor-sweep",
        workload={
            "domain": DOMAIN,
            "n_interfaces": N_INTERFACES,
            "seed": BENCH_SEED,
            "kill_schedule": [k for k in kill_schedule if k is not None],
        },
        metrics={
            "boundaries": boundaries,
            "restarts": report.restarts,
            "salvages": report.salvages,
            "salvaged_records": report.salvaged_records,
            "salvage_trimmed_round_trips":
                report.salvage_trimmed_round_trips,
            "wasted_round_trips": report.wasted_round_trips,
            "total_round_trips": report.total_round_trips,
            "uninterrupted_round_trips":
                full_result.checkpoint.fresh_round_trips,
            "backoff_seconds": report.backoff_seconds,
            "f1": result.metrics.f1,
            "uninterrupted_wall_seconds": full_secs,
            "supervised_wall_seconds": supervised_secs,
        },
        tolerances={
            "boundaries": TOL_EXACT,
            "restarts": TOL_EXACT,
            "salvages": TOL_EXACT,
            "salvaged_records": TOL_EXACT,
            "salvage_trimmed_round_trips": TOL_COUNT,
            "wasted_round_trips": TOL_COUNT,
            "total_round_trips": TOL_COUNT,
            "uninterrupted_round_trips": TOL_COUNT,
            "backoff_seconds": TOL_COUNT,
            "f1": TOL_SCORE,
            "uninterrupted_wall_seconds": TOL_WALL,
            "supervised_wall_seconds": TOL_WALL,
        },
        detail={"attempts": attempts},
        default="BENCH_supervisor.json",
    )
