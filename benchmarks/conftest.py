"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper over the full
five-domain, 20-interface evaluation set. Pipeline runs are expensive, so a
session-scoped :class:`RunCache` memoises them; each benchmark then times
its own core regeneration step honestly (via ``benchmark.pedantic`` with a
single round) and prints a paper-vs-measured table.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher, WebIQRunResult
from repro.datasets import DOMAINS, DomainDataset, build_domain_dataset

#: the seed every benchmark uses; change to probe robustness
BENCH_SEED = 1

#: named pipeline configurations used across figures
CONFIGS: Dict[str, WebIQConfig] = {
    "baseline": WebIQConfig(enable_surface=False, enable_attr_deep=False,
                            enable_attr_surface=False),
    "surface": WebIQConfig(enable_surface=True, enable_attr_deep=False,
                           enable_attr_surface=False),
    "surface+deep": WebIQConfig(enable_surface=True, enable_attr_deep=True,
                                enable_attr_surface=False),
    "webiq": WebIQConfig(),
    "webiq+threshold": WebIQConfig(threshold=0.1),
}


class RunCache:
    """Memoised pipeline runs keyed by (domain, config name)."""

    def __init__(self) -> None:
        self._datasets: Dict[str, DomainDataset] = {}
        self._runs: Dict[Tuple[str, str], WebIQRunResult] = {}

    def dataset(self, domain: str) -> DomainDataset:
        if domain not in self._datasets:
            self._datasets[domain] = build_domain_dataset(
                domain, n_interfaces=20, seed=BENCH_SEED)
        return self._datasets[domain]

    def run(self, domain: str, config_name: str) -> WebIQRunResult:
        key = (domain, config_name)
        if key not in self._runs:
            matcher = WebIQMatcher(CONFIGS[config_name])
            self._runs[key] = matcher.run(self.dataset(domain))
        return self._runs[key]


@pytest.fixture(scope="session")
def cache() -> RunCache:
    return RunCache()


def print_table(title: str, header, rows) -> None:
    """Render one reproduction table to stdout (visible with ``-s``)."""
    widths = [max(len(str(header[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
