"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper over the full
five-domain, 20-interface evaluation set. Pipeline runs are expensive, so a
session-scoped :class:`RunCache` memoises them; each benchmark then times
its own core regeneration step honestly (via ``benchmark.pedantic`` with a
single round) and prints a paper-vs-measured table.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from typing import Any, Dict, Mapping, Optional, Tuple

import pytest

from repro.bench import make_envelope, write_bench
from repro.core.pipeline import WebIQConfig, WebIQMatcher, WebIQRunResult
from repro.datasets import DOMAINS, DomainDataset, build_domain_dataset

#: the seed every benchmark uses; change to probe robustness
BENCH_SEED = 1

#: named pipeline configurations used across figures
CONFIGS: Dict[str, WebIQConfig] = {
    "baseline": WebIQConfig(enable_surface=False, enable_attr_deep=False,
                            enable_attr_surface=False),
    "surface": WebIQConfig(enable_surface=True, enable_attr_deep=False,
                           enable_attr_surface=False),
    "surface+deep": WebIQConfig(enable_surface=True, enable_attr_deep=True,
                                enable_attr_surface=False),
    "webiq": WebIQConfig(),
    "webiq+threshold": WebIQConfig(threshold=0.1),
}


class RunCache:
    """Memoised pipeline runs keyed by (domain, config name)."""

    def __init__(self) -> None:
        self._datasets: Dict[str, DomainDataset] = {}
        self._runs: Dict[Tuple[str, str], WebIQRunResult] = {}

    def dataset(self, domain: str) -> DomainDataset:
        if domain not in self._datasets:
            self._datasets[domain] = build_domain_dataset(
                domain, n_interfaces=20, seed=BENCH_SEED)
        return self._datasets[domain]

    def run(self, domain: str, config_name: str) -> WebIQRunResult:
        key = (domain, config_name)
        if key not in self._runs:
            matcher = WebIQMatcher(CONFIGS[config_name])
            self._runs[key] = matcher.run(self.dataset(domain))
        return self._runs[key]


@pytest.fixture(scope="session")
def cache() -> RunCache:
    return RunCache()


def emit_bench(
    env_var: str,
    name: str,
    workload: Mapping[str, Any],
    metrics: Mapping[str, Any],
    tolerances: Mapping[str, Mapping[str, Any]],
    *,
    detail: Optional[Mapping[str, Any]] = None,
    profile_digest: Optional[int] = None,
    default: Optional[str] = None,
) -> Optional[str]:
    """Write a versioned bench envelope if ``env_var`` names a path.

    Every sweep benchmark funnels its artifact through here, so each
    ``BENCH_*.json`` carries the same schema (format + CRC + workload
    fingerprint + tolerance bands) and ``repro bench diff`` can gate any
    of them against a committed baseline. Returns the path written, or
    ``None`` when the env var is unset (local runs that only print).
    """
    path = os.environ.get(env_var) or default
    if not path:
        return None
    envelope = make_envelope(
        name, workload, metrics, tolerances,
        detail=detail, profile_digest=profile_digest,
    )
    write_bench(path, envelope)
    print(f"\nwrote {path} (bench={name}, {len(metrics)} gated metrics)")
    return path


#: Tolerance shorthands shared by the sweep benchmarks. Deterministic
#: metrics gate tightly; wall-clock metrics gate very loosely, because a
#: loaded CI runner can easily be several times slower without any code
#: change — real slowdowns surface in the deterministic work metrics.
TOL_EXACT = {"rel": 0.0, "direction": "two_sided"}
TOL_TIGHT = {"rel": 0.02, "direction": "two_sided"}
TOL_COUNT = {"rel": 0.02, "direction": "lower_is_better"}
TOL_SCORE = {"rel": 0.02, "direction": "higher_is_better"}
TOL_WALL = {"rel": 10.0, "direction": "lower_is_better"}
TOL_SPEEDUP = {"rel": 10.0, "direction": "higher_is_better"}
TOL_INFO = {"rel": 0.0, "direction": "info"}


def print_table(title: str, header, rows) -> None:
    """Render one reproduction table to stdout (visible with ``-s``)."""
    widths = [max(len(str(header[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
