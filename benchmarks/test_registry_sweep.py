"""Registry sweep: blocking's candidate-pair reduction, equivalence held.

Every domain's 20-interface set is matched twice: batch IceQ (full O(n²)
pair evaluation) and incremental registry assimilation (blocking index +
sparse cache). The ISSUE's floor: **≥ 60% candidate-pair reduction** per
domain, with the induced matching byte-identical to batch on every one —
the reduction must never buy a different answer.

Also measured: the marginal cost of assimilating interface #20 into a
19-interface registry, the operation the batch matcher cannot do without
re-evaluating everything.

The measured numbers are exported as ``BENCH_registry.json`` (path
override: ``BENCH_REGISTRY_JSON``) as a versioned bench envelope
(:mod:`repro.bench`) so CI gates reduction trends with ``repro bench
diff``.
"""

import statistics
import time

import pytest

from repro.datasets import DOMAINS, build_domain_dataset
from repro.io import induced_matching_to_dict
from repro.matching.clustering import IceQMatcher
from repro.registry import RegistryAssimilator, build_registry
from repro.registry.assimilate import batch_induced_clusters, induced_clusters

from .conftest import (
    BENCH_SEED,
    TOL_COUNT,
    TOL_EXACT,
    TOL_SCORE,
    TOL_WALL,
    emit_bench,
    print_table,
)

N_INTERFACES = 20
#: the ISSUE's floor: fraction of cross pairs blocking must skip
MIN_REDUCTION = 0.60


def batch_once(interfaces):
    ordered = sorted(interfaces, key=lambda i: i.interface_id)
    started = time.perf_counter()
    result = IceQMatcher().match(ordered, threshold=0.0)
    elapsed = time.perf_counter() - started
    clusters = tuple(tuple(sorted(c.keys)) for c in result.clusters)
    return clusters, result.similarity_evaluations, elapsed


def incremental_once(domain, interfaces):
    started = time.perf_counter()
    store, report = build_registry(domain, interfaces)
    elapsed = time.perf_counter() - started
    return store, report, elapsed


def marginal_add(domain, interfaces):
    """Time to assimilate interface #20 into a 19-interface registry."""
    store, _ = build_registry(domain, interfaces[:-1])
    assimilator = RegistryAssimilator(store)
    started = time.perf_counter()
    assimilator.assimilate(interfaces[-1])
    return time.perf_counter() - started


@pytest.mark.benchmark(group="registry-sweep")
def test_registry_sweep(benchmark):
    per_domain = {}
    rows = []
    for domain in DOMAINS:
        dataset = build_domain_dataset(domain, N_INTERFACES, BENCH_SEED)
        interfaces = list(dataset.interfaces)

        batch_clusters, batch_evals, batch_seconds = batch_once(interfaces)
        store, report, incremental_seconds = incremental_once(
            domain, interfaces)
        add_seconds = marginal_add(domain, interfaces)

        # equivalence first: the reduction is worthless if it changes
        # one byte of the answer
        assert report.induced == batch_clusters, (
            f"{domain}: incremental diverged from batch IceQ")
        assert batch_induced_clusters(store) == induced_clusters(store)[0]

        reduction = store.stats.reduction
        assert reduction >= MIN_REDUCTION, (
            f"{domain}: blocking skipped only {reduction:.1%} of cross "
            f"pairs (floor {MIN_REDUCTION:.0%})")

        per_domain[domain] = {
            "n_views": store.n_views,
            "n_entries": len(store.entries),
            "batch_evaluations": batch_evals,
            "incremental_evaluations": store.stats.evaluated,
            "blocked": store.stats.blocked,
            "pairs_considered": store.stats.pairs_considered,
            "reduction": reduction,
            "batch_seconds": batch_seconds,
            "incremental_build_seconds": incremental_seconds,
            "marginal_add_seconds": add_seconds,
            "induced_clusters": len(
                induced_matching_to_dict(store)["clusters"]),
        }
        rows.append((
            domain, store.n_views, batch_evals, store.stats.evaluated,
            f"{reduction:.1%}", f"{batch_seconds:.2f}",
            f"{incremental_seconds:.2f}", f"{add_seconds * 1000:.1f}",
        ))

    benchmark.pedantic(
        lambda: incremental_once(
            DOMAINS[0],
            list(build_domain_dataset(
                DOMAINS[0], N_INTERFACES, BENCH_SEED).interfaces)),
        rounds=1, iterations=1)

    mean_reduction = statistics.mean(
        d["reduction"] for d in per_domain.values())
    print_table(
        f"Registry sweep — {N_INTERFACES} interfaces/domain (mean "
        f"candidate-pair reduction {mean_reduction:.1%}, floor "
        f"{MIN_REDUCTION:.0%}; incremental == batch on every domain)",
        ("domain", "views", "batch evals", "incr evals", "reduction",
         "batch s", "build s", "add #20 ms"),
        rows,
    )

    emit_bench(
        "BENCH_REGISTRY_JSON",
        "registry-sweep",
        workload={
            "domains": list(DOMAINS),
            "n_interfaces": N_INTERFACES,
            "seed": BENCH_SEED,
            "min_reduction": MIN_REDUCTION,
        },
        metrics={
            "mean_reduction": mean_reduction,
            "total_batch_evaluations": sum(
                d["batch_evaluations"] for d in per_domain.values()),
            "total_incremental_evaluations": sum(
                d["incremental_evaluations"] for d in per_domain.values()),
            "total_blocked": sum(d["blocked"] for d in per_domain.values()),
            "equivalent_to_batch": True,
            "total_batch_seconds": sum(
                d["batch_seconds"] for d in per_domain.values()),
            "total_incremental_seconds": sum(
                d["incremental_build_seconds"] for d in per_domain.values()),
        },
        tolerances={
            "mean_reduction": TOL_SCORE,
            "total_batch_evaluations": TOL_COUNT,
            "total_incremental_evaluations": TOL_COUNT,
            "total_blocked": TOL_SCORE,
            "equivalent_to_batch": TOL_EXACT,
            "total_batch_seconds": TOL_WALL,
            "total_incremental_seconds": TOL_WALL,
        },
        detail={"domains": per_domain},
        default="BENCH_registry.json",
    )
