"""Cache sweep: what the shared query cache saves, and that it costs nothing.

One domain's pipeline runs with the query cache off and on. The cached run
must be *bit-identical* in every payload — acquired instances, clusters,
metrics — while issuing at least 30% fewer real search-engine round trips
(paper §5 charges each one 0.1–0.5 s, so saved queries are saved Figure 8
minutes). Process wall-clock is measured and printed for reference; it is
dominated by simulation work, so only the query reduction is asserted
hard.

The measured numbers are exported as ``BENCH_cache.json`` (path override:
``BENCH_CACHE_JSON``) as a versioned bench envelope (:mod:`repro.bench`)
so CI gates query-reduction trends with ``repro bench diff``.
"""

import time

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import build_domain_dataset
from repro.io import run_result_to_dict
from repro.obs import (
    NO_PROVENANCE_DIVERGENCE,
    ObsConfig,
    build_profile,
    diff_runs,
)
from repro.perf import CacheConfig

from .conftest import (
    BENCH_SEED,
    TOL_COUNT,
    TOL_SCORE,
    TOL_TIGHT,
    TOL_WALL,
    emit_bench,
    print_table,
)

#: the full 20-interface evaluation set of the domain with the paper's
#: most label-redundant interfaces — repeated labels re-ask the same
#: extraction and validation queries, which is the redundancy the cache
#: exists to absorb
DOMAIN = "job"
N_INTERFACES = 20
#: the ISSUE's floor: the cache must absorb at least this share of queries
MIN_QUERY_REDUCTION = 0.30


def run_once(cache):
    dataset = build_domain_dataset(DOMAIN, N_INTERFACES, BENCH_SEED)
    started = time.perf_counter()
    result = WebIQMatcher(WebIQConfig(cache=cache, obs=ObsConfig())).run(
        dataset)
    elapsed = time.perf_counter() - started
    payload = {
        "instances": {
            f"{interface.interface_id}/{attribute.name}":
                list(attribute.acquired)
            for interface in dataset.interfaces
            for attribute in interface.attributes
        },
        "clusters": sorted(
            sorted([list(m.key) for m in cluster.members])
            for cluster in result.match_result.clusters
        ),
        "metrics": [
            result.metrics.precision,
            result.metrics.recall,
            result.metrics.f1,
        ],
    }
    return payload, result, dataset.engine.query_count, elapsed


@pytest.mark.benchmark(group="cache-sweep")
def test_cache_sweep(benchmark):
    uncached_payload, uncached_result, uncached_queries, uncached_secs = \
        run_once(cache=None)
    cached_payload, cached_result, cached_queries, cached_secs = \
        run_once(cache=CacheConfig())

    benchmark.pedantic(lambda: run_once(cache=CacheConfig()),
                       rounds=1, iterations=1)

    stats = cached_result.cache
    reduction = 1.0 - cached_queries / uncached_queries
    speedup = uncached_secs / cached_secs if cached_secs else float("inf")
    rows = [
        ("uncached", uncached_queries, "-", "-",
         f"{uncached_secs:.2f}", f"{uncached_result.metrics.f1:.3f}"),
        ("cached", cached_queries, stats.hits,
         f"{stats.hit_rate:.1%}", f"{cached_secs:.2f}",
         f"{cached_result.metrics.f1:.3f}"),
    ]
    print_table(
        f"Cache sweep — {DOMAIN}, {N_INTERFACES} interfaces "
        f"({reduction:.1%} fewer real queries, {speedup:.2f}x wall-clock)",
        ("run", "real queries", "hits", "hit rate", "seconds", "F1"),
        rows,
    )

    # The cache may never change an answer, only avoid re-asking.
    assert cached_payload == uncached_payload

    # Stronger than answer equality: the cached run must have made every
    # decision for the same recorded reason — the run diff may find no
    # provenance divergence between the cached and uncached runs.
    diff = diff_runs(
        run_result_to_dict(uncached_result), run_result_to_dict(cached_result)
    )
    assert not diff.provenance_diverged, diff.summary()
    assert NO_PROVENANCE_DIVERGENCE in diff.summary()

    # The ISSUE's floor: at least 30% of real round trips absorbed.
    assert reduction >= MIN_QUERY_REDUCTION, (
        f"cache absorbed only {reduction:.1%} of queries "
        f"({uncached_queries} -> {cached_queries})")

    # Simulated overhead (Figure 8's currency) can only shrink.
    assert cached_result.stopwatch.total_seconds <= \
        uncached_result.stopwatch.total_seconds

    emit_bench(
        "BENCH_CACHE_JSON",
        "cache-sweep",
        workload={
            "domain": DOMAIN,
            "n_interfaces": N_INTERFACES,
            "seed": BENCH_SEED,
        },
        metrics={
            "uncached_queries": uncached_queries,
            "cached_queries": cached_queries,
            "query_reduction": reduction,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "uncached_overhead_minutes":
                uncached_result.stopwatch.total_minutes,
            "cached_overhead_minutes": cached_result.stopwatch.total_minutes,
            "f1": cached_result.metrics.f1,
            "uncached_wall_seconds": uncached_secs,
            "cached_wall_seconds": cached_secs,
        },
        tolerances={
            "uncached_queries": TOL_COUNT,
            "cached_queries": TOL_COUNT,
            "query_reduction": TOL_SCORE,
            "cache_hits": TOL_TIGHT,
            "cache_misses": TOL_COUNT,
            "hit_rate": TOL_SCORE,
            "uncached_overhead_minutes": TOL_COUNT,
            "cached_overhead_minutes": TOL_COUNT,
            "f1": TOL_SCORE,
            "uncached_wall_seconds": TOL_WALL,
            "cached_wall_seconds": TOL_WALL,
        },
        # the deterministic run fingerprint: a digest drift between two
        # artifacts with equal metrics means the workload itself changed
        profile_digest=build_profile(cached_result)["digest"],
        default="BENCH_cache.json",
    )
