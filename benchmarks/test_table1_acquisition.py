"""Table 1, columns 6-7: instance-acquisition success rates.

For the attributes with no instances, the paper counts an acquisition
successful when at least 10 instances are obtained, and reports the success
rate with the Surface component only (column 6) and with Deep-Web
borrowing added (column 7).

The benchmark times a full acquisition pass over one domain.
"""

import pytest

from repro.core.acquisition import InstanceAcquirer
from repro.datasets import DOMAINS

from .conftest import print_table

#: Table 1 columns 6-7 as printed in the paper.
PAPER = {
    "airfare": (19.0, 81.1),
    "auto": (58.7, 82.2),
    "book": (84.4, 84.4),
    "job": (72.2, 72.2),
    "realestate": (49.1, 56.3),
}


def _acquire(dataset):
    dataset.clear_acquired()
    dataset.reset_counters()
    acquirer = InstanceAcquirer(dataset.engine, dataset.sources)
    return acquirer.acquire(
        dataset.interfaces,
        domain_keywords=dataset.spec.keyword_terms(),
        object_name=dataset.spec.object_name,
    )


@pytest.mark.benchmark(group="table1")
def test_table1_acquisition_success(benchmark, cache):
    rates = {}
    for domain in DOMAINS:
        report = cache.run(domain, "webiq").acquisition
        rates[domain] = (report.surface_success_rate,
                         report.final_success_rate)

    benchmark.pedantic(_acquire, args=(cache.dataset("book"),),
                       rounds=1, iterations=1)

    rows = []
    for domain in DOMAINS:
        measured = rates[domain]
        paper = PAPER[domain]
        rows.append((
            domain,
            f"{measured[0]:.1f} ({paper[0]})",
            f"{measured[1]:.1f} ({paper[1]})",
        ))
    avg_measured = tuple(
        sum(rates[d][i] for d in DOMAINS) / len(DOMAINS) for i in (0, 1))
    rows.append(("average",
                 f"{avg_measured[0]:.1f} (56.7)",
                 f"{avg_measured[1]:.1f} (75.2)"))
    print_table(
        "Table 1 cols 6-7 — acquisition success %, measured (paper)",
        ("domain", "Surface", "Surface+Deep"),
        rows,
    )

    surface = {d: rates[d][0] for d in DOMAINS}
    final = {d: rates[d][1] for d in DOMAINS}
    # Shapes: airfare hardest for Surface, book easiest; the Deep step
    # raises airfare and auto substantially and leaves book/job unchanged-ish.
    assert min(surface, key=surface.get) == "airfare"
    assert max(surface, key=surface.get) == "book"
    assert final["airfare"] >= surface["airfare"] + 30
    assert final["auto"] >= surface["auto"] + 15
    assert final["book"] <= surface["book"] + 10
    assert final["job"] <= surface["job"] + 15
    for domain in DOMAINS:
        assert final[domain] >= surface[domain]
