"""Parallel sweep: the speculative executor's wall-clock payoff.

Every domain's full 20-interface pipeline runs at worker-pool sizes 1, 4
and 8 under a *calibrated* simulated I/O latency: a dry serial run at
latency 0 measures the domain's pure CPU cost ``C`` and its raw round-trip
count ``Q``, then the sweep charges ``8·C/Q`` real seconds per round trip
— i.e. an I/O budget ~8× the compute budget, the regime the paper's
0.1–0.5 s-per-query Web costs put the real system in. The ISSUE's floor:
**≥ 1.5× aggregate wall-clock speedup at 4 workers**, with every pool
size exporting byte-identical payloads (the executor's core contract —
asserted here too, on the full evaluation set).

Checkpointing and fault injection are off: this benchmark isolates the
overlap the executor wins, not the resilience machinery (the metamorphic
suite covers those interactions at tier 1).

The measured numbers are exported as ``BENCH_parallel.json`` (path
override: ``BENCH_PARALLEL_JSON``) as a versioned bench envelope
(:mod:`repro.bench`) so CI can gate speedup trends with ``repro bench
diff``.
"""

import json
import statistics
import time

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import DOMAINS, build_domain_dataset
from repro.io import run_result_to_dict

from .conftest import (
    BENCH_SEED,
    TOL_COUNT,
    TOL_SCORE,
    TOL_SPEEDUP,
    emit_bench,
    print_table,
)

N_INTERFACES = 20
POOL_SIZES = (1, 4, 8)
#: simulated I/O budget as a multiple of the domain's pure CPU budget
LATENCY_FACTOR = 8.0
#: the ISSUE's floor: aggregate wall-clock speedup at 4 workers
MIN_SPEEDUP_AT_4 = 1.5


def run_once(domain, workers, latency):
    dataset = build_domain_dataset(domain, N_INTERFACES, BENCH_SEED)
    started = time.perf_counter()
    result = WebIQMatcher(
        WebIQConfig(workers=workers, io_latency=latency)).run(dataset)
    elapsed = time.perf_counter() - started
    round_trips = dataset.engine.query_count + sum(
        source.probe_count for source in dataset.sources.values())
    payload = json.dumps(run_result_to_dict(result), sort_keys=True)
    return payload, result, round_trips, elapsed


def calibrate(domain):
    """Measure pure CPU cost and round trips; derive the per-call latency."""
    _, _, round_trips, cpu_seconds = run_once(domain, workers=1, latency=0.0)
    return cpu_seconds, round_trips, LATENCY_FACTOR * cpu_seconds / round_trips


@pytest.mark.benchmark(group="parallel-sweep")
def test_parallel_sweep(benchmark):
    per_domain = {}
    rows = []
    for domain in DOMAINS:
        cpu_seconds, round_trips, latency = calibrate(domain)
        timings = {}
        stats_by_pool = {}
        baseline_payload = None
        for workers in POOL_SIZES:
            payload, result, _, elapsed = run_once(domain, workers, latency)
            timings[workers] = elapsed
            stats_by_pool[workers] = result.exec_stats
            if baseline_payload is None:
                baseline_payload = payload
            else:
                # the contract the speedup must not buy its way out of
                assert payload == baseline_payload, (
                    f"{domain}: workers={workers} diverged from serial")
        speedup4 = timings[1] / timings[4]
        speedup8 = timings[1] / timings[8]
        stats4 = stats_by_pool[4]
        per_domain[domain] = {
            "cpu_seconds": cpu_seconds,
            "round_trips": round_trips,
            "io_latency": latency,
            "wall_seconds": {str(w): timings[w] for w in POOL_SIZES},
            "speedup_at_4": speedup4,
            "speedup_at_8": speedup8,
            "prefetch_hit_rate_at_4": (
                stats4.credits_consumed / stats4.credits_recorded
                if stats4.credits_recorded else 0.0),
            "sleeps_skipped_at_4": stats4.sleeps_skipped,
            "sleeps_paid_at_4": stats4.sleeps_paid,
        }
        rows.append((
            domain, round_trips, f"{latency * 1000:.2f}",
            f"{timings[1]:.2f}", f"{timings[4]:.2f}", f"{timings[8]:.2f}",
            f"{speedup4:.2f}x", f"{speedup8:.2f}x",
        ))

    benchmark.pedantic(
        lambda: run_once(DOMAINS[0], 4, per_domain[DOMAINS[0]]["io_latency"]),
        rounds=1, iterations=1)

    mean_speedup4 = statistics.mean(
        d["speedup_at_4"] for d in per_domain.values())
    mean_speedup8 = statistics.mean(
        d["speedup_at_8"] for d in per_domain.values())
    print_table(
        f"Parallel sweep — {N_INTERFACES} interfaces/domain, latency "
        f"{LATENCY_FACTOR:.0f}x CPU (mean {mean_speedup4:.2f}x @4, "
        f"{mean_speedup8:.2f}x @8)",
        ("domain", "round trips", "lat ms", "T1 s", "T4 s", "T8 s",
         "speedup@4", "speedup@8"),
        rows,
    )

    assert mean_speedup4 >= MIN_SPEEDUP_AT_4, (
        f"4-worker pool sped up wall-clock only {mean_speedup4:.2f}x "
        f"(floor {MIN_SPEEDUP_AT_4}x)")

    mean_prefetch_hit_rate = statistics.mean(
        d["prefetch_hit_rate_at_4"] for d in per_domain.values())
    emit_bench(
        "BENCH_PARALLEL_JSON",
        "parallel-sweep",
        workload={
            "domains": list(DOMAINS),
            "n_interfaces": N_INTERFACES,
            "seed": BENCH_SEED,
            "pool_sizes": list(POOL_SIZES),
            "latency_factor": LATENCY_FACTOR,
        },
        metrics={
            "total_round_trips": sum(
                d["round_trips"] for d in per_domain.values()),
            "mean_prefetch_hit_rate_at_4": mean_prefetch_hit_rate,
            "total_sleeps_skipped_at_4": sum(
                d["sleeps_skipped_at_4"] for d in per_domain.values()),
            "mean_speedup_at_4": mean_speedup4,
            "mean_speedup_at_8": mean_speedup8,
        },
        tolerances={
            "total_round_trips": TOL_COUNT,
            "mean_prefetch_hit_rate_at_4": TOL_SCORE,
            "total_sleeps_skipped_at_4": TOL_SCORE,
            "mean_speedup_at_4": TOL_SPEEDUP,
            "mean_speedup_at_8": TOL_SPEEDUP,
        },
        detail={"domains": per_domain},
        default="BENCH_parallel.json",
    )
