"""Figure 6: matching accuracy — baseline vs WebIQ vs WebIQ + threshold.

Regenerates the three bars per domain of the paper's Figure 6: F-1 of IceQ
alone (threshold 0), IceQ + WebIQ (threshold 0) and IceQ + WebIQ with the
clustering threshold τ = 0.1. Paper averages: 89.5 → 95.8 → 97.5.

The benchmark times one full WebIQ pipeline run (acquisition + matching).

The measured bars are exported as ``BENCH_accuracy.json`` (path override:
``BENCH_ACCURACY_JSON``) as a versioned bench envelope
(:mod:`repro.bench`) so CI can gate accuracy trends with ``repro bench
diff`` next to the cache sweep's query-reduction numbers.
"""

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import DOMAINS

from .conftest import TOL_SCORE, emit_bench, print_table

#: Figure 6 bars read off the paper's chart (approximate, in F-1 %).
PAPER = {
    "airfare": (86.0, 95.5, 97.0),
    "auto": (89.0, 95.0, 97.5),
    "book": (93.0, 97.2, 98.0),
    "job": (85.5, 97.2, 98.0),
    "realestate": (94.0, 98.5, 99.0),
}
PAPER_AVG = (89.5, 95.8, 97.5)

BARS = ("baseline", "webiq", "webiq+threshold")


@pytest.mark.benchmark(group="figure6")
def test_figure6_matching_accuracy(benchmark, cache):
    f1 = {
        domain: tuple(
            100.0 * cache.run(domain, bar).metrics.f1 for bar in BARS
        )
        for domain in DOMAINS
    }

    benchmark.pedantic(
        lambda: WebIQMatcher(WebIQConfig()).run(cache.dataset("auto")),
        rounds=1, iterations=1,
    )

    rows = [
        (domain,) + tuple(
            f"{f1[domain][i]:.1f} ({PAPER[domain][i]})" for i in range(3))
        for domain in DOMAINS
    ]
    avg = tuple(sum(f1[d][i] for d in DOMAINS) / len(DOMAINS)
                for i in range(3))
    rows.append(("average",) + tuple(
        f"{avg[i]:.1f} ({PAPER_AVG[i]})" for i in range(3)))
    print_table(
        "Figure 6 — F-1 %, measured (paper)",
        ("domain", "baseline", "baseline+WebIQ", "+threshold"),
        rows,
    )

    # The headline shape: WebIQ improves accuracy in every domain, and the
    # average improvement is substantial (paper: +6.3 points).
    for domain in DOMAINS:
        assert f1[domain][1] >= f1[domain][0], domain
    assert avg[1] - avg[0] >= 3.0
    assert avg[1] >= 95.0
    # Thresholding trades recall for precision; in this reproduction the
    # τ=0 precision is already near-saturated (cleaner synthetic labels
    # than the ICQ data), so τ=0.1 must stay within a few points of the
    # un-thresholded run rather than beat it — see EXPERIMENTS.md.
    assert avg[2] >= avg[1] - 4.0
    for domain in DOMAINS:
        strict = cache.run(domain, "webiq+threshold").metrics
        loose = cache.run(domain, "webiq").metrics
        # thresholding must not materially degrade precision anywhere
        assert strict.precision >= loose.precision - 0.005, domain

    emit_bench(
        "BENCH_ACCURACY_JSON",
        "figure6-accuracy",
        workload={
            "domains": list(DOMAINS),
            "bars": list(BARS),
            "n_interfaces": 20,
        },
        metrics={
            f"f1_avg_{bar}": avg[i] for i, bar in enumerate(BARS)
        },
        tolerances={
            f"f1_avg_{bar}": TOL_SCORE for bar in BARS
        },
        detail={
            "f1_by_domain": {
                domain: dict(zip(BARS, f1[domain])) for domain in DOMAINS
            },
            "paper_f1_by_domain": {
                domain: dict(zip(BARS, PAPER[domain])) for domain in DOMAINS
            },
            "paper_f1_average": dict(zip(BARS, PAPER_AVG)),
        },
        default="BENCH_accuracy.json",
    )
