"""Seed stability: the headline gain is a property, not a lucky draw.

The paper's figures come from one fixed dataset; our datasets are sampled,
so this bench re-runs baseline vs WebIQ across additional seeds and reports
mean and spread of the F-1 gain. The headline claim must survive: WebIQ
improves the average in every seed.
"""

import statistics

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import DOMAINS, build_domain_dataset

from .conftest import print_table

SEEDS = (1, 2, 3)
BASELINE = WebIQConfig(enable_surface=False, enable_attr_deep=False,
                       enable_attr_surface=False)


@pytest.mark.benchmark(group="stability")
def test_seed_stability(benchmark, cache):
    gains_by_seed = {}
    rows = []
    for seed in SEEDS:
        domain_gains = []
        for domain in DOMAINS:
            if seed == 1:
                baseline = cache.run(domain, "baseline").metrics.f1
                webiq = cache.run(domain, "webiq").metrics.f1
            else:
                dataset = build_domain_dataset(domain, n_interfaces=12,
                                               seed=seed)
                baseline = WebIQMatcher(BASELINE).run(dataset).metrics.f1
                webiq = WebIQMatcher(WebIQConfig()).run(dataset).metrics.f1
            domain_gains.append(100 * (webiq - baseline))
        gains_by_seed[seed] = domain_gains
        rows.append((
            f"seed {seed}",
            f"{statistics.mean(domain_gains):+.1f}",
            f"{min(domain_gains):+.1f}",
            f"{max(domain_gains):+.1f}",
        ))

    benchmark.pedantic(
        lambda: WebIQMatcher(WebIQConfig()).run(
            build_domain_dataset("book", n_interfaces=12, seed=2)),
        rounds=1, iterations=1,
    )

    all_means = [statistics.mean(g) for g in gains_by_seed.values()]
    rows.append(("overall",
                 f"{statistics.mean(all_means):+.1f}",
                 f"{min(min(g) for g in gains_by_seed.values()):+.1f}",
                 f"{max(max(g) for g in gains_by_seed.values()):+.1f}"))
    print_table(
        "Seed stability — WebIQ F-1 gain over baseline (points)",
        ("seed", "mean gain", "min domain", "max domain"),
        rows,
    )

    # WebIQ improves the five-domain average at every seed, and no domain
    # regresses materially anywhere.
    for seed, gains in gains_by_seed.items():
        assert statistics.mean(gains) > 1.0, f"seed {seed}"
        assert min(gains) > -3.0, f"seed {seed}"
