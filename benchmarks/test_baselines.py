"""Extra context bench: a ladder of matchers from naive to full WebIQ.

Not a paper figure — it situates the paper's numbers: exact-label matching
(no linguistics), label-only clustering (He & Chang-style "only the
statistics on the labels"), IceQ with native instances (the paper's
baseline), and IceQ + WebIQ. Each rung quantifies what the next piece of
evidence buys.
"""

import pytest

from repro.datasets import DOMAINS
from repro.matching import evaluate_matches, label_only_matcher
from repro.matching.baselines import ExactLabelMatcher

from .conftest import print_table


@pytest.mark.benchmark(group="baselines")
def test_matcher_ladder(benchmark, cache):
    rows = []
    averages = [0.0, 0.0, 0.0, 0.0]
    for domain in DOMAINS:
        dataset = cache.dataset(domain)
        dataset.clear_acquired()
        truth = dataset.ground_truth.match_pairs()

        exact = evaluate_matches(
            ExactLabelMatcher().match(dataset.interfaces).match_pairs(),
            truth).f1
        label_only = evaluate_matches(
            label_only_matcher().match(dataset.interfaces).match_pairs(),
            truth).f1
        iceq = cache.run(domain, "baseline").metrics.f1
        webiq = cache.run(domain, "webiq").metrics.f1

        scores = (exact, label_only, iceq, webiq)
        for i, score in enumerate(scores):
            averages[i] += 100 * score / len(DOMAINS)
        rows.append((domain,) + tuple(f"{100 * s:.1f}" for s in scores))

    benchmark.pedantic(
        lambda: ExactLabelMatcher().match(cache.dataset("airfare").interfaces),
        rounds=1, iterations=1,
    )

    rows.append(("average",) + tuple(f"{a:.1f}" for a in averages))
    print_table(
        "Matcher ladder — F-1 % (context, not a paper figure)",
        ("domain", "exact-label", "label-only", "IceQ", "IceQ+WebIQ"),
        rows,
    )

    # The ladder must be monotone on average: each evidence source helps.
    assert averages[0] <= averages[1] + 1.0
    assert averages[1] <= averages[2] + 1.0
    assert averages[2] <= averages[3] + 1.0
    assert averages[3] >= 95.0
