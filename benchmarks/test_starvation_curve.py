"""Extension bench: WebIQ's value as native instances vanish.

The paper's whole premise is that missing instances break matching and
acquired instances repair it. This bench turns that premise into a curve:
strip a growing fraction of the pre-defined SELECT values from the auto
dataset (via :mod:`repro.datasets.perturb`) and measure baseline vs WebIQ
F-1 at each starvation level. The baseline must decay; WebIQ must hold.
"""

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import build_domain_dataset
from repro.datasets.perturb import drop_select_instances

from .conftest import BENCH_SEED, print_table

RATES = (0.0, 0.5, 1.0)
BASELINE = WebIQConfig(enable_surface=False, enable_attr_deep=False,
                       enable_attr_surface=False)


def _run_at(rate: float):
    dataset = build_domain_dataset("auto", n_interfaces=12, seed=BENCH_SEED)
    if rate > 0:
        drop_select_instances(dataset, rate=rate, seed=BENCH_SEED)
    baseline = WebIQMatcher(BASELINE).run(dataset).metrics.f1
    webiq = WebIQMatcher(WebIQConfig()).run(dataset).metrics.f1
    return 100 * baseline, 100 * webiq


@pytest.mark.benchmark(group="starvation")
def test_starvation_curve(benchmark):
    results = {rate: _run_at(rate) for rate in RATES[:-1]}
    results[RATES[-1]] = benchmark.pedantic(
        _run_at, args=(RATES[-1],), rounds=1, iterations=1)

    rows = [
        (f"{int(100 * rate)}% stripped",
         f"{results[rate][0]:.1f}",
         f"{results[rate][1]:.1f}",
         f"{results[rate][1] - results[rate][0]:+.1f}")
        for rate in RATES
    ]
    print_table(
        "Starvation curve — auto, 12 interfaces (F-1 %)",
        ("SELECT values", "baseline", "WebIQ", "gain"),
        rows,
    )

    baselines = [results[rate][0] for rate in RATES]
    webiqs = [results[rate][1] for rate in RATES]
    gains = [w - b for b, w in zip(baselines, webiqs)]
    # The baseline decays as instances vanish; WebIQ's gain grows.
    assert baselines[-1] <= baselines[0] + 1e-9
    assert gains[-1] >= gains[0] - 1e-9
    # Even fully starved, WebIQ recovers most of the accuracy.
    assert webiqs[-1] >= 85.0
