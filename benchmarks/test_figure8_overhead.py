"""Figure 8: overhead analysis — minutes per component and domain.

Regenerates the four bars per domain of the paper's Figure 8: time spent
matching, gathering instances from the Web (Surface), validating via the
Surface Web (Attr-Surface) and validating via the Deep Web (Attr-Deep).
Remote latencies are simulated exactly as the paper reports them (Google
round trips of 0.1-0.5 s — we charge the 0.3 s midpoint; Deep-Web form
submissions 1.5 s); matching time is charged per similarity evaluation,
calibrated to the paper's 2006 hardware.

Paper landmarks: matching 1.9 (auto) - 4.7 (airfare) minutes; Surface
1.2 (job) - 5.3 (auto); Attr-Surface ≤ 3.5; Attr-Deep ≤ 5.9 (airfare);
total overhead 5.7 (real estate) - 11 (airfare) minutes.

The benchmark times the matching stage alone (the non-simulated compute).
"""

import pytest

from repro.datasets import DOMAINS
from repro.matching import IceQMatcher

from .conftest import print_table

ACCOUNTS = ("matching", "surface", "attr_surface", "attr_deep")


@pytest.mark.benchmark(group="figure8")
def test_figure8_overhead(benchmark, cache):
    minutes = {
        domain: {
            account: cache.run(domain, "webiq").stopwatch.minutes(account)
            for account in ACCOUNTS
        }
        for domain in DOMAINS
    }

    benchmark.pedantic(
        lambda: IceQMatcher().match(cache.dataset("auto").interfaces),
        rounds=1, iterations=1,
    )

    rows = []
    for domain in DOMAINS:
        m = minutes[domain]
        overhead = sum(m[a] for a in ACCOUNTS[1:])
        rows.append((
            domain,
            f"{m['matching']:.1f}",
            f"{m['surface']:.1f}",
            f"{m['attr_surface']:.1f}",
            f"{m['attr_deep']:.1f}",
            f"{overhead:.1f}",
        ))
    print_table(
        "Figure 8 — minutes (simulated query latency + calibrated compute)",
        ("domain", "matching", "Surface", "Attr-Surface", "Attr-Deep",
         "WebIQ total"),
        rows,
    )

    # Shapes: airfare has the most attributes, hence the longest matching
    # time; every component stays minutes-scale ("modest runtime overhead");
    # Attr-Deep is largest where borrowing is heaviest (airfare).
    match_minutes = {d: minutes[d]["matching"] for d in DOMAINS}
    assert max(match_minutes, key=match_minutes.get) == "airfare"
    assert 1.0 <= match_minutes["airfare"] <= 10.0
    deep = {d: minutes[d]["attr_deep"] for d in DOMAINS}
    assert max(deep, key=deep.get) == "airfare"
    for domain in DOMAINS:
        total_overhead = sum(minutes[domain][a] for a in ACCOUNTS[1:])
        assert total_overhead <= 60.0, domain  # minutes-scale, not hours
        assert total_overhead > 0.0, domain
