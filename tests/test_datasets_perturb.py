"""Tests for dataset perturbation utilities."""

import pytest

from repro import WebIQConfig, WebIQMatcher, build_domain_dataset
from repro.datasets.perturb import (
    add_label_noise,
    drop_select_instances,
    shuffle_attribute_order,
)
from repro.deepweb.models import AttributeKind


def fresh(domain="book", n=5, seed=4):
    return build_domain_dataset(domain, n_interfaces=n, seed=seed)


class TestAddLabelNoise:
    def test_changes_roughly_rate_fraction(self):
        dataset = fresh()
        total = sum(len(i.attributes) for i in dataset.interfaces)
        changed = add_label_noise(dataset, rate=0.5, seed=1)
        assert 0 < changed < total

    def test_zero_rate_changes_nothing(self):
        dataset = fresh()
        before = [a.label for i in dataset.interfaces for a in i.attributes]
        assert add_label_noise(dataset, rate=0.0, seed=1) == 0
        after = [a.label for i in dataset.interfaces for a in i.attributes]
        assert before == after

    def test_deterministic(self):
        a, b = fresh(), fresh()
        add_label_noise(a, rate=0.5, seed=7)
        add_label_noise(b, rate=0.5, seed=7)
        assert [x.label for i in a.interfaces for x in i.attributes] == \
            [x.label for i in b.interfaces for x in i.attributes]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            add_label_noise(fresh(), rate=1.5)

    def test_decorated_labels_still_analyzable(self):
        dataset = fresh()
        add_label_noise(dataset, rate=1.0, seed=2)
        from repro.text.labels import analyze_label
        for interface in dataset.interfaces:
            for attribute in interface.attributes:
                analyze_label(attribute.label)  # must not raise


class TestDropSelectInstances:
    def test_strips_selects(self):
        dataset = fresh()
        stripped = drop_select_instances(dataset, rate=1.0, seed=1)
        assert stripped > 0
        for interface in dataset.interfaces:
            for attribute in interface.attributes:
                assert attribute.kind is AttributeKind.TEXT

    def test_partial_rate(self):
        dataset = fresh()
        selects_before = sum(
            1 for i in dataset.interfaces for a in i.attributes
            if a.kind is AttributeKind.SELECT)
        drop_select_instances(dataset, rate=0.5, seed=1)
        selects_after = sum(
            1 for i in dataset.interfaces for a in i.attributes
            if a.kind is AttributeKind.SELECT)
        assert 0 < selects_after < selects_before

    def test_ground_truth_untouched(self):
        dataset = fresh()
        pairs_before = dataset.ground_truth.match_pairs()
        drop_select_instances(dataset, rate=1.0, seed=1)
        assert dataset.ground_truth.match_pairs() == pairs_before


class TestShuffle:
    def test_preserves_attribute_set(self):
        dataset = fresh()
        before = {
            i.interface_id: sorted(i.attribute_names)
            for i in dataset.interfaces
        }
        shuffle_attribute_order(dataset, seed=3)
        after = {
            i.interface_id: sorted(i.attribute_names)
            for i in dataset.interfaces
        }
        assert before == after

    def test_matching_invariant_under_shuffle(self):
        plain = fresh()
        shuffled = fresh()
        shuffle_attribute_order(shuffled, seed=3)
        baseline_cfg = WebIQConfig(enable_surface=False,
                                   enable_attr_deep=False,
                                   enable_attr_surface=False)
        a = WebIQMatcher(baseline_cfg).run(plain)
        b = WebIQMatcher(baseline_cfg).run(shuffled)
        assert a.metrics.f1 == pytest.approx(b.metrics.f1)


class TestRobustnessUnderPerturbation:
    def test_webiq_survives_label_noise(self):
        dataset = fresh("book", n=6, seed=4)
        add_label_noise(dataset, rate=0.3, seed=5)
        result = WebIQMatcher(WebIQConfig()).run(dataset)
        assert result.metrics.f1 > 0.7

    def test_webiq_gain_grows_when_instances_vanish(self):
        """The paper's core claim, stress-tested: the fewer native
        instances, the more WebIQ matters."""
        baseline_cfg = WebIQConfig(enable_surface=False,
                                   enable_attr_deep=False,
                                   enable_attr_surface=False)
        plain = fresh("book", n=6, seed=4)
        gain_plain = (WebIQMatcher(WebIQConfig()).run(plain).metrics.f1
                      - WebIQMatcher(baseline_cfg).run(plain).metrics.f1)

        starved = fresh("book", n=6, seed=4)
        drop_select_instances(starved, rate=1.0, seed=5)
        gain_starved = (WebIQMatcher(WebIQConfig()).run(starved).metrics.f1
                        - WebIQMatcher(baseline_cfg).run(starved).metrics.f1)
        assert gain_starved >= gain_plain - 0.02
