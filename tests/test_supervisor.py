"""The self-healing contract: any kill/corruption schedule, same bytes.

A run executed by :class:`~repro.supervisor.RunSupervisor` must complete
without intervention under any deterministic schedule of kills, journal
corruption, deadlines and unit crashes — and its exported payload must be
byte-identical to the uninterrupted run's, minus only the units it
explicitly quarantined. Every supervised run is additionally audited by
the cross-layer invariant checker, whose two supervision laws
(``restart-spend-conservation``, ``quarantine-accounting``) prove the
recovery books from the raw substrate counters.
"""

import json
import os

import pytest

from repro.checkpoint import CheckpointConfig, RunJournal
from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import build_domain_dataset
from repro.io import run_result_to_dict
from repro.obs import ObsConfig, check_run
from repro.resilience import BreakerPolicy, FaultProfile, ResilienceConfig
from repro.supervisor import (
    COMPLETED,
    FAILURE_CORRUPTION,
    FAILURE_CRASH,
    FAILURE_DEADLINE,
    FAILURE_PREEMPTION,
    RestartPolicy,
    RunSupervisor,
    SupervisorConfig,
    UnitFaultInjector,
)
from repro.util.clock import SimulatedClock
from repro.util.errors import (
    InjectedCrashError,
    JournalMismatchError,
    ResumeError,
    SupervisionExhaustedError,
)

N_INTERFACES = 3
SUPERVISION_LAWS = ("restart-spend-conservation", "quarantine-accounting")


def faulty_resilience():
    # Volume-reactive valves parked so runs of different crash histories
    # stay comparable — same reasoning as the checkpoint-resume suite.
    return ResilienceConfig(
        profile=FaultProfile(fault_rate=0.15, seed=5),
        breaker=BreakerPolicy(failure_threshold=10_000),
    )


def make_config(resilience=False, checkpoint=None, supervisor=None,
                obs=None):
    return WebIQConfig(
        resilience=faulty_resilience() if resilience else None,
        checkpoint=checkpoint,
        supervisor=supervisor,
        obs=obs,
    )


def canonical(dataset, result):
    """The full export plus raw acquired state, as comparable bytes.

    Checkpoint, supervisor and format are stripped: they legitimately
    differ between a supervised and a plain run, and equality of
    everything else is exactly the self-healing guarantee under test.
    """
    payload = run_result_to_dict(result)
    for key in ("checkpoint", "format", "supervisor"):
        payload.pop(key, None)
    payload["_acquired"] = {
        interface.interface_id: {
            attribute.name: list(attribute.acquired)
            for attribute in interface.attributes
        }
        for interface in dataset.interfaces
    }
    return json.dumps(payload, sort_keys=True)


_BASELINES = {}


def baseline(domain, seed, resilience=False):
    """Memoised uninterrupted (checkpoint-free) reference payload."""
    key = (domain, seed, resilience)
    if key not in _BASELINES:
        dataset = build_domain_dataset(domain, N_INTERFACES, seed)
        result = WebIQMatcher(make_config(resilience=resilience)).run(dataset)
        _BASELINES[key] = canonical(dataset, result)
    return _BASELINES[key]


def supervise(tmp_path, domain="book", seed=1, resilience=False,
              supervisor=None, kill_schedule=(), chaos=None,
              directory=None):
    """One supervised run; returns (payload, result, dataset)."""
    directory = directory or str(tmp_path / "journal")
    config = make_config(
        resilience=resilience,
        checkpoint=CheckpointConfig(directory=directory),
        supervisor=supervisor,
    )
    dataset = build_domain_dataset(domain, N_INTERFACES, seed)
    result = RunSupervisor(
        config, kill_schedule=kill_schedule, chaos=chaos).run(dataset)
    return canonical(dataset, result), result, dataset


def probe_units(tmp_path, domain="book", seed=1):
    """The run's journal unit keys, from a throwaway journaled run."""
    directory = str(tmp_path / "probe")
    dataset = build_domain_dataset(domain, N_INTERFACES, seed)
    WebIQMatcher(make_config(
        checkpoint=CheckpointConfig(directory=directory))).run(dataset)
    return [tuple(body["unit"])
            for body in RunJournal.open(directory).records]


def assert_audited(result):
    audit = check_run(result)
    assert audit.ok, audit.summary()
    for law in SUPERVISION_LAWS:
        assert law in audit.checked
    return audit


def corrupt_tail_record(directory):
    """Tear the journal's newest record file (simulated torn write)."""
    records = sorted(
        name for name in os.listdir(directory)
        if name.startswith("record-") and name.endswith(".json"))
    with open(os.path.join(directory, records[-1]), "w") as handle:
        handle.write('{"format": 1, "crc": 0, "body"')


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError, match="poison_threshold"):
            RestartPolicy(poison_threshold=0)
        with pytest.raises(ValueError, match="jitter"):
            RestartPolicy(jitter=1.0)

    def test_delay_grows_and_clamps(self):
        policy = RestartPolicy(base_delay=1.0, multiplier=2.0,
                               max_delay=5.0, jitter=0.0)
        delays = [policy.delay(i, None) for i in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_seeded_and_bounded(self):
        from repro.util.rng import derive_rng
        policy = RestartPolicy(base_delay=8.0, jitter=0.25)
        a = [policy.delay(0, derive_rng(7, "supervisor", "backoff"))
             for _ in range(3)]
        assert a[0] == a[1] == a[2]
        assert 6.0 <= a[0] <= 10.0


class TestSupervisorConfig:
    def test_deadline_validation(self):
        with pytest.raises(ValueError, match="unit_deadline"):
            SupervisorConfig(unit_deadline_seconds=0.0)
        with pytest.raises(ValueError, match="run_deadline"):
            SupervisorConfig(run_deadline_seconds=-1.0)

    def test_quarantine_normalised_to_tuples(self):
        config = SupervisorConfig(quarantine=[["surface", "i", "a"]])
        assert config.quarantine == (("surface", "i", "a"),)

    def test_fault_injector_schedule(self):
        unit = ("surface", "i", "a")
        injector = UnitFaultInjector({unit: 2})
        for _ in range(2):
            with pytest.raises(InjectedCrashError):
                injector.check(unit)
        injector.check(unit)  # healed
        always = UnitFaultInjector({unit: -1})
        for _ in range(3):
            with pytest.raises(InjectedCrashError):
                always.check(unit)


class TestRunSupervisorValidation:
    def test_requires_checkpoint(self):
        with pytest.raises(ResumeError, match="journal"):
            RunSupervisor(make_config())

    def test_refuses_observability(self, tmp_path):
        config = make_config(
            checkpoint=CheckpointConfig(directory=str(tmp_path / "j")),
            obs=ObsConfig(),
        )
        with pytest.raises(ResumeError, match="observability"):
            RunSupervisor(config)


class TestKillSchedule:
    """Repeated preemptions heal to the uninterrupted run's bytes."""

    def test_multi_kill_schedule_byte_identical(self, tmp_path):
        payload, result, _ = supervise(
            tmp_path, kill_schedule=(2, 7, None))
        assert payload == baseline("book", 1)
        report = result.supervisor
        assert [a.outcome for a in report.attempts] == \
            [FAILURE_PREEMPTION, FAILURE_PREEMPTION, COMPLETED]
        assert report.completed and report.restarts == 2
        # Preemption at a boundary loses nothing: every round trip the
        # dead attempts paid had already reached the journal.
        assert report.wasted_round_trips == 0
        assert report.salvage_trimmed_round_trips == 0
        # Later attempts start with more of the run restored.
        restored = [a.restored_round_trips for a in report.attempts]
        assert restored[0] == 0 and restored[1] <= restored[2]
        assert_audited(result)

    def test_backoff_recorded_not_charged(self, tmp_path):
        _, result, _ = supervise(tmp_path, kill_schedule=(2, 7, None))
        report = result.supervisor
        assert report.backoff_seconds > 0
        assert report.attempts[-1].backoff_seconds == 0.0
        assert report.backoff_seconds == pytest.approx(
            sum(a.backoff_seconds for a in report.attempts))
        # The run's own stopwatch never saw the supervision downtime.
        assert canonical(*_rerun_plain("book", 1)) == baseline("book", 1)

    def test_unsupervised_summary_absent_from_export(self, tmp_path):
        _, result, _ = supervise(tmp_path, kill_schedule=(2, None))
        payload = run_result_to_dict(result)
        assert payload["format"] == 4
        assert payload["supervisor"]["restarts"] == 1


def _rerun_plain(domain, seed):
    dataset = build_domain_dataset(domain, N_INTERFACES, seed)
    result = WebIQMatcher(make_config()).run(dataset)
    return dataset, result


class TestCorruptionSalvage:
    """A torn journal is salvaged, not fatal — and costs only the tail."""

    def test_salvage_then_byte_identical(self, tmp_path):
        def chaos(attempt_index, directory):
            if attempt_index == 0:
                corrupt_tail_record(directory)

        payload, result, _ = supervise(
            tmp_path, kill_schedule=(6, None), chaos=chaos)
        assert payload == baseline("book", 1)
        report = result.supervisor
        outcomes = [a.outcome for a in report.attempts]
        assert outcomes == [
            FAILURE_PREEMPTION, FAILURE_CORRUPTION, COMPLETED]
        assert report.salvages == 1
        assert report.salvaged_records == 1
        salvage = report.attempts[1].salvage
        assert salvage is not None and salvage.kept_records == 6
        assert_audited(result)

    def test_trimmed_spend_is_accounted(self, tmp_path):
        """The corrupted record's journaled spend moves to the trim
        ledger the moment chaos damages it — conservation holds."""
        def chaos(attempt_index, directory):
            if attempt_index == 0:
                corrupt_tail_record(directory)

        _, result, _ = supervise(
            tmp_path, kill_schedule=(6, None), chaos=chaos)
        report = result.supervisor
        checkpoint = result.checkpoint
        assert report.total_round_trips == (
            checkpoint.replayed_round_trips + checkpoint.fresh_round_trips
            + report.wasted_round_trips
            + report.salvage_trimmed_round_trips)


class TestDeadlines:
    """Wall-clock budgets preempt cleanly and the run still completes."""

    def _unit_seconds(self, tmp_path):
        clock = SimulatedClock()
        directory = str(tmp_path / "probe")
        dataset = build_domain_dataset("book", N_INTERFACES, 1)
        WebIQMatcher(make_config(
            checkpoint=CheckpointConfig(directory=directory))).run(dataset)
        return [
            body["queries"] * clock.search_query_seconds
            + body["probes"] * clock.deep_probe_seconds
            for body in RunJournal.open(directory).records
        ]

    def test_run_deadline_slices_run_into_attempts(self, tmp_path):
        seconds = self._unit_seconds(tmp_path)
        deadline = sum(seconds) / 3.0
        payload, result, _ = supervise(
            tmp_path,
            supervisor=SupervisorConfig(
                restart=RestartPolicy(max_restarts=50),
                run_deadline_seconds=deadline,
            ),
        )
        assert payload == baseline("book", 1)
        report = result.supervisor
        assert report.restarts >= 2
        assert all(a.outcome == FAILURE_DEADLINE
                   for a in report.attempts[:-1])
        assert report.attempts[-1].outcome == COMPLETED
        assert report.wasted_round_trips == 0
        assert_audited(result)

    def test_unit_deadline_preempts_heaviest_units(self, tmp_path):
        seconds = self._unit_seconds(tmp_path)
        deadline = max(seconds) - 0.01
        over_budget = sum(1 for s in seconds if s > deadline)
        assert over_budget >= 1
        payload, result, _ = supervise(
            tmp_path,
            supervisor=SupervisorConfig(
                restart=RestartPolicy(max_restarts=50),
                unit_deadline_seconds=deadline,
            ),
        )
        assert payload == baseline("book", 1)
        report = result.supervisor
        # Deadline fires after the record is durable, so each offending
        # unit preempts exactly once and is replayed thereafter.
        assert report.restarts == over_budget
        assert all(a.outcome == FAILURE_DEADLINE
                   for a in report.attempts[:-1])
        assert_audited(result)


class TestQuarantine:
    """A unit that keeps killing the run is isolated, not fatal."""

    def test_poisoned_unit_quarantined_and_run_completes(self, tmp_path):
        unit = probe_units(tmp_path)[4]
        payload, result, _ = supervise(
            tmp_path,
            supervisor=SupervisorConfig(
                restart=RestartPolicy(poison_threshold=2),
                unit_faults=UnitFaultInjector({unit: -1}),
            ),
        )
        report = result.supervisor
        assert report.completed
        assert [a.outcome for a in report.attempts] == \
            [FAILURE_CRASH, FAILURE_CRASH, COMPLETED]
        assert report.attempts[0].unit == unit
        [quarantined] = report.quarantined_units
        assert quarantined.unit == unit
        assert quarantined.crashes == 2
        assert quarantined.restart_indices == (0, 1)
        assert any("InjectedCrashError" in line
                   for line in quarantined.error_chain)
        assert_audited(result)
        # The poisoned unit is really absent: payload differs from the
        # clean baseline.
        assert payload != baseline("book", 1)

    def test_quarantine_oracle(self, tmp_path):
        """Supervised-with-quarantine == plain run told to skip the same
        unit up front: quarantine changes nothing else."""
        unit = probe_units(tmp_path)[4]
        payload, _, _ = supervise(
            tmp_path,
            supervisor=SupervisorConfig(
                restart=RestartPolicy(poison_threshold=2),
                unit_faults=UnitFaultInjector({unit: -1}),
            ),
        )
        dataset = build_domain_dataset("book", N_INTERFACES, 1)
        reference = WebIQMatcher(make_config(
            checkpoint=CheckpointConfig(
                directory=str(tmp_path / "reference")),
            supervisor=SupervisorConfig(quarantine=(unit,)),
        )).run(dataset)
        assert payload == canonical(dataset, reference)

    def test_transient_crash_heals_without_quarantine(self, tmp_path):
        unit = probe_units(tmp_path)[4]
        payload, result, _ = supervise(
            tmp_path,
            supervisor=SupervisorConfig(
                restart=RestartPolicy(poison_threshold=3),
                unit_faults=UnitFaultInjector({unit: 1}),
            ),
        )
        assert payload == baseline("book", 1)
        report = result.supervisor
        assert [a.outcome for a in report.attempts] == \
            [FAILURE_CRASH, COMPLETED]
        assert report.quarantined_units == []
        assert_audited(result)

    def test_degradation_report_mirrors_quarantine(self, tmp_path):
        unit = probe_units(tmp_path)[4]
        _, result, _ = supervise(
            tmp_path, resilience=True,
            supervisor=SupervisorConfig(
                restart=RestartPolicy(poison_threshold=1),
                unit_faults=UnitFaultInjector({unit: -1}),
            ),
        )
        degradation = result.degradation
        assert [q.unit for q in degradation.quarantined_units] == [unit]
        assert "quarantined" in degradation.summary()
        # In-memory visibility only: the exported degradation section is
        # byte-stable, so quarantine provenance exports via "supervisor".
        payload = run_result_to_dict(result)
        assert "quarantined" not in json.dumps(payload["degradation"])
        assert payload["supervisor"]["quarantined_units"][0]["unit"] == \
            list(unit)


class TestExhaustionAndConfigErrors:
    def test_restart_budget_exhaustion(self, tmp_path):
        unit = probe_units(tmp_path)[4]
        with pytest.raises(SupervisionExhaustedError, match="3 attempts"):
            supervise(
                tmp_path,
                supervisor=SupervisorConfig(
                    # Poison threshold out of reach: the unit keeps
                    # crashing the run until the budget runs out.
                    restart=RestartPolicy(max_restarts=2,
                                          poison_threshold=10),
                    unit_faults=UnitFaultInjector({unit: -1}),
                ),
            )

    def test_config_errors_are_not_retried(self, tmp_path):
        directory = str(tmp_path / "journal")
        dataset = build_domain_dataset("book", N_INTERFACES, 2)
        WebIQMatcher(make_config(
            checkpoint=CheckpointConfig(directory=directory))).run(dataset)
        config = make_config(
            checkpoint=CheckpointConfig(directory=directory, resume=True))
        with pytest.raises(JournalMismatchError, match="seed"):
            RunSupervisor(config).run(
                build_domain_dataset("book", N_INTERFACES, 1))


class TestMetamorphicSweep:
    """The acceptance sweep: domains × seeds × kill/corruption schedules
    all terminate without intervention, byte-identical, zero violations."""

    @pytest.mark.parametrize("domain", ("book", "airfare"))
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_kill_and_corruption_schedule(self, tmp_path, domain, seed):
        def chaos(attempt_index, directory):
            if attempt_index == 1:
                corrupt_tail_record(directory)

        payload, result, _ = supervise(
            tmp_path, domain=domain, seed=seed,
            kill_schedule=(2, 5, None), chaos=chaos)
        assert payload == baseline(domain, seed), \
            f"diverged under chaos for {domain}/seed {seed}"
        report = result.supervisor
        assert report.completed
        assert report.salvages == 1
        assert_audited(result)
