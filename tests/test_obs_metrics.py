"""Edge-case tests for the metrics registry's instruments.

The invariant checker and the run report both lean on histograms and on
the registry export being well defined at the boundaries — before any
sample arrives, and with exactly one sample — so those boundaries get
their own tests here, separate from the happy-path coverage in
``test_obs_trace.py``.
"""

import json

import pytest

from repro.obs import HISTOGRAM_SAMPLE_CAP, Histogram, MetricsRegistry


class TestHistogramEdgeCases:
    def test_empty_histogram_exports_null_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("latency", component="surface")  # created, unused
        payload = registry.export()
        json.dumps(payload)  # must stay serialisable
        (row,) = payload["histograms"]
        assert row["count"] == 0
        assert row["total"] == 0.0
        assert row["min"] is None
        assert row["max"] is None
        assert "samples" not in row  # export stays summary-only

    def test_empty_histogram_statistics(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.percentile(50.0) is None
        assert histogram.percentile(0.0) is None

    def test_single_sample_is_every_percentile(self):
        histogram = Histogram()
        histogram.observe(7.25)
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert histogram.percentile(q) == 7.25

    def test_percentile_nearest_rank(self):
        histogram = Histogram()
        for value in (4.0, 1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(25.0) == 1.0
        assert histogram.percentile(50.0) == 2.0
        assert histogram.percentile(75.0) == 3.0
        assert histogram.percentile(100.0) == 4.0

    def test_percentile_rejects_out_of_range(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)
        with pytest.raises(ValueError):
            histogram.percentile(100.1)

    def test_export_unchanged_by_sample_retention(self):
        """Observing samples must not leak them into the export payload."""
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.histogram("backoff").observe(value)
        (row,) = registry.export()["histograms"]
        assert set(row) == {"name", "labels", "count", "total", "min", "max"}
        assert row["count"] == 3
        assert row["min"] == 1.0
        assert row["max"] == 3.0


class TestHistogramSampleCap:
    def test_million_observations_retain_bounded_samples(self):
        """The regression the reservoir exists for: a long-lived run used
        to retain one float per observation, so a million observations
        held a million floats. Retention must now stay under the cap
        while count/total/min/max remain exact."""
        histogram = Histogram()
        n = 1_000_000
        for i in range(n):
            histogram.observe(float(i))
        assert len(histogram.samples) <= HISTOGRAM_SAMPLE_CAP
        assert histogram.count == n
        assert histogram.total == sum(float(i) for i in range(n))
        assert histogram.min == 0.0
        assert histogram.max == float(n - 1)
        assert not histogram.exact

    def test_exact_below_cap(self):
        """Below the cap the reservoir is invisible: every sample kept,
        percentiles exact."""
        histogram = Histogram()
        values = [float(v) for v in range(HISTOGRAM_SAMPLE_CAP)]
        for value in values:
            histogram.observe(value)
        assert histogram.exact
        assert histogram.samples == values
        assert histogram.percentile(100.0) == values[-1]

    def test_stride_doubles_deterministically(self):
        """The decimation is deterministic: same observations, same
        retained subsample — no RNG involved."""
        first, second = Histogram(), Histogram()
        for i in range(3 * HISTOGRAM_SAMPLE_CAP):
            first.observe(float(i))
            second.observe(float(i))
        assert first.samples == second.samples
        assert first.stride == second.stride > 1
        # every retained sample index is a multiple of the stride
        assert all(v % first.stride == 0 for v in first.samples)

    def test_percentiles_stay_representative_above_cap(self):
        histogram = Histogram()
        n = 10 * HISTOGRAM_SAMPLE_CAP
        for i in range(n):
            histogram.observe(float(i))
        median = histogram.percentile(50.0)
        assert abs(median - n / 2) / n < 0.01

    def test_export_rows_unchanged_above_cap(self):
        """Capping retention must not change the export schema or the
        exact summary fields."""
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        n = 2 * HISTOGRAM_SAMPLE_CAP
        for i in range(n):
            histogram.observe(float(i))
        (row,) = registry.export()["histograms"]
        assert set(row) == {"name", "labels", "count", "total", "min", "max"}
        assert row["count"] == n
        assert row["min"] == 0.0
        assert row["max"] == float(n - 1)
