"""Cache-equivalence properties: cached runs change cost, never answers.

The central contract of :mod:`repro.perf`: wrapping the engine in the
query cache must leave every payload of a pipeline run — acquired
instances, clusters, accuracy metrics — bit-identical to the uncached
run, on a pristine Web and on a faulty one. Only the accounting (query
counts, overhead, backoff) may shrink.

Under faults the guarantee needs the load-dependent safety valves out of
the way: query budgets unbounded and the breaker threshold out of reach.
Budgets and breakers react to *traffic volume*, which is exactly what the
cache changes; with them active, a cached run can legitimately keep a
source alive that an uncached run tripped. See DESIGN.md.

Every run here executes instrumented and is audited by the
:class:`~repro.obs.InvariantChecker` before any equivalence assertion:
the cross-layer conservation laws must hold in the exact configurations
whose payload equality this module certifies.
"""

import pytest

from repro.core.pipeline import WebIQConfig, WebIQMatcher
from repro.datasets import build_domain_dataset
from repro.io import run_result_to_dict
from repro.obs import NO_PROVENANCE_DIVERGENCE, ObsConfig, check_run, diff_runs
from repro.perf import CacheConfig
from repro.resilience import BreakerPolicy, FaultProfile, ResilienceConfig

DOMAIN = "book"
N_INTERFACES = 6
SEED = 3


def run_once(cache, resilience=None):
    """One full pipeline run; returns (payload, result, real_queries)."""
    dataset = build_domain_dataset(DOMAIN, N_INTERFACES, SEED)
    config = WebIQConfig(resilience=resilience, cache=cache, obs=ObsConfig())
    result = WebIQMatcher(config).run(dataset)
    invariants = check_run(result)
    assert invariants.ok, invariants.summary()
    payload = {
        "instances": {
            (interface.interface_id, attribute.name): tuple(attribute.acquired)
            for interface in dataset.interfaces
            for attribute in interface.attributes
        },
        "clusters": sorted(
            sorted([list(m.key) for m in cluster.members])
            for cluster in result.match_result.clusters
        ),
        "metrics": (
            result.metrics.precision,
            result.metrics.recall,
            result.metrics.f1,
            result.metrics.n_predicted,
            result.metrics.n_truth,
            result.metrics.n_correct,
        ),
    }
    return payload, result, dataset.engine.query_count


def faulty_resilience():
    # Unbounded budgets, breaker out of reach: the valves that react to
    # traffic volume are parked so payloads stay comparable (module docs).
    return ResilienceConfig(
        profile=FaultProfile(fault_rate=0.15, seed=5),
        breaker=BreakerPolicy(failure_threshold=10_000),
    )


class TestEquivalencePristine:
    def test_payload_identical_and_queries_reduced(self):
        uncached, uncached_result, uncached_queries = run_once(cache=None)
        cached, cached_result, cached_queries = run_once(cache=CacheConfig())

        assert cached == uncached
        assert uncached_result.cache is None
        assert cached_result.cache is not None
        assert cached_result.cache.hits > 0
        assert cached_queries < uncached_queries

    def test_cached_run_is_deterministic(self):
        first, first_result, first_queries = run_once(cache=CacheConfig())
        second, second_result, second_queries = run_once(cache=CacheConfig())
        assert first == second
        assert first_queries == second_queries
        assert first_result.cache.hits == second_result.cache.hits
        assert first_result.cache.misses == second_result.cache.misses

    def test_overhead_not_inflated(self):
        # A cache hit charges nothing: total simulated overhead of the
        # cached run can only stay or shrink.
        _, uncached_result, _ = run_once(cache=None)
        _, cached_result, _ = run_once(cache=CacheConfig())
        assert cached_result.stopwatch.total_seconds <= \
            uncached_result.stopwatch.total_seconds


class TestEquivalenceUnderFaults:
    def test_payload_identical_under_faults(self):
        uncached, uncached_result, uncached_queries = run_once(
            cache=None, resilience=faulty_resilience())
        cached, cached_result, cached_queries = run_once(
            cache=CacheConfig(), resilience=faulty_resilience())

        # The runs saw real faults — this is not the pristine case again.
        assert uncached_result.degradation.total_faults > 0
        assert cached == uncached
        assert cached_result.cache.hits > 0
        assert cached_queries < uncached_queries

    def test_degraded_and_garbled_answers_stay_uncached(self):
        _, cached_result, _ = run_once(
            cache=CacheConfig(), resilience=faulty_resilience())
        stats = cached_result.cache
        # Every answer was either stored or deliberately refused; nothing
        # fell through the accounting.
        assert stats.stores + stats.uncacheable == stats.misses

    def test_faulty_runs_deterministic(self):
        first, _, first_queries = run_once(
            cache=CacheConfig(), resilience=faulty_resilience())
        second, _, second_queries = run_once(
            cache=CacheConfig(), resilience=faulty_resilience())
        assert first == second
        assert first_queries == second_queries


class TestProvenanceEquivalence:
    """Stronger than payload equality: the cached run must make every
    decision for the same recorded reason as the uncached run."""

    def test_no_provenance_divergence_pristine(self):
        _, uncached_result, _ = run_once(cache=None)
        _, cached_result, _ = run_once(cache=CacheConfig())
        diff = diff_runs(run_result_to_dict(uncached_result),
                         run_result_to_dict(cached_result))
        assert not diff.provenance_diverged, diff.summary()
        assert NO_PROVENANCE_DIVERGENCE in diff.summary()

    def test_no_provenance_divergence_under_faults(self):
        _, uncached_result, _ = run_once(
            cache=None, resilience=faulty_resilience())
        _, cached_result, _ = run_once(
            cache=CacheConfig(), resilience=faulty_resilience())
        assert uncached_result.degradation.total_faults > 0
        diff = diff_runs(run_result_to_dict(uncached_result),
                         run_result_to_dict(cached_result))
        assert not diff.provenance_diverged, diff.summary()
