"""Tests for repro.text.morphology."""

import pytest
from hypothesis import given, strategies as st

from repro.text.morphology import pluralize, pluralize_phrase, singularize


class TestPluralize:
    @pytest.mark.parametrize("singular,plural", [
        ("city", "cities"),
        ("class", "classes"),
        ("make", "makes"),
        ("author", "authors"),
        ("box", "boxes"),
        ("church", "churches"),
        ("dish", "dishes"),
        ("company", "companies"),
        ("day", "days"),          # vowel + y
        ("knife", "knives"),
        ("hero", "heroes"),
        ("radio", "radios"),      # vowel + o
        ("child", "children"),
        ("person", "people"),
        ("salesperson", "salespeople"),
    ])
    def test_known_forms(self, singular, plural):
        assert pluralize(singular) == plural

    def test_preserves_capitalisation(self):
        assert pluralize("City") == "Cities"
        assert pluralize("Child") == "Children"

    def test_already_plural_left_alone(self):
        assert pluralize("feet") == "feet"
        assert pluralize("adults") == "adults"
        assert pluralize("keywords") == "keywords"

    def test_unchanged_words(self):
        assert pluralize("series") == "series"
        assert pluralize("aircraft") == "aircraft"

    def test_singular_s_words_still_pluralize(self):
        assert pluralize("class") == "classes"
        assert pluralize("address") == "addresses"
        assert pluralize("status") == "statuses"

    def test_empty_string(self):
        assert pluralize("") == ""


class TestSingularize:
    @pytest.mark.parametrize("plural,singular", [
        ("cities", "city"),
        ("classes", "class"),
        ("makes", "make"),
        ("children", "child"),
        ("people", "person"),
        ("boxes", "box"),
        ("heroes", "hero"),
    ])
    def test_known_forms(self, plural, singular):
        assert singularize(plural) == singular

    def test_does_not_strip_double_s(self):
        assert singularize("class") == "class"
        assert singularize("address") == "address"

    def test_empty_string(self):
        assert singularize("") == ""


# Regular nouns for the round-trip property: plain stems without tricky
# endings, mirroring the vocabulary interface labels actually use.
_REGULAR_NOUNS = st.sampled_from([
    "city", "make", "model", "author", "publisher", "title", "company",
    "category", "state", "price", "year", "color", "airline", "carrier",
    "airport", "passenger", "trip", "seat", "job", "position", "industry",
    "degree", "bedroom", "bathroom", "property", "home", "agent", "book",
    "subject", "format", "condition", "keyword", "salary", "location",
])


class TestRoundTrip:
    @given(_REGULAR_NOUNS)
    def test_singularize_inverts_pluralize(self, noun):
        assert singularize(pluralize(noun)) == noun

    @given(_REGULAR_NOUNS)
    def test_pluralize_changes_regular_nouns(self, noun):
        assert pluralize(noun) != noun


class TestPluralizePhrase:
    def test_default_head_is_last_word(self):
        assert pluralize_phrase("departure city") == "departure cities"

    def test_explicit_head_index(self):
        assert pluralize_phrase("class of service", head_index=0) == \
            "classes of service"

    def test_negative_head_index(self):
        assert pluralize_phrase("first name", head_index=-1) == "first names"

    def test_single_word(self):
        assert pluralize_phrase("airline") == "airlines"

    def test_out_of_range_head_raises(self):
        with pytest.raises(ValueError):
            pluralize_phrase("two words", head_index=5)

    def test_empty_phrase(self):
        assert pluralize_phrase("") == ""
