"""Tests for Attr-Deep: deep-web probe validation (paper §4)."""

import pytest

from repro.core.attr_deep import AttrDeepValidator
from repro.deepweb.models import Attribute, QueryInterface
from repro.deepweb.source import DeepWebSource


CITIES = ("Boston", "Chicago", "Miami", "Denver", "Seattle", "Austin")


def make_source(iid="air-1", required=()):
    interface = QueryInterface(iid, "airfare", "flight", [
        Attribute(name="from", label="From"),
        Attribute(name="to", label="To"),
    ])
    records = [{"from": c, "to": CITIES[(i + 1) % len(CITIES)]}
               for i, c in enumerate(CITIES)]
    return DeepWebSource(
        interface=interface,
        recognizers={
            "from": lambda v: v in CITIES,
            "to": lambda v: v in CITIES,
        },
        records=records,
        required_attributes=set(required),
    )


class TestValidate:
    def test_true_instances_accepted_wholesale(self):
        validator = AttrDeepValidator({"air-1": make_source()})
        result = validator.validate("air-1", "from", list(CITIES))
        assert result.accepted == list(CITIES)
        assert result.probes_issued == 6

    def test_non_instances_rejected(self):
        # "querying with from set to January will not [yield results]"
        validator = AttrDeepValidator({"air-1": make_source()})
        result = validator.validate(
            "air-1", "from", ["January", "Economy", "Honda"])
        assert result.accepted == []

    def test_one_third_rule(self):
        # 2 valid of 6 probed = exactly 1/3: the whole set is accepted,
        # including the invalid values — the paper's all-or-nothing shortcut.
        validator = AttrDeepValidator({"air-1": make_source()})
        borrowed = ["Boston", "Chicago", "xx1", "xx2", "xx3", "xx4"]
        result = validator.validate("air-1", "from", borrowed)
        assert result.successes == 2
        assert result.accepted == borrowed

    def test_below_one_third_rejects_all(self):
        validator = AttrDeepValidator({"air-1": make_source()})
        borrowed = ["Boston", "xx1", "xx2", "xx3", "xx4", "xx5"]
        result = validator.validate("air-1", "from", borrowed)
        assert result.successes == 1
        assert result.accepted == []

    def test_max_probes_caps_cost(self):
        validator = AttrDeepValidator({"air-1": make_source()}, max_probes=3)
        result = validator.validate("air-1", "from", list(CITIES))
        assert result.probes_issued == 3
        assert result.accepted == list(CITIES)

    def test_required_attribute_blocks_probing(self):
        # a source demanding another field defeats single-attribute probes
        source = make_source(required=["to"])
        validator = AttrDeepValidator({"air-1": source})
        result = validator.validate("air-1", "from", list(CITIES))
        assert result.accepted == []

    def test_unknown_source(self):
        validator = AttrDeepValidator({})
        result = validator.validate("nope", "from", ["Boston"])
        assert result.accepted == [] and result.probes_issued == 0

    def test_empty_borrowed(self):
        validator = AttrDeepValidator({"air-1": make_source()})
        result = validator.validate("air-1", "from", ["", "  "])
        assert result.accepted == [] and result.probes_issued == 0

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            AttrDeepValidator({}, accept_ratio=0.0)

    def test_success_ratio_reported(self):
        validator = AttrDeepValidator({"air-1": make_source()})
        result = validator.validate("air-1", "from",
                                    ["Boston", "Chicago", "nope"])
        assert result.success_ratio == pytest.approx(2 / 3)

    def test_probe_count_on_source(self):
        source = make_source()
        validator = AttrDeepValidator({"air-1": source})
        validator.validate("air-1", "from", ["Boston", "Chicago"])
        assert source.probe_count == 2
