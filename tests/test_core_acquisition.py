"""Tests for the §5 acquisition policy."""

import pytest

from repro.core.acquisition import AcquisitionConfig, InstanceAcquirer
from repro.datasets import build_domain_dataset
from repro.deepweb.models import AttributeKind


@pytest.fixture()
def airfare():
    ds = build_domain_dataset("airfare", n_interfaces=8, seed=7)
    ds.clear_acquired()
    ds.reset_counters()
    return ds


def acquire(ds, **flags):
    acquirer = InstanceAcquirer(ds.engine, ds.sources)
    return acquirer.acquire(
        ds.interfaces,
        domain_keywords=ds.spec.keyword_terms(),
        object_name=ds.spec.object_name,
        **flags,
    )


class TestPolicy:
    def test_records_cover_all_attributes(self, airfare):
        report = acquire(airfare)
        total = sum(len(i.attributes) for i in airfare.interfaces)
        assert len(report.records) == total

    def test_predefined_attributes_never_surface(self, airfare):
        report = acquire(airfare)
        for record in report.records:
            if record.had_instances:
                assert not record.surface_attempted
                assert not record.borrow_deep_attempted

    def test_no_instance_attributes_surface_first(self, airfare):
        report = acquire(airfare)
        for record in report.records:
            if not record.had_instances:
                assert record.surface_attempted

    def test_surface_success_skips_borrowing(self, airfare):
        report = acquire(airfare)
        for record in report.records:
            if not record.had_instances and record.surface_success(report.k):
                assert not record.borrow_deep_attempted

    def test_surface_failure_triggers_deep_borrowing(self, airfare):
        report = acquire(airfare)
        attempted = [
            r for r in report.records
            if not r.had_instances and not r.surface_success(report.k)
        ]
        assert attempted
        assert all(r.borrow_deep_attempted for r in attempted)

    def test_predefined_attributes_borrow_via_surface(self, airfare):
        report = acquire(airfare)
        assert any(
            r.borrow_surface_attempted for r in report.records
            if r.had_instances
        )

    def test_borrowing_rescues_prepositional_labels(self, airfare):
        report = acquire(airfare)
        rescued = [
            r for r in report.records
            if r.label in ("From", "To")
            and r.n_after_surface == 0 and r.n_after_borrow > 0
        ]
        assert rescued

    def test_select_values_never_mutated(self, airfare):
        before = {
            (i.interface_id, a.name): a.instances
            for i in airfare.interfaces for a in i.attributes
        }
        acquire(airfare)
        for interface in airfare.interfaces:
            for attr in interface.attributes:
                assert attr.instances == before[(interface.interface_id, attr.name)]

    def test_acquired_instances_attached(self, airfare):
        acquire(airfare)
        enriched = [
            a for i in airfare.interfaces for a in i.attributes
            if a.kind is AttributeKind.TEXT and a.acquired
        ]
        assert enriched

    def test_success_rates_bounded(self, airfare):
        report = acquire(airfare)
        assert 0 <= report.surface_success_rate <= 100
        assert report.surface_success_rate <= report.final_success_rate <= 100

    def test_query_accounting_split(self, airfare):
        report = acquire(airfare)
        assert report.surface_queries > 0
        assert report.attr_deep_probes > 0
        assert airfare.engine.query_count == \
            report.surface_queries + report.attr_surface_queries


class TestComponentFlags:
    def test_surface_disabled(self, airfare):
        report = acquire(airfare, enable_surface=False)
        assert report.surface_queries == 0
        assert all(not r.surface_attempted for r in report.records)

    def test_deep_disabled(self, airfare):
        report = acquire(airfare, enable_attr_deep=False)
        assert report.attr_deep_probes == 0
        assert report.final_success_rate == report.surface_success_rate

    def test_attr_surface_disabled(self, airfare):
        report = acquire(airfare, enable_attr_surface=False)
        assert report.attr_surface_queries == 0

    def test_deep_only_still_borrows(self, airfare):
        report = acquire(airfare, enable_surface=False,
                         enable_attr_surface=False)
        # donors are pre-defined selects; prepositional-label attrs whose
        # labels match a select (e.g. date selects) can still be rescued
        assert report.attr_deep_probes > 0


class TestReport:
    def test_record_lookup(self, airfare):
        report = acquire(airfare)
        interface = airfare.interfaces[0]
        record = report.record_for(interface.interface_id,
                                   interface.attributes[0].name)
        assert record.label == interface.attributes[0].label

    def test_record_lookup_missing(self, airfare):
        report = acquire(airfare)
        with pytest.raises(KeyError):
            report.record_for("nope", "nope")

    def test_empty_dataset_rates(self):
        from repro.core.acquisition import AcquisitionReport
        report = AcquisitionReport()
        assert report.surface_success_rate == 0.0
        assert report.final_success_rate == 0.0
