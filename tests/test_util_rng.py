"""Tests for repro.util.rng: deterministic derived randomness."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import derive_rng, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, "b") == stable_hash("a", 1, "b")

    def test_different_parts_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_part_boundaries_matter(self):
        # ("ab",) must not collide with ("a", "b").
        assert stable_hash("ab") != stable_hash("a", "b")

    def test_returns_64_bit_int(self):
        value = stable_hash("anything")
        assert isinstance(value, int)
        assert 0 <= value < 2 ** 64

    @given(st.lists(st.text(), max_size=5))
    def test_stable_for_arbitrary_strings(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)


class TestDeriveRng:
    def test_same_scope_same_stream(self):
        a = derive_rng(1, "x").random()
        b = derive_rng(1, "x").random()
        assert a == b

    def test_different_scope_different_stream(self):
        assert derive_rng(1, "x").random() != derive_rng(1, "y").random()

    def test_different_seed_different_stream(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()

    def test_returns_random_instance(self):
        assert isinstance(derive_rng(0), random.Random)

    def test_streams_are_independent(self):
        # Drawing from one stream must not perturb another.
        a = derive_rng(5, "a")
        b = derive_rng(5, "b")
        expected_b = derive_rng(5, "b").random()
        for _ in range(100):
            a.random()
        assert b.random() == expected_b

    def test_scope_accepts_mixed_types(self):
        rng = derive_rng(3, "corpus", 42, ("tuple", 1.5))
        assert 0.0 <= rng.random() < 1.0
