"""Tests for HTML form rendering and interface extraction."""

import pytest

from repro.datasets import build_domain_dataset
from repro.deepweb.html import parse_interface, render_interface
from repro.deepweb.models import Attribute, AttributeKind, QueryInterface


def make_interface():
    return QueryInterface("air-1", "airfare", "flight", [
        Attribute(name="from", label="From city"),
        Attribute(name="class", label="Class of service",
                  kind=AttributeKind.SELECT,
                  instances=("Economy", "First Class")),
        Attribute(name="to", label="To"),
    ])


class TestRender:
    def test_contains_labels_and_controls(self):
        html = render_interface(make_interface())
        assert '<label for="from">From city</label>' in html
        assert '<input type="text" name="from" id="from">' in html
        assert '<select name="class" id="class">' in html
        assert '<option value="Economy">Economy</option>' in html

    def test_escapes_special_characters(self):
        qi = QueryInterface("x", "d", "o", [
            Attribute(name="a", label='Bed & "bath"'),
        ])
        html = render_interface(qi)
        assert "Bed &amp; &quot;bath&quot;" in html

    def test_submit_button_present(self):
        assert 'type="submit"' in render_interface(make_interface())


class TestParse:
    def test_roundtrip(self):
        original = make_interface()
        parsed = parse_interface(render_interface(original),
                                 interface_id="air-1", domain="airfare",
                                 object_name="flight")
        assert parsed.attribute_names == original.attribute_names
        for a, b in zip(original.attributes, parsed.attributes):
            assert a.label == b.label
            assert a.kind == b.kind
            assert a.instances == b.instances

    def test_label_for_pairing(self):
        html = ('<form><label for="city">Departure city</label>'
                '<input type="text" name="city" id="city"></form>')
        parsed = parse_interface(html)
        assert parsed.attributes[0].label == "Departure city"

    def test_nearest_text_fallback(self):
        html = ('<form>Your destination: '
                '<input type="text" name="dest"></form>')
        parsed = parse_interface(html)
        assert parsed.attributes[0].label == "Your destination"

    def test_submit_and_hidden_skipped(self):
        html = ('<form><input type="hidden" name="sid" value="1">'
                'City <input type="text" name="city">'
                '<input type="submit" value="Go"></form>')
        parsed = parse_interface(html)
        assert parsed.attribute_names == ["city"]

    def test_select_options_become_instances(self):
        html = ('<form>Class <select name="class">'
                '<option value="">any</option>'
                '<option value="Economy">Economy</option>'
                "<option value='Business'>Business</option>"
                "</select></form>")
        parsed = parse_interface(html)
        attr = parsed.attributes[0]
        assert attr.kind is AttributeKind.SELECT
        assert attr.instances == ("Economy", "Business")

    def test_radio_group_becomes_select(self):
        html = ('<form>Trip type '
                '<input type="radio" name="trip" value="Round trip">'
                '<input type="radio" name="trip" value="One way"></form>')
        parsed = parse_interface(html)
        attr = parsed.attributes[0]
        assert attr.kind is AttributeKind.SELECT
        assert attr.instances == ("Round trip", "One way")

    def test_duplicate_names_deduplicated(self):
        html = ('<form>A <input type="text" name="x">'
                'B <input type="text" name="x"></form>')
        parsed = parse_interface(html)
        assert parsed.attribute_names == ["x", "x_1"]

    def test_entities_unescaped(self):
        html = ('<form><label for="a">Bed &amp; bath</label>'
                '<input type="text" name="a" id="a"></form>')
        parsed = parse_interface(html)
        assert parsed.attributes[0].label == "Bed & bath"

    def test_single_quoted_attributes(self):
        html = "<form>City <input type='text' name='city'></form>"
        parsed = parse_interface(html)
        assert parsed.attribute_names == ["city"]

    def test_empty_form(self):
        parsed = parse_interface("<form></form>")
        assert parsed.attributes == []


class TestRoundTripOnGeneratedInterfaces:
    @pytest.mark.parametrize("domain", ["airfare", "book"])
    def test_every_generated_interface_roundtrips(self, domain):
        dataset = build_domain_dataset(domain, n_interfaces=5, seed=11)
        for interface in dataset.interfaces:
            parsed = parse_interface(
                render_interface(interface),
                interface_id=interface.interface_id,
                domain=interface.domain,
                object_name=interface.object_name,
            )
            assert parsed.attribute_names == interface.attribute_names
            for a, b in zip(interface.attributes, parsed.attributes):
                assert (a.label, a.kind, a.instances) == \
                    (b.label, b.kind, b.instances)
