"""Tests for SurfaceConfig options and WebValidator scoring modes."""

import pytest

from repro.core.surface import SurfaceConfig, SurfaceDiscoverer, WebValidator
from repro.deepweb.models import Attribute
from repro.surfaceweb.document import Document
from repro.surfaceweb.engine import SearchEngine


@pytest.fixture()
def engine():
    return SearchEngine([
        Document(0, "u0", "t",
                 "Car makes such as Honda, Toyota, and Ford sell well. "
                 "Make: Honda."),
        Document(1, "u1", "t", "Honda and Toyota are common on roads."),
    ])


class TestScoringModes:
    def test_invalid_scoring_rejected_by_validator(self, engine):
        with pytest.raises(ValueError):
            WebValidator(engine, scoring="bananas")

    def test_invalid_scoring_rejected_by_discoverer(self, engine):
        with pytest.raises(ValueError):
            SurfaceDiscoverer(engine, SurfaceConfig(scoring="bananas"))

    def test_hits_mode_returns_raw_counts(self, engine):
        validator = WebValidator(engine, scoring="hits")
        vector = validator.score_vector(["make"], "Honda")
        assert vector == [1.0]  # one page with "Make: Honda" adjacency

    def test_pmi_mode_normalises(self, engine):
        validator = WebValidator(engine, scoring="pmi")
        vector = validator.score_vector(["make"], "Honda")
        # joint=1, hits(make)=1, hits(honda)=2 -> 0.5
        assert vector[0] == pytest.approx(0.5)


class TestOutlierToggle:
    def test_disabled_keeps_all_candidates(self, engine):
        attr = Attribute(name="x", label="Make")
        on = SurfaceDiscoverer(engine, SurfaceConfig()).discover(
            attr, (), "car")
        off = SurfaceDiscoverer(
            engine, SurfaceConfig(enable_outlier_removal=False)
        ).discover(attr, (), "car")
        assert off.outliers == []
        assert set(on.raw_candidates) == set(off.raw_candidates)


class TestCandidateCap:
    def test_cap_prefers_popular_candidates(self):
        docs = [Document(0, "u0", "t",
                         "Makes such as Honda, Toyota, Rarity are listed. "
                         "Make: Honda.")]
        # give Honda extra popularity
        docs += [Document(i, f"p{i}", "t", "Honda everywhere on roads.")
                 for i in range(1, 4)]
        engine = SearchEngine(docs)
        discoverer = SurfaceDiscoverer(
            engine, SurfaceConfig(max_validated_candidates=1))
        result = discoverer.discover(Attribute(name="x", label="Make"),
                                     (), "car")
        assert result.instances == ["Honda"]

    def test_k_zero_returns_nothing(self, engine):
        discoverer = SurfaceDiscoverer(engine, SurfaceConfig(k=0))
        result = discoverer.discover(Attribute(name="x", label="Make"),
                                     (), "car")
        assert result.instances == []
