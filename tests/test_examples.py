"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; a release where they crash is
broken regardless of the test suite. Each is run in-process via runpy with
stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3  # the deliverable floor
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_improvement(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "WebIQ raised F-1" in out
    assert "Surface+Deep success" in out
