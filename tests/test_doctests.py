"""Execute every doctest in the library's docstrings.

Docstring examples are part of the API contract; this keeps them honest
without requiring a separate ``--doctest-modules`` invocation.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"


def test_walk_found_the_core_modules():
    names = _all_modules()
    assert "repro.core.surface" in names
    assert "repro.matching.clustering" in names
    assert len(names) >= 30
